// Figure 13: impact of the §4.3 update strategies on improvement, using the
// all-pairs greedy (as in the paper): no update / utility-only /
// utility + weight-subtract / utility + feature-zero.
// Paper shape: no-update worst; feature-zero (the default) best.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 4 : 1;

  const struct {
    core::UpdateStrategy strategy;
    const char* name;
  } strategies[] = {
      {core::UpdateStrategy::kNone, "NoUpdate"},
      {core::UpdateStrategy::kUtilityOnly, "UtilityOnly"},
      {core::UpdateStrategy::kUtilityAndWeightSubtract, "Util+WeightSubtract"},
      {core::UpdateStrategy::kUtilityAndFeatureZero, "Util+FeatureZero"},
  };

  for (const char* workload_name : {"tpch", "tpcds"}) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = (workload_name[3] == 'h' ? 4 : 1) * mul;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(workload_name, gen);
    advisor::TuningOptions tuning;
    tuning.max_indexes = 20;
    const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

    std::vector<std::string> headers = {"k"};
    for (const auto& s : strategies) headers.push_back(s.name);
    eval::Table table(std::move(headers));

    for (size_t k : {1u, 2u, 4u, 6u, 8u}) {
      std::vector<double> row;
      for (const auto& s : strategies) {
        core::IsumOptions options;
        options.algorithm = core::SelectionAlgorithm::kAllPairs;
        options.update = s.strategy;
        const workload::CompressedWorkload compressed =
            core::Isum(env.workload.get(), options).Compress(k);
        row.push_back(eval::RunPipeline(*env.workload, compressed, tuner,
                                        s.name)
                          .improvement_percent);
      }
      table.AddRow(StrFormat("%zu", k), row);
    }
    table.Print(StrFormat("Figure 13 (%s): improvement %% per update strategy",
                          env.name.c_str()),
                csv);
  }
  return obs_scope.ExitCode();
}
