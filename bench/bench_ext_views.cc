// Extension (paper §10): workload compression for MATERIALIZED VIEW
// selection — the "other physical design structures" direction. Compresses
// the workload with each algorithm, runs the greedy view advisor on the
// compressed (weighted) queries, and evaluates the improvement of the
// selected views on the FULL workload.
//
// Observed shape (an honest negative-ish result worth reporting): ISUM is
// competitive but, unlike for index tuning, not dominant — template-coverage
// baselines (Stratified) can win, because an aggregate view only serves
// queries with the *exact* join/group core, so covering many templates
// matters more than column-level benefit weighting. This confirms the
// paper's framing that extending compression to other physical design
// problems needs problem-specific featurization (here: join-core identity
// rather than indexable columns).

#include <cstdio>

#include "bench_util.h"
#include "views/view_advisor.h"

using namespace isum;

namespace {

double ViewImprovementPercent(const workload::Workload& w,
                              const std::vector<views::MaterializedView>& v) {
  const engine::CostModel& cm = *w.env().cost_model;
  double base = 0.0, with = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    base += w.query(i).base_cost;
    with += views::CostWithViews(w.query(i).bound, v, cm);
  }
  return base > 0.0 ? (base - with) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 4 : 1;

  for (const char* workload_name : {"tpch", "tpcds"}) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = (workload_name[3] == 'h' ? 8 : 2) * mul;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(workload_name, gen);
    const workload::Workload& w = *env.workload;

    views::ViewAdvisor advisor(env.cost_model.get());
    views::ViewTuningOptions options;
    options.max_views = 10;

    // Reference: view selection over the full workload.
    std::vector<advisor::WeightedQuery> all;
    for (size_t i = 0; i < w.size(); ++i) {
      all.push_back({&w.query(i).bound, 1.0});
    }
    const views::ViewTuningResult full = advisor.Tune(all, options);
    const double full_pct = ViewImprovementPercent(w, full.views);

    std::vector<std::string> headers = {"k"};
    const auto compressors = bench::StandardCompressors();
    for (const auto& c : compressors) headers.push_back(c->name());
    headers.push_back("FULL");
    eval::Table table(std::move(headers));

    for (size_t k : {2u, 4u, 8u, 16u}) {
      std::vector<double> row;
      for (const auto& c : compressors) {
        const workload::CompressedWorkload compressed = c->Compress(w, k);
        std::vector<advisor::WeightedQuery> queries;
        for (const auto& e : compressed.entries) {
          queries.push_back({&w.query(e.query_index).bound, e.weight});
        }
        const views::ViewTuningResult tuned = advisor.Tune(queries, options);
        row.push_back(ViewImprovementPercent(w, tuned.views));
      }
      row.push_back(full_pct);
      table.AddRow(StrFormat("%zu", k), row);
    }
    table.Print(
        StrFormat("Extension (%s, n=%zu): view-selection improvement %% vs. "
                  "compressed size (max 10 views)",
                  env.name.c_str(), w.size()),
        csv);
  }
  return obs_scope.ExitCode();
}
