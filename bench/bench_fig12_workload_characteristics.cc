// Figure 12: sensitivity to workload characteristics on the DSB-like
// benchmark.
//   12a: improvement vs. instances-per-template (fixed k).
//   12b-d: improvement vs. k for the SPJ / Aggregate / Complex query classes.
// Paper shape: ISUM stable as instance counts grow (GSUM improves, Cost
// degrades); aggregate-only queries see smaller, flatter improvements.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 2 : 1;

  // --- 12a: varying instances per template. ---
  {
    std::vector<std::string> headers = {"instances_per_template"};
    const auto compressors = bench::StandardCompressors();
    for (const auto& c : compressors) headers.push_back(c->name());
    eval::Table table(std::move(headers));
    for (int instances : {1, 2, 4, 8}) {
      workload::GeneratorOptions gen;
      gen.instances_per_template = instances * mul;
      workload::GeneratedWorkload env = workload::MakeDsb(gen);
      const size_t k = std::max<size_t>(
          2, static_cast<size_t>(
                 std::sqrt(static_cast<double>(env.workload->size()))));
      advisor::TuningOptions tuning;
      tuning.max_indexes = 20;
      const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);
      std::vector<double> row;
      for (const auto& c : compressors) {
        row.push_back(eval::RunPipeline(*env.workload,
                                        c->Compress(*env.workload, k), tuner,
                                        c->name())
                          .improvement_percent);
      }
      table.AddRow(StrFormat("%d", instances * mul), row);
    }
    table.Print("Figure 12a (DSB-like): improvement % vs. instances per "
                "template (k = sqrt(n))",
                csv);
  }

  // --- 12b-d: per-class sweeps. ---
  const struct {
    workload::DsbClass cls;
    const char* label;
  } classes[] = {{workload::DsbClass::kSpj, "12b SPJ"},
                 {workload::DsbClass::kAggregate, "12c Aggregate"},
                 {workload::DsbClass::kComplex, "12d Complex"}};
  for (const auto& [cls, label] : classes) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 4 * mul;
    workload::GeneratedWorkload env = workload::MakeDsb(gen, cls);
    advisor::TuningOptions tuning;
    tuning.max_indexes = 20;
    const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);
    const auto compressors = bench::StandardCompressors();
    eval::Table table = bench::CompareCompressors(
        env, compressors, {2, 4, 8, 16}, tuner);
    table.Print(StrFormat("Figure %s (DSB-like, n=%zu): improvement %% vs. k",
                          label, env.workload->size()),
                csv);
  }
  return obs_scope.ExitCode();
}
