// Figure 7: impact of the similarity measure used inside the benefit metric
// on its correlation with whole-workload improvement (TPC-H-like).
//   7a: candidate-index Jaccard          (paper corr: 0.66)
//   7b: plain Jaccard over columns       (paper corr: 0.76)
//   7c: weighted Jaccard, rule weights   (paper corr: 0.87)
//   7d: weighted Jaccard, stats weights  (paper corr: 0.89)

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/similarity.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 4 : 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  advisor::TuningOptions options;
  options.max_indexes = 20;
  const bench::PerQueryTuning tuned =
      bench::TuneEachQueryAlone(env, eval::MakeDtaTuner(w, options));

  const std::vector<double> utilities =
      core::ComputeUtilities(w, core::UtilityMode::kCostOnly);

  // Benefit under a pluggable pairwise similarity.
  auto benefit_with = [&](const std::function<double(size_t, size_t)>& sim) {
    std::vector<double> out;
    for (size_t i = 0; i < w.size(); ++i) {
      double b = utilities[i];
      for (size_t j = 0; j < w.size(); ++j) {
        if (j != i) b += sim(i, j) * utilities[j];
      }
      out.push_back(b);
    }
    return out;
  };

  // Feature vectors for the two weighted variants.
  core::FeatureSpace space;
  core::Featurizer featurizer(env.catalog.get(), env.stats.get(), &space);
  std::vector<core::SparseVector> rule_features, stats_features;
  core::FeaturizationOptions stats_options;
  stats_options.scheme = core::WeightingScheme::kStatsBased;
  for (size_t i = 0; i < w.size(); ++i) {
    rule_features.push_back(featurizer.Featurize(w.query(i).bound));
    stats_features.push_back(
        featurizer.Featurize(w.query(i).bound, stats_options));
  }

  struct Variant {
    const char* name;
    const char* paper;
    std::vector<double> benefit;
  };
  // Candidate generation runs once per query via the cache, not once per
  // pair — the n² pairwise loops below only merge precomputed id sets.
  std::vector<const sql::BoundQuery*> query_ptrs;
  for (size_t i = 0; i < w.size(); ++i) query_ptrs.push_back(&w.query(i).bound);
  const core::PairwiseSimilarityCache sim_cache(query_ptrs, *env.stats);

  std::vector<Variant> variants;
  variants.push_back({"candidate-index Jaccard", "0.66",
                      benefit_with([&](size_t i, size_t j) {
                        return sim_cache.CandidateIndexJaccard(i, j);
                      })});
  variants.push_back({"plain Jaccard (columns)", "0.76",
                      benefit_with([&](size_t i, size_t j) {
                        return sim_cache.IndexableColumnJaccard(i, j);
                      })});
  variants.push_back({"weighted Jaccard (rule-based)", "0.87",
                      benefit_with([&](size_t i, size_t j) {
                        return core::WeightedJaccard(rule_features[i],
                                                     rule_features[j]);
                      })});
  variants.push_back({"weighted Jaccard (stats-based)", "0.89",
                      benefit_with([&](size_t i, size_t j) {
                        return core::WeightedJaccard(stats_features[i],
                                                     stats_features[j]);
                      })});

  eval::Table table({"similarity_measure", "correlation", "paper"});
  for (const Variant& v : variants) {
    table.AddRow({v.name,
                  StrFormat("%.3f", PearsonCorrelation(
                                        v.benefit, tuned.workload_improvement)),
                  v.paper});
  }
  table.Print(
      "Figure 7: benefit-vs-improvement correlation per similarity measure "
      "(TPC-H-like)",
      csv);
  std::printf(
      "\nPaper shape: weighted Jaccard (rule/stats) beats candidate-index "
      "and unweighted Jaccard (0.87-0.89 vs 0.66-0.76).\n"
      "Measured: all four variants correlate strongly and about equally "
      "here — our 22 templates do not produce the pathological candidate "
      "mismatches (column-order divergence) that separate the measures in "
      "the paper's 2,200-query workloads. See EXPERIMENTS.md.\n");
  return obs_scope.ExitCode();
}
