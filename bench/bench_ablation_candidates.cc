// Ablation (DESIGN.md design-choice index): how much of the advisor's power
// comes from each candidate-generation ingredient? Sweeps the Table 1 rule
// set from single-column selection candidates up to the full rule set with
// covering variants, tuning the full TPC-H-like workload each time.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 4 : 2;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  struct Variant {
    const char* name;
    advisor::CandidateGenOptions options;
  };
  std::vector<Variant> variants;
  {
    Variant v{"single-column keys only", {}};
    v.options.max_key_columns = 1;
    v.options.covering_variants = false;
    variants.push_back(v);
  }
  {
    Variant v{"2-column keys, no covering", {}};
    v.options.max_key_columns = 2;
    v.options.covering_variants = false;
    variants.push_back(v);
  }
  {
    Variant v{"full rules (3-col), no covering", {}};
    v.options.covering_variants = false;
    variants.push_back(v);
  }
  {
    Variant v{"full rules + covering (default)", {}};
    variants.push_back(v);
  }
  {
    Variant v{"full rules + wide covering", {}};
    v.options.max_include_columns = 16;
    variants.push_back(v);
  }

  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < w.size(); ++i) {
    queries.push_back({&w.query(i).bound, 1.0});
  }

  eval::Table table({"candidate_generation", "improvement_pct",
                     "optimizer_calls", "tuning_s"});
  for (const Variant& variant : variants) {
    advisor::TuningOptions options;
    options.max_indexes = 20;
    options.candidate_options = variant.options;
    advisor::DtaStyleAdvisor advisor(env.cost_model.get());
    const advisor::TuningResult result = advisor.Tune(queries, options);
    table.AddRow(variant.name,
                 {eval::WorkloadImprovementPercent(w, result.configuration),
                  static_cast<double>(result.optimizer_calls),
                  result.elapsed_seconds});
  }
  table.Print(StrFormat("Ablation: candidate generation ingredients "
                        "(TPC-H-like, n=%zu, full-workload tuning)",
                        w.size()),
              csv);
  std::printf("\nExpected shape: multi-column keys add over single-column; "
              "covering variants add the largest jump (index-only plans); "
              "wider covering costs more optimizer calls for little gain.\n");
  return obs_scope.ExitCode();
}
