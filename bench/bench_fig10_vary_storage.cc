// Figure 10: improvement (%) vs. storage budget (1.5x–3x the database size),
// including the ISUM-NoTable ablation (stats weights without table sizes).
// Paper shape: ISUM-NoTable competitive at 1.5x (prefers small-table
// indexes) but clearly worse at 2x and beyond.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  const int mul = scale >= 2.0 ? 4 : 1;
  struct Spec {
    const char* name;
    int instances;
  };
  const std::vector<Spec> specs = {
      {"tpch", 8 * mul}, {"tpcds", 2 * mul}, {"dsb", 4 * mul}, {"realm", 0}};

  for (const Spec& spec : specs) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = spec.instances;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(spec.name, gen);
    // Larger k and index cap than Fig 9b so the storage budget actually
    // binds (with tiny configurations every budget is equally loose).
    const size_t k = std::max<size_t>(
        4, static_cast<size_t>(
               std::sqrt(static_cast<double>(env.workload->size()))));

    // Figure 10 uses the baselines + ISUM + ISUM-NoTable (ISUM-S omitted).
    std::vector<std::unique_ptr<baselines::Compressor>> compressors;
    compressors.push_back(std::make_unique<baselines::UniformSamplingCompressor>(1));
    compressors.push_back(std::make_unique<baselines::TopCostCompressor>());
    compressors.push_back(std::make_unique<baselines::StratifiedCompressor>(1));
    compressors.push_back(std::make_unique<baselines::GsumCompressor>());
    compressors.push_back(std::make_unique<eval::IsumCompressor>());
    compressors.push_back(std::make_unique<eval::IsumCompressor>(
        core::IsumOptions::NoTableVariant(), "ISUM-NoTable"));

    std::vector<std::string> headers = {"storage_budget"};
    for (const auto& c : compressors) headers.push_back(c->name());
    eval::Table table(std::move(headers));

    std::vector<workload::CompressedWorkload> compressed;
    for (const auto& c : compressors) {
      compressed.push_back(c->Compress(*env.workload, k));
    }

    for (double budget : {0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
      advisor::TuningOptions tuning;
      tuning.max_indexes = 40;
      tuning.storage_budget_multiplier = budget;
      const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);
      std::vector<double> row;
      for (size_t c = 0; c < compressors.size(); ++c) {
        row.push_back(eval::RunPipeline(*env.workload, compressed[c], tuner,
                                        compressors[c]->name())
                          .improvement_percent);
      }
      table.AddRow(StrFormat("%.1fx", budget), row);
    }
    table.Print(StrFormat("Figure 10 (%s, k=%zu): improvement %% vs. storage "
                          "budget",
                          env.name.c_str(), k),
                csv);
  }
  return obs_scope.ExitCode();
}
