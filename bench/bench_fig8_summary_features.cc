// Figure 8: quality of the summary-features approximation (§6).
//   8a: distribution of F_qs(V) / F_qs(W) on TPC-H-like and TPC-DS-like
//       (paper: >70% of queries within 2x).
//   8b: correlation of benefit-via-summary with workload improvement on
//       TPC-H-like (paper: 0.80, vs 0.87–0.89 for all-pairs benefit).

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/benefit.h"
#include "core/summary.h"

using namespace isum;

namespace {

struct RatioStats {
  std::vector<double> ratios;
  double within_2x = 0.0;
};

RatioStats SummaryErrorRatios(const workload::Workload& w) {
  core::CompressionState state(w, {}, core::UtilityMode::kCostOnly);
  const core::SparseVector summary = core::ComputeSummaryFeatures(state);
  double total_utility = 0.0;
  for (size_t i = 0; i < state.size(); ++i) total_utility += state.utility(i);

  RatioStats out;
  int in_band = 0;
  for (size_t s = 0; s < state.size(); ++s) {
    const double fw = core::InfluenceOnWorkload(state, s);
    if (fw <= 1e-12) continue;
    const double fv = core::SummaryInfluence(state.features(s),
                                             state.utility(s), total_utility,
                                             summary);
    const double ratio = fv / fw;
    out.ratios.push_back(ratio);
    if (ratio >= 0.5 && ratio <= 2.0) ++in_band;
  }
  out.within_2x = out.ratios.empty()
                      ? 0.0
                      : 100.0 * in_band / static_cast<double>(out.ratios.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  // --- 8a: error ratio distribution. ---
  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 4 : 2;
  workload::GeneratedWorkload tpch = workload::MakeTpch(gen);
  workload::GeneratorOptions gen_ds;
  gen_ds.instances_per_template = scale >= 2.0 ? 2 : 1;
  workload::GeneratedWorkload tpcds = workload::MakeTpcds(gen_ds);

  eval::Table ratios({"workload", "p10", "p50", "p90", "pct_within_2x"});
  for (const auto* env : {&tpch, &tpcds}) {
    RatioStats stats = SummaryErrorRatios(*env->workload);
    ratios.AddRow(env->name, {Percentile(stats.ratios, 10),
                              Percentile(stats.ratios, 50),
                              Percentile(stats.ratios, 90), stats.within_2x});
  }
  ratios.Print("Figure 8a: F(V)/F(W) error-ratio distribution", csv);
  std::printf("\nPaper shape: the bulk of queries fall within 2x "
              "(paper: >70%%), far inside the Theorem 3 bounds.\n");

  // --- 8b: benefit-via-summary correlation (TPC-H-like). ---
  workload::GeneratorOptions gen_b;
  gen_b.instances_per_template = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen_b);
  const workload::Workload& w = *env.workload;
  advisor::TuningOptions options;
  options.max_indexes = 20;
  const bench::PerQueryTuning tuned =
      bench::TuneEachQueryAlone(env, eval::MakeDtaTuner(w, options));

  core::CompressionState state(w, {}, core::UtilityMode::kCostOnly);
  const core::SparseVector summary = core::ComputeSummaryFeatures(state);
  double total_utility = 0.0;
  for (size_t i = 0; i < state.size(); ++i) total_utility += state.utility(i);

  std::vector<double> benefit_allpairs, benefit_summary;
  for (size_t i = 0; i < w.size(); ++i) {
    benefit_allpairs.push_back(core::ConditionalBenefit(state, i));
    benefit_summary.push_back(
        state.utility(i) +
        core::SummaryInfluence(state.features(i), state.utility(i),
                               total_utility, summary));
  }
  std::printf("\nFigure 8b (TPC-H-like):\n");
  std::printf("corr(benefit via summary, improvement)   = %.3f  (paper: 0.80)\n",
              PearsonCorrelation(benefit_summary, tuned.workload_improvement));
  std::printf("corr(benefit via all-pairs, improvement) = %.3f  (paper: 0.87)\n",
              PearsonCorrelation(benefit_allpairs, tuned.workload_improvement));
  return obs_scope.ExitCode();
}
