// Figure 9b: improvement (%) vs. index configuration size m, with the
// compressed workload size fixed at ~0.5*sqrt(n) (paper §8.1).

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  const int mul = scale >= 2.0 ? 4 : 1;
  struct Spec {
    const char* name;
    int instances;
  };
  const std::vector<Spec> specs = {
      {"tpch", 8 * mul}, {"tpcds", 2 * mul}, {"dsb", 4 * mul}, {"realm", 0}};

  for (const Spec& spec : specs) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = spec.instances;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(spec.name, gen);

    const size_t k = std::max<size_t>(
        2, static_cast<size_t>(0.5 * std::sqrt(
                                   static_cast<double>(env.workload->size()))));

    std::vector<std::string> headers = {"config_size_m"};
    const auto compressors = bench::StandardCompressors();
    for (const auto& c : compressors) headers.push_back(c->name());
    eval::Table table(std::move(headers));

    // Compress once per algorithm (compression is independent of m).
    std::vector<workload::CompressedWorkload> compressed;
    for (const auto& c : compressors) {
      compressed.push_back(c->Compress(*env.workload, k));
    }

    for (int m : {8, 16, 24, 32, 48, 64}) {
      advisor::TuningOptions tuning;
      tuning.max_indexes = m;
      const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);
      std::vector<double> row;
      for (size_t c = 0; c < compressors.size(); ++c) {
        row.push_back(eval::RunPipeline(*env.workload, compressed[c], tuner,
                                        compressors[c]->name())
                          .improvement_percent);
      }
      table.AddRow(StrFormat("%d", m), row);
    }
    table.Print(StrFormat("Figure 9b (%s, n=%zu, k=%zu): improvement %% vs. "
                          "configuration size",
                          env.name.c_str(), env.workload->size(), k),
                csv);
  }
  std::printf("\nPaper shape: improvement rises with m then plateaus "
              "(~30 indexes); ISUM variants lead across most m.\n");
  return obs_scope.ExitCode();
}
