// Figure 2: scalability challenges in index tuning (TPC-DS-like).
//   2a: total tuning time and time spent on optimizer calls vs. #queries.
//   2b: configurations explored vs. #queries.
//
// Repro extension (the perf-baseline workload of docs/BENCHMARKING.md):
//   2c: ISUM end-to-end compression time vs. #queries. This is the hot
//       path the speed campaign optimizes; each row is recorded into the
//       --bench-json= file (select/compress wall time, selection hash and
//       benefit sum for quality comparison across revisions).
//
// Flags (besides the shared ObsScope set):
//   --compress-only   skip the slow 2a/2b tuning sweep (baseline recording
//                     and the bench-smoke CI job only need 2c)
//   --scale s         scales the 2c workload sizes (default sweep tops out
//                     at ~100k queries; CI smoke uses --scale 0.01)

#include <cstdio>
#include <cstring>

#include "bench_util.h"

using namespace isum;

namespace {

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const bool compress_only = HasFlag(argc, argv, "--compress-only");

  // --- 2c: compression scalability (always runs; this is the recorded
  // perf-baseline workload). TPC-DS-like templates, instance counts chosen
  // to hit each target workload size. ---
  eval::Table compress_table({"n_queries", "select_time_s", "compress_time_s",
                              "selected", "benefit_sum"});
  const size_t kCompressedSize = 50;
  for (int target : {1000, 5000, 20000, 100000}) {
    const int n = static_cast<int>(target * scale);
    if (n < 1) continue;
    workload::GeneratorOptions gen;
    gen.instances_per_template = std::max(1, n / 91);
    workload::GeneratedWorkload env = workload::MakeTpcds(gen);
    const size_t n_queries = env.workload->size();

    core::Isum isum(env.workload.get());
    bench::Timer select_timer;
    const core::SelectionResult selection = isum.Select(kCompressedSize);
    const double select_seconds = select_timer.Seconds();

    bench::Timer compress_timer;
    const workload::CompressedWorkload compressed =
        isum.Compress(kCompressedSize);
    const double compress_seconds = compress_timer.Seconds();

    double benefit_sum = 0.0;
    for (double b : selection.selection_benefits) benefit_sum += b;

    compress_table.AddRow(
        StrFormat("%zu", n_queries),
        {select_seconds, compress_seconds,
         static_cast<double>(compressed.entries.size()), benefit_sum});

    bench::BenchRun run;
    run.name = StrFormat("compress/tpcds/n=%zu", n_queries);
    run.numbers = {
        {"n_queries", static_cast<double>(n_queries)},
        {"k", static_cast<double>(kCompressedSize)},
        {"select_seconds", select_seconds},
        {"compress_seconds", compress_seconds},
        {"selected", static_cast<double>(compressed.entries.size())},
        {"benefit_sum", benefit_sum},
    };
    // FNV-1a over the selected indices (obs::SelectionOrderHash — the same
    // definition journal compress_end events carry): equal selections <=>
    // equal hashes, so trajectory entries can assert "compression quality
    // unchanged" across revisions without storing the full selection, and
    // `tracecat explain` can match a journal against this record.
    run.strings = {
        {"selection_hash",
         StrFormat("%016llx",
                   static_cast<unsigned long long>(obs::SelectionOrderHash(
                       selection.selected.data(), selection.selected.size())))},
    };
    bench::BenchJson::Global().AddRun(std::move(run));
  }
  compress_table.Print(
      "Figure 2c (repro extension): ISUM compression time vs. workload size "
      "(TPC-DS-like)",
      csv);

  if (compress_only) {
    std::printf("\n(--compress-only: skipping the 2a/2b tuning sweep)\n");
    return obs_scope.ExitCode();
  }

  eval::Table table({"n_queries", "tuning_time_s", "optimizer_call_time_s",
                     "optimizer_calls", "configs_explored"});

  const int max_templates = static_cast<int>(92 * (scale > 1 ? scale : 1.0));
  for (int n : {1, 10, 20, 40, 60, 80, 92}) {
    if (n > max_templates) break;
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    gen.max_templates = n;
    workload::GeneratedWorkload env = workload::MakeTpcds(gen);

    std::vector<advisor::WeightedQuery> queries;
    for (size_t i = 0; i < env.workload->size(); ++i) {
      queries.push_back({&env.workload->query(i).bound, 1.0});
    }
    advisor::TuningOptions options;
    options.max_indexes = 20;
    advisor::DtaStyleAdvisor advisor(env.cost_model.get());
    const advisor::TuningResult result = advisor.Tune(queries, options);
    table.AddRow(StrFormat("%d", n),
                 {result.elapsed_seconds, result.optimizer_seconds,
                  static_cast<double>(result.optimizer_calls),
                  static_cast<double>(result.configurations_explored)});
  }
  table.Print("Figure 2: tuning time / optimizer calls / configurations "
              "explored vs. workload size (TPC-DS-like)",
              csv);
  std::printf("\nPaper shape: tuning time and explored configurations grow "
              "steeply with n; optimizer calls dominate tuning time.\n");
  return obs_scope.ExitCode();
}
