// Figure 2: scalability challenges in index tuning (TPC-DS-like).
//   2a: total tuning time and time spent on optimizer calls vs. #queries.
//   2b: configurations explored vs. #queries.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  eval::Table table({"n_queries", "tuning_time_s", "optimizer_call_time_s",
                     "optimizer_calls", "configs_explored"});

  const int max_templates = static_cast<int>(92 * (scale > 1 ? scale : 1.0));
  for (int n : {1, 10, 20, 40, 60, 80, 92}) {
    if (n > max_templates) break;
    workload::GeneratorOptions gen;
    gen.instances_per_template = 1;
    gen.max_templates = n;
    workload::GeneratedWorkload env = workload::MakeTpcds(gen);

    std::vector<advisor::WeightedQuery> queries;
    for (size_t i = 0; i < env.workload->size(); ++i) {
      queries.push_back({&env.workload->query(i).bound, 1.0});
    }
    advisor::TuningOptions options;
    options.max_indexes = 20;
    advisor::DtaStyleAdvisor advisor(env.cost_model.get());
    const advisor::TuningResult result = advisor.Tune(queries, options);
    table.AddRow(StrFormat("%d", n),
                 {result.elapsed_seconds, result.optimizer_seconds,
                  static_cast<double>(result.optimizer_calls),
                  static_cast<double>(result.configurations_explored)});
  }
  table.Print("Figure 2: tuning time / optimizer calls / configurations "
              "explored vs. workload size (TPC-DS-like)",
              csv);
  std::printf("\nPaper shape: tuning time and explored configurations grow "
              "steeply with n; optimizer calls dominate tuning time.\n");
  return 0;
}
