// Figure 15: generalization to a second, simpler index advisor (DEXTER-like,
// minimum improvement 5%): improvement (%) vs. k on TPC-H-like and
// TPC-DS-like workloads for all six algorithms.
// Paper shape: ISUM still leads for most k; absolute improvements smaller
// than with the DTA-style advisor.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 4 : 1;

  for (const char* workload_name : {"tpch", "tpcds"}) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = (workload_name[3] == 'h' ? 4 : 1) * mul;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(workload_name, gen);

    advisor::DexterOptions options;
    options.min_improvement = 0.05;  // the paper's DEXTER setting
    const eval::TunerFn tuner = eval::MakeDexterTuner(*env.workload, options);

    const auto compressors = bench::StandardCompressors();
    eval::Table table = bench::CompareCompressors(
        env, compressors, {2, 4, 8, 16, 32}, tuner);
    table.Print(StrFormat("Figure 15 (%s, n=%zu): improvement %% vs. k under "
                          "the DEXTER-style advisor",
                          env.name.c_str(), env.workload->size()),
                csv);
  }
  return obs_scope.ExitCode();
}
