// Figure 6: which per-query signal predicts whole-workload improvement when
// the query is selected for tuning alone? (TPC-H-like)
//   6a: utility      (paper corr: 0.60)
//   6b: similarity   (paper corr: 0.58)
//   6c: benefit      (paper corr: 0.89)

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/benefit.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 4 : 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  advisor::TuningOptions options;
  options.max_indexes = 20;
  const bench::PerQueryTuning tuned =
      bench::TuneEachQueryAlone(env, eval::MakeDtaTuner(w, options));

  core::CompressionState state(w, {}, core::UtilityMode::kCostOnly);
  std::vector<double> utility, similarity, benefit;
  for (size_t i = 0; i < w.size(); ++i) {
    utility.push_back(state.utility(i));
    double sim = 0.0;
    for (size_t j = 0; j < w.size(); ++j) {
      if (j != i) sim += state.Similarity(i, j);
    }
    similarity.push_back(sim);
    benefit.push_back(core::ConditionalBenefit(state, i));
  }

  eval::Table table(
      {"query", "utility", "similarity", "benefit", "improvement_pct"});
  for (size_t i = 0; i < w.size(); ++i) {
    table.AddRow(w.query(i).tag, {utility[i], similarity[i], benefit[i],
                                  tuned.workload_improvement[i]});
  }
  table.Print("Figure 6: utility / similarity / benefit vs. workload "
              "improvement (TPC-H-like)",
              csv);

  std::printf("\ncorr(utility, improvement)    = %.3f  (paper: 0.60)\n",
              PearsonCorrelation(utility, tuned.workload_improvement));
  std::printf("corr(similarity, improvement) = %.3f  (paper: 0.58)\n",
              PearsonCorrelation(similarity, tuned.workload_improvement));
  std::printf("corr(benefit, improvement)    = %.3f  (paper: 0.89)\n",
              PearsonCorrelation(benefit, tuned.workload_improvement));
  return obs_scope.ExitCode();
}
