// Extension (paper §10): workload compression for horizontal PARTITIONING
// selection. Compresses with each algorithm, runs the greedy partitioning
// advisor on the compressed (weighted) queries, and evaluates partition-
// pruning improvement on the FULL workload.
// Expected shape (contrast with bench_ext_views): compression transfers
// WELL here — partition pruning is driven by sargable filter columns, which
// are exactly the features ISUM weighs, so ISUM should track the
// full-workload line closely; uniform sampling should trail.

#include <cstdio>

#include "bench_util.h"
#include "partition/partition_advisor.h"

using namespace isum;

namespace {

double PartitionImprovementPercent(const workload::Workload& w,
                                   const partition::PartitioningScheme& s) {
  const engine::CostModel& cm = *w.env().cost_model;
  double base = 0.0, with = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    base += w.query(i).base_cost;
    with += partition::CostWithPartitioning(w.query(i).bound, s, cm);
  }
  return base > 0.0 ? (base - with) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 4 : 1;

  for (const char* workload_name : {"tpch", "dsb"}) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = (workload_name[3] == 'h' ? 8 : 4) * mul;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(workload_name, gen);
    const workload::Workload& w = *env.workload;

    partition::PartitionAdvisor advisor(env.cost_model.get());
    partition::PartitionTuningOptions options;
    options.max_partitioned_tables = 4;

    std::vector<advisor::WeightedQuery> all;
    for (size_t i = 0; i < w.size(); ++i) {
      all.push_back({&w.query(i).bound, 1.0});
    }
    const double full_pct = PartitionImprovementPercent(
        w, advisor.Tune(all, options).scheme);

    std::vector<std::string> headers = {"k"};
    const auto compressors = bench::StandardCompressors();
    for (const auto& c : compressors) headers.push_back(c->name());
    headers.push_back("FULL");
    eval::Table table(std::move(headers));

    for (size_t k : {2u, 4u, 8u, 16u}) {
      std::vector<double> row;
      for (const auto& c : compressors) {
        const workload::CompressedWorkload compressed = c->Compress(w, k);
        std::vector<advisor::WeightedQuery> queries;
        for (const auto& e : compressed.entries) {
          queries.push_back({&w.query(e.query_index).bound, e.weight});
        }
        row.push_back(PartitionImprovementPercent(
            w, advisor.Tune(queries, options).scheme));
      }
      row.push_back(full_pct);
      table.AddRow(StrFormat("%zu", k), row);
    }
    table.Print(
        StrFormat("Extension (%s, n=%zu): partitioning improvement %% vs. "
                  "compressed size (max 4 partitioned tables)",
                  env.name.c_str(), w.size()),
        csv);
  }
  return obs_scope.ExitCode();
}
