// Figure 9a: improvement (%) on the input workload vs. compressed workload
// size k, for all six algorithms, over the four workloads of Table 2.
// Paper shape: ISUM/ISUM-S dominate or tie across most (workload, k) points,
// and no single baseline is consistently second.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  struct Spec {
    const char* name;
    int instances;
    std::vector<size_t> ks;
  };
  // Default: reduced instance counts for quick runs; --scale 2+ doubles them.
  const int mul = scale >= 2.0 ? 4 : 1;
  const std::vector<Spec> specs = {
      {"tpch", 8 * mul, {2, 4, 8, 16, 26}},
      {"tpcds", 2 * mul, {2, 4, 8, 16, 27}},
      {"dsb", 4 * mul, {2, 4, 8, 16, 28}},
      {"realm", 0, {2, 4, 8, 16}},
  };

  for (const Spec& spec : specs) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = spec.instances;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(spec.name, gen);

    advisor::TuningOptions tuning;
    tuning.max_indexes = 20;
    const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

    const auto compressors = bench::StandardCompressors();
    eval::Table table =
        bench::CompareCompressors(env, compressors, spec.ks, tuner);
    table.Print(StrFormat("Figure 9a (%s, n=%zu): improvement %% vs. "
                          "compressed size",
                          env.name.c_str(), env.workload->size()),
                csv);
  }
  std::printf("\nPaper shape: ISUM/ISUM-S highest for most k; Cost strong on "
              "Real-M; GSUM weak on Real-M; all converge at large k.\n");
  return obs_scope.ExitCode();
}
