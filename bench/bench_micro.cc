// Microbenchmarks (google-benchmark) for the hot paths: SQL parsing,
// featurization, weighted Jaccard, summary construction, what-if costing,
// advisor tuning, and end-to-end compression.

#include <benchmark/benchmark.h>

#include "advisor/advisor.h"
#include "bench_util.h"
#include "core/incremental.h"
#include "core/isum.h"
#include "engine/what_if.h"
#include "exec/executor.h"
#include "sql/parser.h"
#include "workload/workload_factory.h"

namespace isum {
namespace {

const workload::GeneratedWorkload& TpchEnv() {
  static workload::GeneratedWorkload* env = [] {
    workload::GeneratorOptions gen;
    gen.instances_per_template = 8;
    return new workload::GeneratedWorkload(workload::MakeTpch(gen));
  }();
  return *env;
}

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql = TpchEnv().workload->query(2).sql;
  for (auto _ : state) {
    auto result = sql::ParseSelect(sql);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ParseSelect);

void BM_Featurize(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::FeatureSpace space;
  core::Featurizer featurizer(env.catalog.get(), env.stats.get(), &space);
  const sql::BoundQuery& q = env.workload->query(2).bound;
  for (auto _ : state) {
    auto v = featurizer.Featurize(q);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_Featurize);

void BM_WeightedJaccard(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  for (auto _ : state) {
    double total = 0.0;
    for (size_t j = 1; j < 32; ++j) total += cs.Similarity(0, j);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_WeightedJaccard);

void BM_WeightedJaccardBatch(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  std::vector<core::SparseVector> rows;
  for (size_t i = 0; i < cs.size(); ++i) rows.push_back(cs.features(i));
  const core::FeatureMatrix matrix =
      core::FeatureMatrix::FromVectors(rows, cs.feature_space().size());
  core::DenseScratch scratch;
  std::vector<double> out(matrix.rows());
  for (auto _ : state) {
    matrix.ScatterRow(0, &scratch);
    matrix.WeightedJaccardBatch(scratch, 0, matrix.rows(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(matrix.rows()));
}
BENCHMARK(BM_WeightedJaccardBatch);

void BM_BinaryJaccardBatch(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  std::vector<core::SparseVector> rows;
  for (size_t i = 0; i < cs.size(); ++i) rows.push_back(cs.features(i));
  const core::FeatureMatrix matrix =
      core::FeatureMatrix::FromVectors(rows, cs.feature_space().size());
  core::DenseScratch scratch;
  std::vector<double> out(matrix.rows());
  for (auto _ : state) {
    matrix.ScatterRow(0, &scratch);
    matrix.BinaryJaccardBatch(scratch, 0, matrix.rows(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(matrix.rows()));
}
BENCHMARK(BM_BinaryJaccardBatch);

// The scratch-reuse AddScaled overload vs. the allocating one, on the
// summary-accumulation access pattern (one running sum += many vectors).
void BM_AddScaledAlloc(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  for (auto _ : state) {
    core::SparseVector sum;
    for (size_t i = 0; i < cs.size(); ++i) {
      sum.AddScaled(cs.features(i), cs.utility(i));
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AddScaledAlloc);

void BM_AddScaledScratch(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  std::vector<core::SparseVector::Entry> scratch;
  for (auto _ : state) {
    core::SparseVector sum;
    for (size_t i = 0; i < cs.size(); ++i) {
      sum.AddScaled(cs.features(i), cs.utility(i), &scratch);
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AddScaledScratch);

void BM_SummaryConstruction(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::CompressionState cs(*env.workload, {}, core::UtilityMode::kCostOnly);
  for (auto _ : state) {
    auto v = core::ComputeSummaryFeatures(cs);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_SummaryConstruction);

void BM_WhatIfCost(benchmark::State& state) {
  const auto& env = TpchEnv();
  engine::Optimizer optimizer(env.cost_model.get());
  const sql::BoundQuery& q = env.workload->query(4).bound;
  engine::Configuration config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.Cost(q, config));
  }
}
BENCHMARK(BM_WhatIfCost);

void BM_CompressSummary(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::Isum isum(env.workload.get());
  for (auto _ : state) {
    auto compressed = isum.Compress(static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(compressed);
  }
}
BENCHMARK(BM_CompressSummary)->Arg(4)->Arg(16);

void BM_CompressAllPairs(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::IsumOptions options;
  options.algorithm = core::SelectionAlgorithm::kAllPairs;
  core::Isum isum(env.workload.get(), options);
  for (auto _ : state) {
    auto compressed = isum.Compress(static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(compressed);
  }
}
BENCHMARK(BM_CompressAllPairs)->Arg(4)->Arg(16);

void BM_IncrementalObserveBatch(benchmark::State& state) {
  const auto& env = TpchEnv();
  for (auto _ : state) {
    core::IncrementalIsum inc(env.workload.get(), 8);
    for (size_t begin = 0; begin < env.workload->size(); begin += 16) {
      inc.ObserveBatch(begin,
                       std::min(env.workload->size(), begin + 16));
    }
    benchmark::DoNotOptimize(inc.Current());
  }
}
BENCHMARK(BM_IncrementalObserveBatch);

void BM_ExecuteScanQuery(benchmark::State& state) {
  static exec::Database* db = [] {
    auto* d = new exec::Database(TpchEnv().catalog.get(), TpchEnv().stats.get());
    d->MaterializeAll(20'000, 5);
    return d;
  }();
  exec::Executor executor(db);
  engine::Optimizer optimizer(TpchEnv().cost_model.get());
  const sql::BoundQuery& q = TpchEnv().workload->query(5).bound;  // Q1 shape
  const engine::PlanSummary plan = optimizer.Optimize(q, engine::Configuration());
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.Execute(q, plan));
  }
}
BENCHMARK(BM_ExecuteScanQuery);

void BM_AdvisorTuneCompressed(benchmark::State& state) {
  const auto& env = TpchEnv();
  core::Isum isum(env.workload.get());
  const auto compressed = isum.Compress(8);
  std::vector<advisor::WeightedQuery> queries;
  for (const auto& e : compressed.entries) {
    queries.push_back({&env.workload->query(e.query_index).bound, e.weight});
  }
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());
  advisor::TuningOptions options;
  options.max_indexes = 10;
  for (auto _ : state) {
    auto result = advisor.Tune(queries, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdvisorTuneCompressed);

// On multi-core machines /4 approaches linear speedup (the what-if cache is
// sharded 16 ways); on a single-core host it only measures pool overhead.
void BM_AdvisorTuneParallel(benchmark::State& state) {
  const auto& env = TpchEnv();
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    queries.push_back({&env.workload->query(i).bound, 1.0});
  }
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());
  advisor::TuningOptions options;
  options.max_indexes = 10;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = advisor.Tune(queries, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AdvisorTuneParallel)->Arg(1)->Arg(4);

}  // namespace
}  // namespace isum

// BENCHMARK_MAIN(), plus the shared --trace/--metrics flags (ObsScope strips
// them from argv before google-benchmark's own flag parsing sees them).
int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return obs_scope.ExitCode();
}
