// Figure 3: improvement on the input workload when tuning a compressed
// workload of increasing size, vs. tuning the full workload.
// Paper shape: ~20 well-chosen queries (of 92) reach close to the
// full-workload improvement.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "workload/workload_factory.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 2 : 1;  // 91 or 182 queries
  workload::GeneratedWorkload env = workload::MakeTpcds(gen);

  advisor::TuningOptions tuning;
  tuning.max_indexes = 20;
  const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

  // Full-workload tuning as the reference line.
  workload::CompressedWorkload full;
  for (size_t i = 0; i < env.workload->size(); ++i) {
    full.entries.push_back({i, 1.0});
  }
  full.NormalizeWeights();
  const eval::EvaluationResult full_result =
      eval::RunPipeline(*env.workload, full, tuner, "Full");

  eval::Table table({"k", "improvement_pct", "full_workload_pct",
                     "compress_plus_tune_s"});
  core::Isum isum(env.workload.get());
  for (size_t k : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    if (k > env.workload->size()) break;
    const auto t0 = std::chrono::steady_clock::now();
    workload::CompressedWorkload compressed = isum.Compress(k);
    const double compress_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    eval::EvaluationResult r =
        eval::RunPipeline(*env.workload, compressed, tuner, "ISUM");
    table.AddRow(StrFormat("%zu", k),
                 {r.improvement_percent, full_result.improvement_percent,
                  compress_s + r.tuning_seconds});
  }
  table.Print("Figure 3: impact of workload compression (TPC-DS-like)", csv);
  std::printf("\nfull-workload tuning time: %.2fs\n",
              full_result.tuning_seconds);
  return obs_scope.ExitCode();
}
