// Figure 11: the summary-features (linear-time) algorithm vs. the all-pairs
// greedy and the k-medoid clustering of [11], as the input workload grows:
// improvement (%) and compression time.
// Paper shape: summary ~= all-pairs in quality at a fraction of the time;
// k-medoid worst quality and slow.

#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  struct Algo {
    std::string name;
    std::unique_ptr<baselines::Compressor> compressor;
  };

  auto run_for = [&](const char* workload_name,
                     const std::vector<int>& instance_counts) {
    eval::Table table({"n_queries", "allpairs_pct", "kmedoid_pct",
                       "summary_pct", "allpairs_s", "kmedoid_s", "summary_s"});
    for (int instances : instance_counts) {
      workload::GeneratorOptions gen;
      gen.instances_per_template = instances;
      workload::GeneratedWorkload env =
          workload::MakeWorkloadByName(workload_name, gen);
      const size_t n = env.workload->size();
      const size_t k = std::max<size_t>(
          2, static_cast<size_t>(std::sqrt(static_cast<double>(n))));

      advisor::TuningOptions tuning;
      tuning.max_indexes = 20;
      const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

      core::IsumOptions allpairs_options;
      allpairs_options.algorithm = core::SelectionAlgorithm::kAllPairs;
      std::vector<Algo> algos;
      algos.push_back({"all-pairs", std::make_unique<eval::IsumCompressor>(
                                        allpairs_options, "all-pairs")});
      algos.push_back(
          {"k-medoid", std::make_unique<baselines::KMedoidCompressor>(1)});
      algos.push_back({"summary", std::make_unique<eval::IsumCompressor>()});

      std::vector<double> improvements, times;
      for (Algo& algo : algos) {
        bench::Timer timer;
        const workload::CompressedWorkload compressed =
            algo.compressor->Compress(*env.workload, k);
        times.push_back(timer.Seconds());
        improvements.push_back(
            eval::RunPipeline(*env.workload, compressed, tuner, algo.name)
                .improvement_percent);
      }
      table.AddRow(StrFormat("%zu", n),
                   {improvements[0], improvements[1], improvements[2],
                    times[0], times[1], times[2]});
    }
    table.Print(StrFormat("Figure 11 (%s): all-pairs vs. k-medoid vs. "
                          "summary-features",
                          workload_name),
                csv);
  };

  const int mul = scale >= 2.0 ? 4 : 1;
  run_for("tpch", {2 * mul, 8 * mul, 16 * mul, 32 * mul});
  run_for("realm", {1, 2 * mul});
  std::printf("\nPaper shape: summary quality ~= all-pairs; all-pairs time "
              "grows quadratically with n while summary stays near-linear; "
              "k-medoid slow and worst quality.\n");
  return obs_scope.ExitCode();
}
