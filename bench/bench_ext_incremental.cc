// Extension (paper §10 future work): incremental/anytime compression.
// Streams the workload through IncrementalIsum in batches of varying size
// and compares the tuned improvement of its final selection against batch
// ISUM (upper reference) and uniform sampling (lower reference), plus the
// quality of intermediate ("anytime") selections after each prefix.

#include <cstdio>

#include "bench_util.h"
#include "core/incremental.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 16 : 8;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;
  const size_t k = 8;

  advisor::TuningOptions tuning;
  tuning.max_indexes = 20;
  const eval::TunerFn tuner = eval::MakeDtaTuner(w, tuning);

  const double batch_isum =
      eval::RunPipeline(w, core::Isum(&w).Compress(k), tuner, "ISUM")
          .improvement_percent;
  baselines::UniformSamplingCompressor uniform(1);
  const double uniform_pct =
      eval::RunPipeline(w, uniform.Compress(w, k), tuner, "Uniform")
          .improvement_percent;

  eval::Table table({"batch_size", "incremental_pct", "batch_isum_pct",
                     "uniform_pct"});
  for (size_t batch : {w.size(), w.size() / 4, w.size() / 16, 4ul}) {
    core::IncrementalIsum inc(&w, k);
    for (size_t begin = 0; begin < w.size(); begin += batch) {
      inc.ObserveBatch(begin, std::min(w.size(), begin + batch));
    }
    const double pct =
        eval::RunPipeline(w, inc.Current(), tuner, "Incremental")
            .improvement_percent;
    table.AddRow(StrFormat("%zu", batch), {pct, batch_isum, uniform_pct});
  }
  table.Print(StrFormat("Extension: incremental ISUM (TPC-H-like, n=%zu, "
                        "k=%zu) vs. batch ISUM and uniform",
                        w.size(), k),
              csv);

  // Anytime behaviour: quality of the selection after each prefix.
  eval::Table anytime({"observed_prefix", "improvement_pct"});
  core::IncrementalIsum inc(&w, k);
  const size_t step = std::max<size_t>(1, w.size() / 8);
  for (size_t begin = 0; begin < w.size(); begin += step) {
    inc.ObserveBatch(begin, std::min(w.size(), begin + step));
    const double pct = eval::RunPipeline(w, inc.Current(), tuner, "inc")
                           .improvement_percent;
    anytime.AddRow(StrFormat("%zu", inc.observed()), {pct});
  }
  anytime.Print("Extension: anytime quality after each observed prefix", csv);
  std::printf("\nExpected shape: incremental within a few points of batch "
              "ISUM even with small batches; anytime quality grows with the "
              "observed prefix; both well above uniform sampling.\n");
  return obs_scope.ExitCode();
}
