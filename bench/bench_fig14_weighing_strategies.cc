// Figure 14: impact of the §7 weighing strategies on improvement (TPC-H-like):
// no weighing / benefits recorded at selection / recalibrated benefits /
// recalibrated + template-based utility readjustment.
// Paper shape: no-weighing worst; template-aware recalibration best.

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  const struct {
    core::WeighingStrategy strategy;
    const char* name;
  } strategies[] = {
      {core::WeighingStrategy::kNone, "NoWeighing"},
      {core::WeighingStrategy::kSelectionBenefit, "Benefit(Selection)"},
      {core::WeighingStrategy::kRecalibrated, "Recalib.Benefit"},
      {core::WeighingStrategy::kRecalibratedWithTemplates,
       "Recalib.w/Template"},
  };

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 16 : 8;
  // Skew instance counts across templates: weights only matter when some
  // selected queries represent many more workload queries than others.
  gen.instance_skew = 1.0;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  // A tight index budget (fewer indexes than selected queries want) forces
  // the tuner to prioritize; only then do query weights matter.
  advisor::TuningOptions tuning;
  tuning.max_indexes = 6;
  const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

  std::vector<std::string> headers = {"k"};
  for (const auto& s : strategies) headers.push_back(s.name);
  eval::Table table(std::move(headers));

  for (size_t k : {8u, 16u, 24u, 32u, 48u}) {
    std::vector<double> row;
    for (const auto& s : strategies) {
      core::IsumOptions options;
      options.weighing = s.strategy;
      const workload::CompressedWorkload compressed =
          core::Isum(env.workload.get(), options).Compress(k);
      row.push_back(
          eval::RunPipeline(*env.workload, compressed, tuner, s.name)
              .improvement_percent);
    }
    table.AddRow(StrFormat("%zu", k), row);
  }
  table.Print(StrFormat("Figure 14 (TPC-H-like, n=%zu): improvement %% per "
                        "weighing strategy",
                        env.workload->size()),
              csv);
  return obs_scope.ExitCode();
}
