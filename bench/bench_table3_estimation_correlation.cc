// Table 3: Pearson correlation of the improvement-estimation techniques of
// §4 with the actual per-query improvement reported by each advisor
// (DTA-style and DEXTER-style), on TPC-H-like and TPC-DS-like workloads.
//
// Rows (paper values, TPC-H DTA / TPC-H DEXTER / TPC-DS DTA / TPC-DS DEXTER):
//   Utility (only cost)        .54 / .40 / .33 / .28
//   Utility (cost+selectivity) .60 / .41 / .44 / .35
//   Similarity (rule-based)    .61 / .53 / .55 / .51
//   Similarity (stats-based)   .68 / .50 / .62 / .48
//   Benefit (rule-based)       .87 / .59 / .70 / .54
//   Benefit (stats-based)      .88 / .62 / .73 / .59

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/benefit.h"

using namespace isum;

namespace {

struct Signals {
  std::vector<double> utility_cost;
  std::vector<double> utility_cost_sel;
  std::vector<double> similarity_rule;
  std::vector<double> similarity_stats;
  std::vector<double> benefit_rule;
  std::vector<double> benefit_stats;
};

Signals ComputeSignals(const workload::Workload& w) {
  Signals out;
  core::FeaturizationOptions rule;
  core::FeaturizationOptions stats;
  stats.scheme = core::WeightingScheme::kStatsBased;
  core::CompressionState rule_state(w, rule, core::UtilityMode::kCostOnly);
  core::CompressionState stats_state(w, stats,
                                     core::UtilityMode::kCostTimesSelectivity);
  for (size_t i = 0; i < w.size(); ++i) {
    out.utility_cost.push_back(rule_state.utility(i));
    out.utility_cost_sel.push_back(stats_state.utility(i));
    double sim_rule = 0.0, sim_stats = 0.0;
    for (size_t j = 0; j < w.size(); ++j) {
      if (j == i) continue;
      sim_rule += rule_state.Similarity(i, j);
      sim_stats += stats_state.Similarity(i, j);
    }
    out.similarity_rule.push_back(sim_rule);
    out.similarity_stats.push_back(sim_stats);
    out.benefit_rule.push_back(core::ConditionalBenefit(rule_state, i));
    out.benefit_stats.push_back(core::ConditionalBenefit(stats_state, i));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  (void)scale;

  eval::Table table({"estimation_technique", "TPC-H DTA", "TPC-H DEXTER",
                     "TPC-DS DTA", "TPC-DS DEXTER"});
  std::vector<std::vector<double>> columns;

  for (const char* workload_name : {"tpch", "tpcds"}) {
    workload::GeneratorOptions gen;
    // Several instances per template: correlations over a few dozen points
    // are too noisy to rank the techniques.
    gen.instances_per_template = workload_name[3] == 'h' ? 8 : 2;
    workload::GeneratedWorkload env =
        workload::MakeWorkloadByName(workload_name, gen);
    const workload::Workload& w = *env.workload;

    const Signals signals = ComputeSignals(w);

    advisor::TuningOptions dta_options;
    dta_options.max_indexes = 20;
    const bench::PerQueryTuning dta = bench::TuneEachQueryAlone(
        env, eval::MakeDtaTuner(w, dta_options));
    advisor::DexterOptions dexter_options;
    const bench::PerQueryTuning dexter = bench::TuneEachQueryAlone(
        env, eval::MakeDexterTuner(w, dexter_options));

    for (const auto* actual : {&dta.workload_improvement,
                               &dexter.workload_improvement}) {
      columns.push_back({PearsonCorrelation(signals.utility_cost, *actual),
                         PearsonCorrelation(signals.utility_cost_sel, *actual),
                         PearsonCorrelation(signals.similarity_rule, *actual),
                         PearsonCorrelation(signals.similarity_stats, *actual),
                         PearsonCorrelation(signals.benefit_rule, *actual),
                         PearsonCorrelation(signals.benefit_stats, *actual)});
    }
  }

  const char* rows[] = {"Utility (only cost)",  "Utility (cost+selectivity)",
                        "Similarity (rule)",    "Similarity (stats)",
                        "Benefit (rule)",       "Benefit (stats)"};
  for (int r = 0; r < 6; ++r) {
    table.AddRow(rows[r], {columns[0][r], columns[1][r], columns[2][r],
                           columns[3][r]});
  }
  table.Print("Table 3: correlation of estimation techniques with actual "
              "per-advisor improvement",
              csv);
  std::printf("\nPaper shape: benefit > similarity > utility in every "
              "column; DTA columns exceed DEXTER columns.\n");
  return obs_scope.ExitCode();
}
