// Ablation (DESIGN.md design-choice index): what the what-if memoization and
// the affected-table pruning in greedy enumeration buy. Reports, per
// workload size: real optimizer invocations, cache hits, and the calls an
// unpruned enumerator would have made (every candidate x every query x
// every greedy round).

#include <cstdio>

#include "bench_util.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);
  const int mul = scale >= 2.0 ? 2 : 1;

  eval::Table table({"n_queries", "optimizer_calls", "cache_hits",
                     "hit_rate_pct", "naive_calls_est"});
  for (int templates : {10, 30, 60, 91}) {
    workload::GeneratorOptions gen;
    gen.instances_per_template = mul;
    gen.max_templates = templates;
    workload::GeneratedWorkload env = workload::MakeTpcds(gen);

    std::vector<advisor::WeightedQuery> queries;
    for (size_t i = 0; i < env.workload->size(); ++i) {
      queries.push_back({&env.workload->query(i).bound, 1.0});
    }
    advisor::TuningOptions options;
    options.max_indexes = 20;
    advisor::DtaStyleAdvisor advisor(env.cost_model.get());
    const advisor::TuningResult result = advisor.Tune(queries, options);

    // A naive enumerator re-costs every query for every candidate trial.
    const double naive = static_cast<double>(result.configurations_explored) *
                         static_cast<double>(queries.size());
    const double total_requests =
        static_cast<double>(result.optimizer_calls) +
        // cache hits inside Tune() are not all enumeration requests, but the
        // comparison direction is what matters here.
        0.0;
    (void)total_requests;
    const double hits = naive - static_cast<double>(result.optimizer_calls);
    table.AddRow(StrFormat("%zu", queries.size()),
                 {static_cast<double>(result.optimizer_calls),
                  std::max(0.0, hits),
                  100.0 * std::max(0.0, hits) / std::max(1.0, naive), naive});
  }
  table.Print("Ablation: optimizer-call savings from memoization + "
              "affected-table pruning (TPC-DS-like, full tuning)",
              csv);
  std::printf("\nExpected shape: real optimizer calls grow far slower than "
              "the naive candidate x query x round product; savings rate "
              "rises with workload size.\n");
  return obs_scope.ExitCode();
}
