#ifndef ISUM_BENCH_BENCH_UTIL_H_
#define ISUM_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Not part of the library API.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <cstdlib>

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "common/checkpoint.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "obs/export.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/process_stats.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "workload/workload_factory.h"

// Short git revision baked in by bench/CMakeLists.txt so recorded baselines
// can be attributed to the code that produced them.
#ifndef ISUM_GIT_REV
#define ISUM_GIT_REV "unknown"
#endif

namespace isum::bench {

/// One named measurement a bench driver records into the --bench-json=
/// file: arbitrary numeric fields plus optional string fields (hashes,
/// workload names). See docs/BENCHMARKING.md for the schema.
struct BenchRun {
  std::string name;
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> strings;
};

/// Process-wide collector for the machine-readable perf baseline
/// (--bench-json=). Drivers call AddRun() after each measured unit of work;
/// ObsScope's destructor renders one self-contained JSON record with the
/// run list, per-phase tracer totals, metric counters, wall time, peak RSS,
/// and the git revision. Appending records of successive revisions into one
/// file yields a perf trajectory (BENCH_*.json) that tools/tracecat can
/// diff; the full workflow is in docs/BENCHMARKING.md.
class BenchJson {
 public:
  static BenchJson& Global() {
    static BenchJson* instance = new BenchJson();
    return *instance;
  }

  /// Records one measured unit of work, stamping it with the current RSS
  /// (obs/process_stats.h) as `rss_after_bytes` and the RSS at the
  /// previous boundary as `rss_before_bytes`. Run records are the bench's
  /// phase boundaries, so memory growth becomes attributable per phase
  /// instead of one process-global peak (docs/BENCHMARKING.md, "memory
  /// workflow").
  void AddRun(BenchRun run) {
    const uint64_t rss = obs::ProcessCurrentRssBytes();
    run.numbers.emplace_back("rss_before_bytes",
                             static_cast<double>(last_rss_bytes_));
    run.numbers.emplace_back("rss_after_bytes", static_cast<double>(rss));
    last_rss_bytes_ = rss;
    runs_.push_back(std::move(run));
  }
  const std::vector<BenchRun>& runs() const { return runs_; }

  /// Resets the `rss_before_bytes` baseline without recording a run;
  /// ObsScope calls it at startup so the first run's delta starts at the
  /// driver's entry footprint, not zero.
  void MarkRssBoundary() { last_rss_bytes_ = obs::ProcessCurrentRssBytes(); }

 private:
  BenchJson() = default;
  std::vector<BenchRun> runs_;
  uint64_t last_rss_bytes_ = 0;
};

/// Peak resident set size of this process in bytes (0 where unsupported).
/// The implementation — with its Linux-KiB/macOS-bytes ru_maxrss quirk —
/// lives in src/obs/process_stats.h, shared with the MetricsExporter's
/// isum_process_* gauges.
inline uint64_t PeakRssBytes() { return obs::ProcessPeakRssBytes(); }

/// The parsed observability flags of one bench invocation. Split out of
/// ObsScope so the argv handling is directly testable
/// (tests/bench_util_test.cc): Parse() consumes every flag it recognizes
/// and compacts argv/argc around them, leaving unknown arguments for the
/// driver's own parser in their original order.
struct ObsFlags {
  std::string bench_name = "bench";  ///< BaseName(argv[0])
  std::string trace_path;
  std::string metrics_path;
  std::string bench_json_path;
  std::string bench_label = "run";
  std::string journal_path;
  std::string metrics_snapshot_path;
  std::string faults_spec;
  std::string profile_path;
  std::string checkpoint_path;
  uint64_t checkpoint_every = 16;
  uint64_t trace_every = 1;
  double time_budget_seconds = 0.0;
  int serve_metrics_port = -1;  ///< -1 = no listener
  int profile_hz = 100;
  bool profile_alloc = false;
  bool allow_truncated = false;

  static ObsFlags Parse(int& argc, char** argv) {
    ObsFlags flags;
    if (argc > 0) flags.bench_name = BaseName(argv[0]);
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace=", 8) == 0) {
        flags.trace_path = arg + 8;
      } else if (std::strncmp(arg, "--trace-every=", 14) == 0) {
        flags.trace_every = std::strtoull(arg + 14, nullptr, 10);
      } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
        flags.metrics_path = arg + 10;
      } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
        flags.bench_json_path = arg + 13;
      } else if (std::strncmp(arg, "--bench-label=", 14) == 0) {
        flags.bench_label = arg + 14;
      } else if (std::strncmp(arg, "--journal=", 10) == 0) {
        flags.journal_path = arg + 10;
      } else if (std::strncmp(arg, "--serve-metrics=", 16) == 0) {
        flags.serve_metrics_port =
            static_cast<int>(std::strtol(arg + 16, nullptr, 10));
      } else if (std::strncmp(arg, "--metrics-snapshot=", 19) == 0) {
        flags.metrics_snapshot_path = arg + 19;
      } else if (std::strncmp(arg, "--profile=", 10) == 0) {
        flags.profile_path = arg + 10;
      } else if (std::strncmp(arg, "--profile-hz=", 13) == 0) {
        flags.profile_hz = static_cast<int>(std::strtol(arg + 13, nullptr, 10));
      } else if (std::strncmp(arg, "--profile-alloc=", 16) == 0) {
        flags.profile_alloc = std::strtol(arg + 16, nullptr, 10) != 0;
      } else if (std::strncmp(arg, "--faults=", 9) == 0) {
        flags.faults_spec = arg + 9;
      } else if (std::strncmp(arg, "--time-budget=", 14) == 0) {
        flags.time_budget_seconds = std::strtod(arg + 14, nullptr);
      } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
        flags.checkpoint_path = arg + 13;
      } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
        flags.checkpoint_every = std::strtoull(arg + 19, nullptr, 10);
      } else if (std::strcmp(arg, "--allow-truncated") == 0) {
        flags.allow_truncated = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    return flags;
  }

  static std::string BaseName(const char* argv0) {
    std::string name(argv0);
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    return name;
  }
};

/// Uniform observability flags for every bench driver. Declare one at the
/// top of main():
///
///   int main(int argc, char** argv) {
///     isum::bench::ObsScope obs_scope(argc, argv);
///     ...
///
/// Recognized flags (consumed from argv so downstream parsers — including
/// google-benchmark's — never see them):
///   --trace=<path>     record spans for the whole run; written as Chrome
///                      trace JSON (open in Perfetto / chrome://tracing)
///   --trace-every=<N>  sample: record every Nth top-level span tree per
///                      thread (with --trace; 1 = all, the default)
///   --metrics=<path>   write a registry snapshot as JSONL at exit
///   --faults=<spec>    arm deterministic fault injection for the run
///                      (spec grammar in common/fault.h; overrides the
///                      ISUM_FAULTS environment variable)
///   --time-budget=<s>  install an ambient whole-run time budget of `s`
///                      seconds (common/deadline.h); stages stop cleanly
///                      with best-so-far results once it expires
///   --checkpoint=<path> install an ambient checkpoint config
///                      (common/checkpoint.h): compression/enumeration
///                      phases write crash-atomic `isum-ckpt-v1` epochs
///                      under <path> and resume from the newest valid one
///                      at startup (docs/ROBUSTNESS.md). Inspect with
///                      `tracecat ckpt`
///   --checkpoint-every=<N> write an epoch every N completed rounds (with
///                      --checkpoint; default 16)
///   --allow-truncated  exit 0 even when a stage stopped early (deadline,
///                      cancellation, faults). Without it any abnormal stop
///                      makes the driver exit 3 so CI can tell a truncated
///                      sweep from a complete one (main returns
///                      obs.ExitCode())
///   --bench-json=<path> write a machine-readable perf record (wall time,
///                      per-phase span totals, counters, peak RSS, git rev,
///                      and every BenchJson::AddRun measurement); enables
///                      the tracer for the run even without --trace=
///   --bench-label=<s>  label stored in the bench JSON record (defaults to
///                      "run"); trajectories use e.g. "pre-campaign"
///   --journal=<path>   open the decision-provenance journal for the run
///                      (isum-events-v1 JSONL, src/obs/journal.h); closed
///                      with `journal_end` at exit. `tracecat explain`
///                      reconstructs the run from it
///   --serve-metrics=<p> serve live registry snapshots over HTTP on
///                      127.0.0.1:<p> while the run executes (GET /metrics
///                      = Prometheus text, GET /healthz); 0 picks an
///                      ephemeral port (printed to stderr). Poll it with
///                      `tracecat watch --url=...`
///   --metrics-snapshot=<path> rewrite a Prometheus-text snapshot file once
///                      per second (and finally at exit) — the air-gapped
///                      companion of --serve-metrics for CI artifacts and
///                      `tracecat watch <path>`
///   --profile=<path>   run the sampling CPU profiler (obs/profiler.h) for
///                      the whole run; written as an isum-profile-v1 record
///                      plus a flamegraph.pl-ready <path>.collapsed file.
///                      Enables the tracer so samples attribute to phases.
///                      Read with `tracecat profile <path>`
///   --profile-hz=<n>   SIGPROF sampling frequency in Hz of CPU time
///                      (with --profile; default 100)
///   --profile-alloc=<0|1> also account operator new/delete per phase
///                      (with --profile; needs a -DISUM_OBS_PROFILING=ON
///                      build, otherwise ignored with a warning)
///
/// Files are written from the destructor, after the driver's work joined.
class ObsScope {
 public:
  ObsScope(int& argc, char** argv) {
    obs::Tracer::Global().SetCurrentThreadName("main");
    flags_ = ObsFlags::Parse(argc, argv);
    BenchJson::Global().MarkRssBoundary();
    if (!flags_.faults_spec.empty()) {
      const Status status =
          FaultInjector::Global().Configure(flags_.faults_spec);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --faults spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    } else {
      // ISUM_FAULTS=<spec> arms injection for drivers run under a harness.
      const Status status = FaultInjector::Global().ConfigureFromEnvironment();
      if (!status.ok()) {
        std::fprintf(stderr, "bad ISUM_FAULTS spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    }
    if (flags_.time_budget_seconds > 0.0) {
      InstallAmbientBudget(TimeBudget::After(flags_.time_budget_seconds));
    }
    if (!flags_.checkpoint_path.empty()) {
      CheckpointConfig ckpt;
      ckpt.path = flags_.checkpoint_path;
      ckpt.every_rounds =
          flags_.checkpoint_every == 0 ? 1 : flags_.checkpoint_every;
      InstallAmbientCheckpoint(ckpt);
    }
    obs::Tracer::Global().SetSampleEvery(flags_.trace_every);
    // The profiler attributes samples through the tracer's span stack, so
    // --profile= enables tracing like --bench-json= does.
    if (!flags_.trace_path.empty() || !flags_.bench_json_path.empty() ||
        !flags_.profile_path.empty()) {
      obs::Tracer::Global().Enable();
    }
    if (!flags_.journal_path.empty()) {
      const std::string label =
          flags_.bench_label != "run" ? flags_.bench_label : flags_.bench_name;
      if (!obs::Journal::Global().Open(flags_.journal_path, label)) {
        std::fprintf(stderr, "cannot open --journal=%s\n",
                     flags_.journal_path.c_str());
        std::exit(2);
      }
    }
    if (flags_.serve_metrics_port >= 0 ||
        !flags_.metrics_snapshot_path.empty()) {
      obs::MetricsExporterOptions exporter_options;
      exporter_options.http_port = flags_.serve_metrics_port;
      exporter_options.snapshot_path = flags_.metrics_snapshot_path;
      exporter_ = std::make_unique<obs::MetricsExporter>(
          &obs::MetricsRegistry::Global(), std::move(exporter_options));
      const Status status = exporter_->Start();
      if (!status.ok()) {
        std::fprintf(stderr, "metrics exporter: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
      if (flags_.serve_metrics_port >= 0) {
        std::fprintf(stderr, "serving metrics on http://127.0.0.1:%d/metrics\n",
                     exporter_->port());
      }
    }
    if (!flags_.profile_path.empty()) {
      if (flags_.profile_alloc && !obs::Profiler::alloc_hooks_compiled()) {
        std::fprintf(stderr,
                     "--profile-alloc=1 ignored: build with "
                     "-DISUM_OBS_PROFILING=ON to compile the alloc hooks\n");
      }
      obs::ProfilerOptions profiler_options;
      profiler_options.sample_hz = flags_.profile_hz;
      profiler_options.track_allocations = flags_.profile_alloc;
      if (obs::Profiler::Global().Start(profiler_options)) {
        profiling_ = true;
      } else {
        // Keep the bench usable: the run still executes, just unprofiled.
        std::fprintf(stderr, "--profile=%s: profiler failed to start "
                             "(unsupported platform?); continuing without\n",
                     flags_.profile_path.c_str());
      }
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~ObsScope() {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Stop the profiler before anything else: Stop() publishes the
    // allocation gauges into the registry, so the exporter's final snapshot
    // and the --metrics= dump below both see them.
    obs::ProfileDump profile;
    if (profiling_) profile = obs::Profiler::Global().Stop();
    // Shut down the exporter next (joins its worker and writes the final
    // snapshot), then close the journal so `journal_end` is the last event.
    exporter_.reset();
    if (!flags_.journal_path.empty()) {
      const uint64_t events = obs::Journal::Global().events_written();
      obs::Journal::Global().Close();
      std::fprintf(stderr, "wrote %llu journal events to %s\n",
                   static_cast<unsigned long long>(events + 1),
                   flags_.journal_path.c_str());
    }
    obs::TraceDump dump;
    if (!flags_.trace_path.empty() || !flags_.bench_json_path.empty() ||
        !flags_.profile_path.empty()) {
      obs::Tracer::Global().Disable();
      dump = obs::Tracer::Global().Drain();
    }
    if (!flags_.trace_path.empty()) {
      Report(obs::WriteFile(flags_.trace_path, obs::ChromeTraceJson(dump)),
             flags_.trace_path, dump.spans.size(), "spans");
    }
    if (!flags_.metrics_path.empty()) {
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      Report(obs::WriteFile(flags_.metrics_path, obs::MetricsJsonl(snapshot)),
             flags_.metrics_path,
             snapshot.counters.size() + snapshot.gauges.size() +
                 snapshot.histograms.size(),
             "metrics");
    }
    if (!flags_.bench_json_path.empty()) {
      const std::string record = RenderBenchJson(dump, wall_seconds);
      Report(obs::WriteFile(flags_.bench_json_path, record),
             flags_.bench_json_path, BenchJson::Global().runs().size(),
             "bench runs");
    }
    if (profiling_) {
      obs::ProfileMeta meta;
      meta.label = flags_.bench_label;
      meta.bench = flags_.bench_name;
      meta.git_rev = ISUM_GIT_REV;
      meta.wall_seconds = wall_seconds;
      Report(obs::WriteFile(flags_.profile_path,
                            obs::ProfileJson(profile, meta)),
             flags_.profile_path, profile.samples, "profile samples");
      const std::string collapsed_path = flags_.profile_path + ".collapsed";
      Report(obs::WriteFile(collapsed_path, obs::CollapsedStacks(profile)),
             collapsed_path, profile.stacks.size(), "collapsed stacks");
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  /// Driver exit status honoring the abnormal-stop ledger
  /// (common/deadline.h): 0 when every stage ran to completion (or
  /// --allow-truncated was passed), 3 when any stage stopped early. Bench
  /// mains `return obs_scope.ExitCode();` so CI distinguishes truncated
  /// sweeps from complete ones.
  int ExitCode() const {
    const uint64_t abnormal = AbnormalStopCount();
    if (abnormal == 0 || flags_.allow_truncated) return 0;
    std::fprintf(stderr,
                 "%llu stage(s) stopped before completion; exiting 3 "
                 "(pass --allow-truncated to accept partial results)\n",
                 static_cast<unsigned long long>(abnormal));
    return 3;
  }

 private:
  static void Report(const Status& status, const std::string& path,
                     size_t items, const char* what) {
    if (status.ok()) {
      std::fprintf(stderr, "wrote %zu %s to %s\n", items, what, path.c_str());
    } else {
      std::fprintf(stderr, "obs export failed: %s\n",
                   status.ToString().c_str());
    }
  }

  /// Renders one self-contained bench record. The layout is valid JSON kept
  /// deliberately line-disciplined — one object or scalar per line — so
  /// tools/tracecat (and grep) can process it without a full JSON parser,
  /// like the Chrome trace exporter. Schema: docs/BENCHMARKING.md.
  std::string RenderBenchJson(const obs::TraceDump& dump,
                              double wall_seconds) const {
    // Per-phase totals, aggregated by span name, descending total.
    struct Phase {
      const char* name;
      uint64_t count = 0;
      uint64_t total_nanos = 0;
      uint64_t max_nanos = 0;
    };
    std::vector<Phase> phases;
    for (const obs::SpanRecord& span : dump.spans) {
      Phase* p = nullptr;
      for (Phase& existing : phases) {
        if (std::strcmp(existing.name, span.name) == 0) {
          p = &existing;
          break;
        }
      }
      if (p == nullptr) {
        phases.push_back(Phase{span.name});
        p = &phases.back();
      }
      ++p->count;
      p->total_nanos += span.dur_nanos;
      p->max_nanos = std::max(p->max_nanos, span.dur_nanos);
    }
    std::sort(phases.begin(), phases.end(), [](const Phase& a, const Phase& b) {
      if (a.total_nanos != b.total_nanos) return a.total_nanos > b.total_nanos;
      return std::strcmp(a.name, b.name) < 0;
    });

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();

    std::string out;
    out += "{\n";
    out += "\"schema\": \"isum-bench-v1\",\n";
    out += StrFormat("\"label\": \"%s\",\n", flags_.bench_label.c_str());
    out += StrFormat("\"bench\": \"%s\",\n", flags_.bench_name.c_str());
    out += StrFormat("\"git_rev\": \"%s\",\n", ISUM_GIT_REV);
    out += StrFormat("\"wall_seconds\": %.6f,\n", wall_seconds);
    out += StrFormat("\"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(PeakRssBytes()));
    out += "\"phases\": [\n";
    for (size_t i = 0; i < phases.size(); ++i) {
      out += StrFormat(
          "{\"name\": \"%s\", \"count\": %llu, \"total_us\": %.3f, "
          "\"max_us\": %.3f}%s\n",
          phases[i].name, static_cast<unsigned long long>(phases[i].count),
          static_cast<double>(phases[i].total_nanos) / 1e3,
          static_cast<double>(phases[i].max_nanos) / 1e3,
          i + 1 < phases.size() ? "," : "");
    }
    out += "],\n";
    out += "\"counters\": [\n";
    for (size_t i = 0; i < snapshot.counters.size(); ++i) {
      out += StrFormat(
          "{\"name\": \"%s\", \"value\": %llu}%s\n",
          snapshot.counters[i].first.c_str(),
          static_cast<unsigned long long>(snapshot.counters[i].second),
          i + 1 < snapshot.counters.size() ? "," : "");
    }
    out += "],\n";
    out += "\"runs\": [\n";
    const std::vector<BenchRun>& runs = BenchJson::Global().runs();
    for (size_t i = 0; i < runs.size(); ++i) {
      std::string line = StrFormat("{\"name\": \"%s\"", runs[i].name.c_str());
      for (const auto& [key, value] : runs[i].numbers) {
        line += StrFormat(", \"%s\": %.9g", key.c_str(), value);
      }
      for (const auto& [key, value] : runs[i].strings) {
        line += StrFormat(", \"%s\": \"%s\"", key.c_str(), value.c_str());
      }
      line += StrFormat("}%s\n", i + 1 < runs.size() ? "," : "");
      out += line;
    }
    out += "]\n";
    out += "}\n";
    return out;
  }

  ObsFlags flags_;
  bool profiling_ = false;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  std::chrono::steady_clock::time_point start_;
};

/// The six algorithms of Figure 9/10/12/15: Uniform, Cost, Stratified,
/// GSUM, ISUM, ISUM-S.
inline std::vector<std::unique_ptr<baselines::Compressor>> StandardCompressors(
    uint64_t seed = 1) {
  std::vector<std::unique_ptr<baselines::Compressor>> out;
  out.push_back(std::make_unique<baselines::UniformSamplingCompressor>(seed));
  out.push_back(std::make_unique<baselines::TopCostCompressor>());
  out.push_back(std::make_unique<baselines::StratifiedCompressor>(seed));
  out.push_back(std::make_unique<baselines::GsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>(
      core::IsumOptions::StatsVariant(), "ISUM-S"));
  return out;
}

/// Wall-clock helper.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-query "tune this query alone, then measure" sweep shared by the
/// correlation experiments (Figures 5–8, Table 3). For each query q_i:
/// tune {q_i}, record the improvement of q_i itself (reduction) and of the
/// whole workload (improvement %).
struct PerQueryTuning {
  std::vector<double> reduction;               ///< C(q) - C_I(q)
  std::vector<double> workload_improvement;    ///< % on the full workload
};

inline PerQueryTuning TuneEachQueryAlone(const workload::GeneratedWorkload& env,
                                         const eval::TunerFn& tuner) {
  PerQueryTuning out;
  const workload::Workload& w = *env.workload;
  for (size_t i = 0; i < w.size(); ++i) {
    std::vector<advisor::WeightedQuery> one = {{&w.query(i).bound, 1.0}};
    const advisor::TuningResult result = tuner(one);
    out.reduction.push_back(result.initial_cost - result.final_cost);
    out.workload_improvement.push_back(
        eval::WorkloadImprovementPercent(w, result.configuration));
  }
  return out;
}

/// Sweeps every compressor over the compressed-size axis `ks`, tuning each
/// compressed workload with `tuner` and measuring improvement (%) on the full
/// workload. Returns a table with one row per k and one column per algorithm.
inline eval::Table CompareCompressors(
    const workload::GeneratedWorkload& env,
    const std::vector<std::unique_ptr<baselines::Compressor>>& compressors,
    const std::vector<size_t>& ks, const eval::TunerFn& tuner,
    const char* axis_name = "k") {
  std::vector<std::string> headers = {axis_name};
  for (const auto& c : compressors) headers.push_back(c->name());
  eval::Table table(std::move(headers));
  for (size_t k : ks) {
    if (k > env.workload->size()) break;
    std::vector<double> row;
    for (const auto& c : compressors) {
      const workload::CompressedWorkload compressed =
          c->Compress(*env.workload, k);
      const eval::EvaluationResult r =
          eval::RunPipeline(*env.workload, compressed, tuner, c->name());
      row.push_back(r.improvement_percent);
    }
    table.AddRow(StrFormat("%zu", k), row);
  }
  return table;
}

}  // namespace isum::bench

#endif  // ISUM_BENCH_BENCH_UTIL_H_
