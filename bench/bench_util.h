#ifndef ISUM_BENCH_BENCH_UTIL_H_
#define ISUM_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Not part of the library API.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "obs/export.h"
#include "obs/exporter.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/workload_factory.h"

// Short git revision baked in by bench/CMakeLists.txt so recorded baselines
// can be attributed to the code that produced them.
#ifndef ISUM_GIT_REV
#define ISUM_GIT_REV "unknown"
#endif

namespace isum::bench {

/// One named measurement a bench driver records into the --bench-json=
/// file: arbitrary numeric fields plus optional string fields (hashes,
/// workload names). See docs/BENCHMARKING.md for the schema.
struct BenchRun {
  std::string name;
  std::vector<std::pair<std::string, double>> numbers;
  std::vector<std::pair<std::string, std::string>> strings;
};

/// Process-wide collector for the machine-readable perf baseline
/// (--bench-json=). Drivers call AddRun() after each measured unit of work;
/// ObsScope's destructor renders one self-contained JSON record with the
/// run list, per-phase tracer totals, metric counters, wall time, peak RSS,
/// and the git revision. Appending records of successive revisions into one
/// file yields a perf trajectory (BENCH_*.json) that tools/tracecat can
/// diff; the full workflow is in docs/BENCHMARKING.md.
class BenchJson {
 public:
  static BenchJson& Global() {
    static BenchJson* instance = new BenchJson();
    return *instance;
  }

  void AddRun(BenchRun run) { runs_.push_back(std::move(run)); }
  const std::vector<BenchRun>& runs() const { return runs_; }

 private:
  BenchJson() = default;
  std::vector<BenchRun> runs_;
};

/// Peak resident set size of this process in bytes (0 where unsupported).
inline uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// Uniform observability flags for every bench driver. Declare one at the
/// top of main():
///
///   int main(int argc, char** argv) {
///     isum::bench::ObsScope obs_scope(argc, argv);
///     ...
///
/// Recognized flags (consumed from argv so downstream parsers — including
/// google-benchmark's — never see them):
///   --trace=<path>     record spans for the whole run; written as Chrome
///                      trace JSON (open in Perfetto / chrome://tracing)
///   --trace-every=<N>  sample: record every Nth top-level span tree per
///                      thread (with --trace; 1 = all, the default)
///   --metrics=<path>   write a registry snapshot as JSONL at exit
///   --faults=<spec>    arm deterministic fault injection for the run
///                      (spec grammar in common/fault.h; overrides the
///                      ISUM_FAULTS environment variable)
///   --time-budget=<s>  install an ambient whole-run time budget of `s`
///                      seconds (common/deadline.h); stages stop cleanly
///                      with best-so-far results once it expires
///   --bench-json=<path> write a machine-readable perf record (wall time,
///                      per-phase span totals, counters, peak RSS, git rev,
///                      and every BenchJson::AddRun measurement); enables
///                      the tracer for the run even without --trace=
///   --bench-label=<s>  label stored in the bench JSON record (defaults to
///                      "run"); trajectories use e.g. "pre-campaign"
///   --journal=<path>   open the decision-provenance journal for the run
///                      (isum-events-v1 JSONL, src/obs/journal.h); closed
///                      with `journal_end` at exit. `tracecat explain`
///                      reconstructs the run from it
///   --serve-metrics=<p> serve live registry snapshots over HTTP on
///                      127.0.0.1:<p> while the run executes (GET /metrics
///                      = Prometheus text, GET /healthz); 0 picks an
///                      ephemeral port (printed to stderr). Poll it with
///                      `tracecat watch --url=...`
///   --metrics-snapshot=<path> rewrite a Prometheus-text snapshot file once
///                      per second (and finally at exit) — the air-gapped
///                      companion of --serve-metrics for CI artifacts and
///                      `tracecat watch <path>`
///
/// Files are written from the destructor, after the driver's work joined.
class ObsScope {
 public:
  ObsScope(int& argc, char** argv) {
    obs::Tracer::Global().SetCurrentThreadName("main");
    int kept = 1;
    std::string faults_spec;
    std::string metrics_snapshot_path;
    double time_budget_seconds = 0.0;
    uint64_t trace_every = 1;
    int serve_metrics_port = -1;
    bench_name_ = argc > 0 ? BaseName(argv[0]) : "bench";
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace=", 8) == 0) {
        trace_path_ = arg + 8;
      } else if (std::strncmp(arg, "--trace-every=", 14) == 0) {
        trace_every = std::strtoull(arg + 14, nullptr, 10);
      } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
        metrics_path_ = arg + 10;
      } else if (std::strncmp(arg, "--bench-json=", 13) == 0) {
        bench_json_path_ = arg + 13;
      } else if (std::strncmp(arg, "--bench-label=", 14) == 0) {
        bench_label_ = arg + 14;
      } else if (std::strncmp(arg, "--journal=", 10) == 0) {
        journal_path_ = arg + 10;
      } else if (std::strncmp(arg, "--serve-metrics=", 16) == 0) {
        serve_metrics_port = static_cast<int>(std::strtol(arg + 16, nullptr, 10));
      } else if (std::strncmp(arg, "--metrics-snapshot=", 19) == 0) {
        metrics_snapshot_path = arg + 19;
      } else if (std::strncmp(arg, "--faults=", 9) == 0) {
        faults_spec = arg + 9;
      } else if (std::strncmp(arg, "--time-budget=", 14) == 0) {
        time_budget_seconds = std::strtod(arg + 14, nullptr);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    if (!faults_spec.empty()) {
      const Status status = FaultInjector::Global().Configure(faults_spec);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --faults spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    } else {
      // ISUM_FAULTS=<spec> arms injection for drivers run under a harness.
      const Status status = FaultInjector::Global().ConfigureFromEnvironment();
      if (!status.ok()) {
        std::fprintf(stderr, "bad ISUM_FAULTS spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    }
    if (time_budget_seconds > 0.0) {
      InstallAmbientBudget(TimeBudget::After(time_budget_seconds));
    }
    obs::Tracer::Global().SetSampleEvery(trace_every);
    if (!trace_path_.empty() || !bench_json_path_.empty()) {
      obs::Tracer::Global().Enable();
    }
    if (!journal_path_.empty()) {
      const std::string label =
          bench_label_ != "run" ? bench_label_ : bench_name_;
      if (!obs::Journal::Global().Open(journal_path_, label)) {
        std::fprintf(stderr, "cannot open --journal=%s\n",
                     journal_path_.c_str());
        std::exit(2);
      }
    }
    if (serve_metrics_port >= 0 || !metrics_snapshot_path.empty()) {
      obs::MetricsExporterOptions exporter_options;
      exporter_options.http_port = serve_metrics_port;
      exporter_options.snapshot_path = std::move(metrics_snapshot_path);
      exporter_ = std::make_unique<obs::MetricsExporter>(
          &obs::MetricsRegistry::Global(), std::move(exporter_options));
      const Status status = exporter_->Start();
      if (!status.ok()) {
        std::fprintf(stderr, "metrics exporter: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
      if (serve_metrics_port >= 0) {
        std::fprintf(stderr, "serving metrics on http://127.0.0.1:%d/metrics\n",
                     exporter_->port());
      }
    }
    start_ = std::chrono::steady_clock::now();
  }

  ~ObsScope() {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    // Shut down the exporter first (joins its worker and writes the final
    // snapshot), then close the journal so `journal_end` is the last event.
    exporter_.reset();
    if (!journal_path_.empty()) {
      const uint64_t events = obs::Journal::Global().events_written();
      obs::Journal::Global().Close();
      std::fprintf(stderr, "wrote %llu journal events to %s\n",
                   static_cast<unsigned long long>(events + 1),
                   journal_path_.c_str());
    }
    obs::TraceDump dump;
    if (!trace_path_.empty() || !bench_json_path_.empty()) {
      obs::Tracer::Global().Disable();
      dump = obs::Tracer::Global().Drain();
    }
    if (!trace_path_.empty()) {
      Report(obs::WriteFile(trace_path_, obs::ChromeTraceJson(dump)),
             trace_path_, dump.spans.size(), "spans");
    }
    if (!metrics_path_.empty()) {
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      Report(obs::WriteFile(metrics_path_, obs::MetricsJsonl(snapshot)),
             metrics_path_,
             snapshot.counters.size() + snapshot.gauges.size() +
                 snapshot.histograms.size(),
             "metrics");
    }
    if (!bench_json_path_.empty()) {
      const std::string record = RenderBenchJson(dump, wall_seconds);
      Report(obs::WriteFile(bench_json_path_, record), bench_json_path_,
             BenchJson::Global().runs().size(), "bench runs");
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  static void Report(const Status& status, const std::string& path,
                     size_t items, const char* what) {
    if (status.ok()) {
      std::fprintf(stderr, "wrote %zu %s to %s\n", items, what, path.c_str());
    } else {
      std::fprintf(stderr, "obs export failed: %s\n",
                   status.ToString().c_str());
    }
  }

  static std::string BaseName(const char* argv0) {
    std::string name(argv0);
    const size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    return name;
  }

  /// Renders one self-contained bench record. The layout is valid JSON kept
  /// deliberately line-disciplined — one object or scalar per line — so
  /// tools/tracecat (and grep) can process it without a full JSON parser,
  /// like the Chrome trace exporter. Schema: docs/BENCHMARKING.md.
  std::string RenderBenchJson(const obs::TraceDump& dump,
                              double wall_seconds) const {
    // Per-phase totals, aggregated by span name, descending total.
    struct Phase {
      const char* name;
      uint64_t count = 0;
      uint64_t total_nanos = 0;
      uint64_t max_nanos = 0;
    };
    std::vector<Phase> phases;
    for (const obs::SpanRecord& span : dump.spans) {
      Phase* p = nullptr;
      for (Phase& existing : phases) {
        if (std::strcmp(existing.name, span.name) == 0) {
          p = &existing;
          break;
        }
      }
      if (p == nullptr) {
        phases.push_back(Phase{span.name});
        p = &phases.back();
      }
      ++p->count;
      p->total_nanos += span.dur_nanos;
      p->max_nanos = std::max(p->max_nanos, span.dur_nanos);
    }
    std::sort(phases.begin(), phases.end(), [](const Phase& a, const Phase& b) {
      if (a.total_nanos != b.total_nanos) return a.total_nanos > b.total_nanos;
      return std::strcmp(a.name, b.name) < 0;
    });

    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();

    std::string out;
    out += "{\n";
    out += "\"schema\": \"isum-bench-v1\",\n";
    out += StrFormat("\"label\": \"%s\",\n", bench_label_.c_str());
    out += StrFormat("\"bench\": \"%s\",\n", bench_name_.c_str());
    out += StrFormat("\"git_rev\": \"%s\",\n", ISUM_GIT_REV);
    out += StrFormat("\"wall_seconds\": %.6f,\n", wall_seconds);
    out += StrFormat("\"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(PeakRssBytes()));
    out += "\"phases\": [\n";
    for (size_t i = 0; i < phases.size(); ++i) {
      out += StrFormat(
          "{\"name\": \"%s\", \"count\": %llu, \"total_us\": %.3f, "
          "\"max_us\": %.3f}%s\n",
          phases[i].name, static_cast<unsigned long long>(phases[i].count),
          static_cast<double>(phases[i].total_nanos) / 1e3,
          static_cast<double>(phases[i].max_nanos) / 1e3,
          i + 1 < phases.size() ? "," : "");
    }
    out += "],\n";
    out += "\"counters\": [\n";
    for (size_t i = 0; i < snapshot.counters.size(); ++i) {
      out += StrFormat(
          "{\"name\": \"%s\", \"value\": %llu}%s\n",
          snapshot.counters[i].first.c_str(),
          static_cast<unsigned long long>(snapshot.counters[i].second),
          i + 1 < snapshot.counters.size() ? "," : "");
    }
    out += "],\n";
    out += "\"runs\": [\n";
    const std::vector<BenchRun>& runs = BenchJson::Global().runs();
    for (size_t i = 0; i < runs.size(); ++i) {
      std::string line = StrFormat("{\"name\": \"%s\"", runs[i].name.c_str());
      for (const auto& [key, value] : runs[i].numbers) {
        line += StrFormat(", \"%s\": %.9g", key.c_str(), value);
      }
      for (const auto& [key, value] : runs[i].strings) {
        line += StrFormat(", \"%s\": \"%s\"", key.c_str(), value.c_str());
      }
      line += StrFormat("}%s\n", i + 1 < runs.size() ? "," : "");
      out += line;
    }
    out += "]\n";
    out += "}\n";
    return out;
  }

  std::string trace_path_;
  std::string metrics_path_;
  std::string bench_json_path_;
  std::string bench_label_ = "run";
  std::string bench_name_;
  std::string journal_path_;
  std::unique_ptr<obs::MetricsExporter> exporter_;
  std::chrono::steady_clock::time_point start_;
};

/// The six algorithms of Figure 9/10/12/15: Uniform, Cost, Stratified,
/// GSUM, ISUM, ISUM-S.
inline std::vector<std::unique_ptr<baselines::Compressor>> StandardCompressors(
    uint64_t seed = 1) {
  std::vector<std::unique_ptr<baselines::Compressor>> out;
  out.push_back(std::make_unique<baselines::UniformSamplingCompressor>(seed));
  out.push_back(std::make_unique<baselines::TopCostCompressor>());
  out.push_back(std::make_unique<baselines::StratifiedCompressor>(seed));
  out.push_back(std::make_unique<baselines::GsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>(
      core::IsumOptions::StatsVariant(), "ISUM-S"));
  return out;
}

/// Wall-clock helper.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-query "tune this query alone, then measure" sweep shared by the
/// correlation experiments (Figures 5–8, Table 3). For each query q_i:
/// tune {q_i}, record the improvement of q_i itself (reduction) and of the
/// whole workload (improvement %).
struct PerQueryTuning {
  std::vector<double> reduction;               ///< C(q) - C_I(q)
  std::vector<double> workload_improvement;    ///< % on the full workload
};

inline PerQueryTuning TuneEachQueryAlone(const workload::GeneratedWorkload& env,
                                         const eval::TunerFn& tuner) {
  PerQueryTuning out;
  const workload::Workload& w = *env.workload;
  for (size_t i = 0; i < w.size(); ++i) {
    std::vector<advisor::WeightedQuery> one = {{&w.query(i).bound, 1.0}};
    const advisor::TuningResult result = tuner(one);
    out.reduction.push_back(result.initial_cost - result.final_cost);
    out.workload_improvement.push_back(
        eval::WorkloadImprovementPercent(w, result.configuration));
  }
  return out;
}

/// Sweeps every compressor over the compressed-size axis `ks`, tuning each
/// compressed workload with `tuner` and measuring improvement (%) on the full
/// workload. Returns a table with one row per k and one column per algorithm.
inline eval::Table CompareCompressors(
    const workload::GeneratedWorkload& env,
    const std::vector<std::unique_ptr<baselines::Compressor>>& compressors,
    const std::vector<size_t>& ks, const eval::TunerFn& tuner,
    const char* axis_name = "k") {
  std::vector<std::string> headers = {axis_name};
  for (const auto& c : compressors) headers.push_back(c->name());
  eval::Table table(std::move(headers));
  for (size_t k : ks) {
    if (k > env.workload->size()) break;
    std::vector<double> row;
    for (const auto& c : compressors) {
      const workload::CompressedWorkload compressed =
          c->Compress(*env.workload, k);
      const eval::EvaluationResult r =
          eval::RunPipeline(*env.workload, compressed, tuner, c->name());
      row.push_back(r.improvement_percent);
    }
    table.AddRow(StrFormat("%zu", k), row);
  }
  return table;
}

}  // namespace isum::bench

#endif  // ISUM_BENCH_BENCH_UTIL_H_
