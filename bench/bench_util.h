#ifndef ISUM_BENCH_BENCH_UTIL_H_
#define ISUM_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Not part of the library API.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <cstdlib>

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/workload_factory.h"

namespace isum::bench {

/// Uniform observability flags for every bench driver. Declare one at the
/// top of main():
///
///   int main(int argc, char** argv) {
///     isum::bench::ObsScope obs_scope(argc, argv);
///     ...
///
/// Recognized flags (consumed from argv so downstream parsers — including
/// google-benchmark's — never see them):
///   --trace=<path>     record spans for the whole run; written as Chrome
///                      trace JSON (open in Perfetto / chrome://tracing)
///   --trace-every=<N>  sample: record every Nth top-level span tree per
///                      thread (with --trace; 1 = all, the default)
///   --metrics=<path>   write a registry snapshot as JSONL at exit
///   --faults=<spec>    arm deterministic fault injection for the run
///                      (spec grammar in common/fault.h; overrides the
///                      ISUM_FAULTS environment variable)
///   --time-budget=<s>  install an ambient whole-run time budget of `s`
///                      seconds (common/deadline.h); stages stop cleanly
///                      with best-so-far results once it expires
///
/// Files are written from the destructor, after the driver's work joined.
class ObsScope {
 public:
  ObsScope(int& argc, char** argv) {
    obs::Tracer::Global().SetCurrentThreadName("main");
    int kept = 1;
    std::string faults_spec;
    double time_budget_seconds = 0.0;
    uint64_t trace_every = 1;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--trace=", 8) == 0) {
        trace_path_ = arg + 8;
      } else if (std::strncmp(arg, "--trace-every=", 14) == 0) {
        trace_every = std::strtoull(arg + 14, nullptr, 10);
      } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
        metrics_path_ = arg + 10;
      } else if (std::strncmp(arg, "--faults=", 9) == 0) {
        faults_spec = arg + 9;
      } else if (std::strncmp(arg, "--time-budget=", 14) == 0) {
        time_budget_seconds = std::strtod(arg + 14, nullptr);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    if (!faults_spec.empty()) {
      const Status status = FaultInjector::Global().Configure(faults_spec);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --faults spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    } else {
      // ISUM_FAULTS=<spec> arms injection for drivers run under a harness.
      const Status status = FaultInjector::Global().ConfigureFromEnvironment();
      if (!status.ok()) {
        std::fprintf(stderr, "bad ISUM_FAULTS spec: %s\n",
                     status.ToString().c_str());
        std::exit(2);
      }
    }
    if (time_budget_seconds > 0.0) {
      InstallAmbientBudget(TimeBudget::After(time_budget_seconds));
    }
    obs::Tracer::Global().SetSampleEvery(trace_every);
    if (!trace_path_.empty()) obs::Tracer::Global().Enable();
  }

  ~ObsScope() {
    if (!trace_path_.empty()) {
      obs::Tracer::Global().Disable();
      const obs::TraceDump dump = obs::Tracer::Global().Drain();
      Report(obs::WriteFile(trace_path_, obs::ChromeTraceJson(dump)),
             trace_path_, dump.spans.size(), "spans");
    }
    if (!metrics_path_.empty()) {
      const obs::MetricsSnapshot snapshot =
          obs::MetricsRegistry::Global().Snapshot();
      Report(obs::WriteFile(metrics_path_, obs::MetricsJsonl(snapshot)),
             metrics_path_,
             snapshot.counters.size() + snapshot.gauges.size() +
                 snapshot.histograms.size(),
             "metrics");
    }
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  static void Report(const Status& status, const std::string& path,
                     size_t items, const char* what) {
    if (status.ok()) {
      std::fprintf(stderr, "wrote %zu %s to %s\n", items, what, path.c_str());
    } else {
      std::fprintf(stderr, "obs export failed: %s\n",
                   status.ToString().c_str());
    }
  }

  std::string trace_path_;
  std::string metrics_path_;
};

/// The six algorithms of Figure 9/10/12/15: Uniform, Cost, Stratified,
/// GSUM, ISUM, ISUM-S.
inline std::vector<std::unique_ptr<baselines::Compressor>> StandardCompressors(
    uint64_t seed = 1) {
  std::vector<std::unique_ptr<baselines::Compressor>> out;
  out.push_back(std::make_unique<baselines::UniformSamplingCompressor>(seed));
  out.push_back(std::make_unique<baselines::TopCostCompressor>());
  out.push_back(std::make_unique<baselines::StratifiedCompressor>(seed));
  out.push_back(std::make_unique<baselines::GsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>());
  out.push_back(std::make_unique<eval::IsumCompressor>(
      core::IsumOptions::StatsVariant(), "ISUM-S"));
  return out;
}

/// Wall-clock helper.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-query "tune this query alone, then measure" sweep shared by the
/// correlation experiments (Figures 5–8, Table 3). For each query q_i:
/// tune {q_i}, record the improvement of q_i itself (reduction) and of the
/// whole workload (improvement %).
struct PerQueryTuning {
  std::vector<double> reduction;               ///< C(q) - C_I(q)
  std::vector<double> workload_improvement;    ///< % on the full workload
};

inline PerQueryTuning TuneEachQueryAlone(const workload::GeneratedWorkload& env,
                                         const eval::TunerFn& tuner) {
  PerQueryTuning out;
  const workload::Workload& w = *env.workload;
  for (size_t i = 0; i < w.size(); ++i) {
    std::vector<advisor::WeightedQuery> one = {{&w.query(i).bound, 1.0}};
    const advisor::TuningResult result = tuner(one);
    out.reduction.push_back(result.initial_cost - result.final_cost);
    out.workload_improvement.push_back(
        eval::WorkloadImprovementPercent(w, result.configuration));
  }
  return out;
}

/// Sweeps every compressor over the compressed-size axis `ks`, tuning each
/// compressed workload with `tuner` and measuring improvement (%) on the full
/// workload. Returns a table with one row per k and one column per algorithm.
inline eval::Table CompareCompressors(
    const workload::GeneratedWorkload& env,
    const std::vector<std::unique_ptr<baselines::Compressor>>& compressors,
    const std::vector<size_t>& ks, const eval::TunerFn& tuner,
    const char* axis_name = "k") {
  std::vector<std::string> headers = {axis_name};
  for (const auto& c : compressors) headers.push_back(c->name());
  eval::Table table(std::move(headers));
  for (size_t k : ks) {
    if (k > env.workload->size()) break;
    std::vector<double> row;
    for (const auto& c : compressors) {
      const workload::CompressedWorkload compressed =
          c->Compress(*env.workload, k);
      const eval::EvaluationResult r =
          eval::RunPipeline(*env.workload, compressed, tuner, c->name());
      row.push_back(r.improvement_percent);
    }
    table.AddRow(StrFormat("%zu", k), row);
  }
  return table;
}

}  // namespace isum::bench

#endif  // ISUM_BENCH_BENCH_UTIL_H_
