// Figure 5: correlation between per-query utility proxies and the actual
// reduction in cost when each query is tuned independently (TPC-H-like).
//   5a: utility = original cost of the query            (paper: 0.971)
//   5b: utility = (1 - avg selectivity) * original cost (paper: 0.988)

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "core/utility.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 4 : 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  advisor::TuningOptions options;
  options.max_indexes = 20;  // "all indexes recommended for the query"
  const bench::PerQueryTuning tuned =
      bench::TuneEachQueryAlone(env, eval::MakeDtaTuner(w, options));

  std::vector<double> cost, utility_sel;
  for (size_t i = 0; i < w.size(); ++i) {
    cost.push_back(w.query(i).base_cost);
    utility_sel.push_back(core::EstimatedReduction(
        w.query(i), core::UtilityMode::kCostTimesSelectivity));
  }

  eval::Table table({"query", "cost", "utility_cost_sel", "actual_reduction"});
  for (size_t i = 0; i < w.size(); ++i) {
    table.AddRow(w.query(i).tag,
                 {cost[i], utility_sel[i], tuned.reduction[i]});
  }
  table.Print("Figure 5: per-query utility vs. actual reduction (TPC-H-like)",
              csv);

  std::printf("\ncorr(cost, reduction)              = %.3f  (paper: 0.971)\n",
              PearsonCorrelation(cost, tuned.reduction));
  std::printf("corr(cost x (1-sel), reduction)    = %.3f  (paper: 0.988)\n",
              PearsonCorrelation(utility_sel, tuned.reduction));
  return obs_scope.ExitCode();
}
