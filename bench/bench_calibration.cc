// Calibration: does the cost-model substrate (standing in for SQL Server's
// optimizer) behave like a real system? Materializes a small TPC-H-like
// database from the same statistics the optimizer costs with, executes the
// optimizer's plans counting rows touched, and reports:
//   (a) correlation of estimated cost vs. executed work per query;
//   (b) estimated vs. executed whole-workload improvement under the
//       advisor's recommended configuration.
// This backs DESIGN.md's substitution argument empirically.

#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "exec/executor.h"

using namespace isum;

int main(int argc, char** argv) {
  isum::bench::ObsScope obs_scope(argc, argv);
  const bool csv = eval::WantCsv(argc, argv);
  const double scale = eval::ScaleArg(argc, argv);

  workload::GeneratorOptions gen;
  gen.instances_per_template = scale >= 2.0 ? 2 : 1;
  gen.scale = 0.002;  // small tables so execution is fast
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  exec::Database db(env.catalog.get(), env.stats.get());
  db.MaterializeAll(/*max_rows_per_table=*/30'000, /*seed=*/5);
  exec::Executor executor(&db);
  engine::Optimizer optimizer(env.cost_model.get());

  // --- (a) cost vs. work, per query, empty configuration. ---
  std::vector<double> est, work;
  eval::Table per_query({"query", "estimated_cost", "executed_row_ops"});
  for (size_t i = 0; i < w.size(); ++i) {
    const engine::PlanSummary plan =
        optimizer.Optimize(w.query(i).bound, engine::Configuration());
    const exec::ExecutionResult run = executor.Execute(w.query(i).bound, plan);
    if (run.truncated) continue;
    est.push_back(plan.total_cost);
    work.push_back(static_cast<double>(run.row_ops));
    per_query.AddRow(w.query(i).tag,
                     {plan.total_cost, static_cast<double>(run.row_ops)});
  }
  per_query.Print("Calibration (a): estimated cost vs. executed row "
                  "operations, per TPC-H-like query",
                  csv);
  std::printf("\nPearson  corr(cost, work) = %.3f\n",
              PearsonCorrelation(est, work));
  std::printf("Spearman corr(cost, work) = %.3f\n",
              SpearmanCorrelation(est, work));

  // --- (b) estimated vs. executed improvement under a recommendation. ---
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < w.size(); ++i) {
    queries.push_back({&w.query(i).bound, 1.0});
  }
  advisor::TuningOptions options;
  options.max_indexes = 16;
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());
  const advisor::TuningResult tuned = advisor.Tune(queries, options);

  double est_before = 0.0, est_after = 0.0;
  double work_before = 0.0, work_after = 0.0;
  for (size_t i = 0; i < w.size(); ++i) {
    const engine::PlanSummary base =
        optimizer.Optimize(w.query(i).bound, engine::Configuration());
    const engine::PlanSummary opt =
        optimizer.Optimize(w.query(i).bound, tuned.configuration);
    const exec::ExecutionResult base_run =
        executor.Execute(w.query(i).bound, base);
    const exec::ExecutionResult opt_run =
        executor.Execute(w.query(i).bound, opt);
    if (base_run.truncated || opt_run.truncated) continue;
    est_before += base.total_cost;
    est_after += opt.total_cost;
    work_before += static_cast<double>(base_run.row_ops);
    work_after += static_cast<double>(opt_run.row_ops);
  }
  eval::Table improvement({"metric", "improvement_pct"});
  improvement.AddRow("estimated (optimizer cost)",
                     {(est_before - est_after) / est_before * 100.0});
  improvement.AddRow("executed (row operations)",
                     {(work_before - work_after) / work_before * 100.0});
  improvement.Print("Calibration (b): estimated vs. executed improvement "
                    "under the recommended configuration",
                    csv);
  std::printf("\nExpected shape: strong positive correlation in (a); both "
              "improvement numbers in (b) positive and of the same "
              "magnitude.\n");
  return obs_scope.ExitCode();
}
