#ifndef ISUM_VIEWS_VIEW_H_
#define ISUM_VIEWS_VIEW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/cost_model.h"
#include "sql/bound_query.h"

namespace isum::views {

/// A materialized aggregate view: a join core (tables + equi-join
/// predicates) grouped by a set of columns, storing a set of measure
/// columns. The §10 "other physical design structures" extension — the
/// second structure ISUM's compression is evaluated against
/// (bench_ext_views).
///
/// A view answers a query when its join core matches exactly, the query's
/// group-by columns are a subset of the view's, every filter/output column
/// the query needs survives in the view (group or measure column), and the
/// query has no residual complex predicates. Matching is deliberately
/// conservative (no view chaining, no partial join containment) — enough to
/// study workload compression for view selection, not a rewriting engine.
class MaterializedView {
 public:
  MaterializedView() = default;
  MaterializedView(std::vector<catalog::TableId> tables,
                   std::vector<sql::JoinPredicate> joins,
                   std::vector<catalog::ColumnId> group_by,
                   std::vector<catalog::ColumnId> measures);

  const std::vector<catalog::TableId>& tables() const { return tables_; }
  const std::vector<sql::JoinPredicate>& joins() const { return joins_; }
  const std::vector<catalog::ColumnId>& group_by() const { return group_by_; }
  const std::vector<catalog::ColumnId>& measures() const { return measures_; }

  /// Estimated stored rows: min(join output, product of group distincts).
  double EstimatedRows(const engine::CostModel& cost_model) const;

  /// Estimated on-disk size in bytes.
  uint64_t SizeBytes(const engine::CostModel& cost_model) const;

  /// True if this view can answer `query` (see class comment).
  bool Matches(const sql::BoundQuery& query) const;

  /// Cost of answering `query` from this view: scan the view, apply the
  /// query's (group-level) filters, re-aggregate if the query groups
  /// coarser than the view. Only valid when Matches(query).
  double AnswerCost(const sql::BoundQuery& query,
                    const engine::CostModel& cost_model) const;

  /// Stable identity for dedup/hashing.
  std::string CanonicalKey() const;

  std::string DebugName(const catalog::Catalog& catalog) const;

  friend bool operator==(const MaterializedView& a, const MaterializedView& b) {
    return a.CanonicalKey() == b.CanonicalKey();
  }

 private:
  std::vector<catalog::TableId> tables_;       // sorted
  std::vector<sql::JoinPredicate> joins_;      // canonical order
  std::vector<catalog::ColumnId> group_by_;    // sorted
  std::vector<catalog::ColumnId> measures_;    // sorted
};

/// Builds the candidate view for one query: its join core grouped by its
/// group-by columns with its aggregate arguments and (group-level) filter
/// columns as stored columns. Returns nullopt for queries a view cannot
/// serve (no aggregation, complex predicates, or no tables).
std::optional<MaterializedView> ViewCandidateFor(const sql::BoundQuery& query);

}  // namespace isum::views

namespace std {
template <>
struct hash<isum::views::MaterializedView> {
  size_t operator()(const isum::views::MaterializedView& v) const noexcept {
    return hash<string>()(v.CanonicalKey());
  }
};
}  // namespace std

#endif  // ISUM_VIEWS_VIEW_H_
