#include "views/view.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "engine/optimizer.h"

namespace isum::views {

namespace {

constexpr uint64_t kPageBytes = 8192;
constexpr int32_t kRowOverheadBytes = 16;

/// Canonical (lo, hi) column pair of an equi-join predicate.
std::pair<catalog::ColumnId, catalog::ColumnId> CanonicalJoin(
    const sql::JoinPredicate& jp) {
  return jp.left < jp.right ? std::make_pair(jp.left, jp.right)
                            : std::make_pair(jp.right, jp.left);
}

bool SameJoinSet(const std::vector<sql::JoinPredicate>& a,
                 const std::vector<sql::JoinPredicate>& b) {
  if (a.size() != b.size()) return false;
  std::vector<std::pair<catalog::ColumnId, catalog::ColumnId>> ca, cb;
  for (const auto& j : a) ca.push_back(CanonicalJoin(j));
  for (const auto& j : b) cb.push_back(CanonicalJoin(j));
  std::sort(ca.begin(), ca.end());
  std::sort(cb.begin(), cb.end());
  return ca == cb;
}

bool IsSubset(const std::vector<catalog::ColumnId>& subset,
              const std::vector<catalog::ColumnId>& sorted_superset) {
  for (catalog::ColumnId c : subset) {
    if (!std::binary_search(sorted_superset.begin(), sorted_superset.end(), c)) {
      return false;
    }
  }
  return true;
}

}  // namespace

MaterializedView::MaterializedView(std::vector<catalog::TableId> tables,
                                   std::vector<sql::JoinPredicate> joins,
                                   std::vector<catalog::ColumnId> group_by,
                                   std::vector<catalog::ColumnId> measures)
    : tables_(std::move(tables)),
      joins_(std::move(joins)),
      group_by_(std::move(group_by)),
      measures_(std::move(measures)) {
  std::sort(tables_.begin(), tables_.end());
  tables_.erase(std::unique(tables_.begin(), tables_.end()), tables_.end());
  std::sort(joins_.begin(), joins_.end(),
            [](const sql::JoinPredicate& a, const sql::JoinPredicate& b) {
              return CanonicalJoin(a) < CanonicalJoin(b);
            });
  std::sort(group_by_.begin(), group_by_.end());
  group_by_.erase(std::unique(group_by_.begin(), group_by_.end()),
                  group_by_.end());
  std::sort(measures_.begin(), measures_.end());
  measures_.erase(std::unique(measures_.begin(), measures_.end()),
                  measures_.end());
}

double MaterializedView::EstimatedRows(
    const engine::CostModel& cost_model) const {
  const catalog::Catalog& cat = cost_model.catalog();
  double join_rows = 1.0;
  for (catalog::TableId t : tables_) {
    join_rows *= static_cast<double>(cat.table(t).row_count());
  }
  for (const sql::JoinPredicate& j : joins_) {
    join_rows *= j.selectivity;
  }
  join_rows = std::max(1.0, join_rows);

  double groups = 1.0;
  for (catalog::ColumnId g : group_by_) {
    groups *= std::max(1.0, cost_model.stats().DistinctCount(g));
    if (groups > join_rows) break;
  }
  return std::clamp(groups, 1.0, join_rows);
}

uint64_t MaterializedView::SizeBytes(const engine::CostModel& cost_model) const {
  const catalog::Catalog& cat = cost_model.catalog();
  int32_t width = kRowOverheadBytes;
  for (catalog::ColumnId c : group_by_) width += cat.column(c).width_bytes;
  for (catalog::ColumnId c : measures_) width += cat.column(c).width_bytes;
  return static_cast<uint64_t>(EstimatedRows(cost_model)) *
         static_cast<uint64_t>(width);
}

bool MaterializedView::Matches(const sql::BoundQuery& query) const {
  // Inner-join single-block queries only.
  std::vector<catalog::TableId> query_tables;
  for (const auto& ref : query.tables) {
    if (ref.semantics != sql::JoinSemantics::kInner) return false;
    query_tables.push_back(ref.table);
  }
  std::sort(query_tables.begin(), query_tables.end());
  query_tables.erase(std::unique(query_tables.begin(), query_tables.end()),
                     query_tables.end());
  if (query_tables != tables_) return false;
  if (!SameJoinSet(query.joins, joins_)) return false;
  if (!query.complex_predicates.empty()) return false;
  if (query.select_star) return false;

  // Filters must apply at group level.
  std::vector<catalog::ColumnId> filter_cols;
  for (const auto& f : query.filters) filter_cols.push_back(f.column);
  if (!IsSubset(filter_cols, group_by_)) return false;
  if (!IsSubset(query.group_by_columns, group_by_)) return false;

  // Outputs and order-by columns must survive in the view.
  std::vector<catalog::ColumnId> stored = group_by_;
  stored.insert(stored.end(), measures_.begin(), measures_.end());
  std::sort(stored.begin(), stored.end());
  if (!IsSubset(query.output_columns, stored)) return false;
  for (const auto& [col, desc] : query.order_by_columns) {
    if (!std::binary_search(stored.begin(), stored.end(), col)) return false;
  }
  // Aggregate arguments must be stored measures.
  for (const auto& agg : query.aggregates) {
    if (agg.argument.valid() &&
        !std::binary_search(measures_.begin(), measures_.end(),
                            agg.argument)) {
      return false;
    }
    if (agg.distinct) return false;  // DISTINCT aggs don't re-aggregate
  }
  return true;
}

double MaterializedView::AnswerCost(const sql::BoundQuery& query,
                                    const engine::CostModel& cost_model) const {
  const engine::CostParams& p = cost_model.params();
  const double rows = EstimatedRows(cost_model);
  const double pages =
      static_cast<double>(SizeBytes(cost_model)) / kPageBytes + 1.0;

  // Scan the view, apply the query's filters at group granularity.
  double cost = pages * p.seq_page_cost + rows * p.cpu_tuple_cost;
  double sel = 1.0;
  for (const auto& f : query.filters) {
    cost += rows * p.cpu_operator_cost;
    sel *= f.selectivity;
  }
  double out = std::max(1.0, rows * sel);

  // Re-aggregate if the query groups coarser than the view.
  const bool has_agg =
      !query.aggregates.empty() || !query.group_by_columns.empty();
  if (has_agg && query.group_by_columns.size() < group_by_.size()) {
    double groups = 1.0;
    for (catalog::ColumnId g : query.group_by_columns) {
      groups *= std::max(1.0, cost_model.stats().DistinctCount(g));
      if (groups > out) break;
    }
    groups = std::clamp(groups, 1.0, out);
    cost += cost_model.HashAggCost(out, groups);
    out = groups;
  }
  if (!query.order_by_columns.empty()) {
    cost += cost_model.SortCost(out, query.limit);
  }
  return cost;
}

std::string MaterializedView::CanonicalKey() const {
  std::string out = "t:";
  for (catalog::TableId t : tables_) out += StrFormat("%d,", t);
  out += "|j:";
  for (const auto& j : joins_) {
    const auto [lo, hi] = CanonicalJoin(j);
    out += StrFormat("%d.%d=%d.%d,", lo.table, lo.column, hi.table, hi.column);
  }
  out += "|g:";
  for (catalog::ColumnId c : group_by_) {
    out += StrFormat("%d.%d,", c.table, c.column);
  }
  out += "|m:";
  for (catalog::ColumnId c : measures_) {
    out += StrFormat("%d.%d,", c.table, c.column);
  }
  return out;
}

std::string MaterializedView::DebugName(const catalog::Catalog& catalog) const {
  std::string out = "MV[";
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (i > 0) out += "*";
    out += catalog.table(tables_[i]).name();
  }
  out += StrFormat("] g=%zu m=%zu", group_by_.size(), measures_.size());
  return out;
}

std::optional<MaterializedView> ViewCandidateFor(const sql::BoundQuery& query) {
  if (query.tables.empty() || query.select_star) return std::nullopt;
  if (!query.complex_predicates.empty()) return std::nullopt;
  const bool has_agg =
      !query.aggregates.empty() || !query.group_by_columns.empty();
  if (!has_agg) return std::nullopt;  // views here are aggregate views
  std::vector<catalog::TableId> tables;
  for (const auto& ref : query.tables) {
    if (ref.semantics != sql::JoinSemantics::kInner) return std::nullopt;
    tables.push_back(ref.table);
  }
  for (const auto& agg : query.aggregates) {
    if (agg.distinct) return std::nullopt;
  }

  // Group by the query's group columns plus every filter column, so any
  // parameter binding of the same template can be answered.
  std::vector<catalog::ColumnId> group = query.group_by_columns;
  for (const auto& f : query.filters) group.push_back(f.column);
  for (const auto& [col, desc] : query.order_by_columns) group.push_back(col);

  std::vector<catalog::ColumnId> measures;
  for (const auto& agg : query.aggregates) {
    if (agg.argument.valid()) measures.push_back(agg.argument);
  }
  // Plain output columns must be stored too; put non-group outputs in
  // measures so they survive.
  for (catalog::ColumnId c : query.output_columns) measures.push_back(c);

  return MaterializedView(std::move(tables), query.joins, std::move(group),
                          std::move(measures));
}

}  // namespace isum::views
