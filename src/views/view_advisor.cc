#include "views/view_advisor.h"

#include <algorithm>
#include <unordered_set>

#include "engine/optimizer.h"

namespace isum::views {

double CostWithViews(const sql::BoundQuery& query,
                     const std::vector<MaterializedView>& views,
                     const engine::CostModel& cost_model) {
  engine::Optimizer optimizer(&cost_model);
  double best = optimizer.Cost(query, engine::Configuration());
  for (const MaterializedView& view : views) {
    if (view.Matches(query)) {
      best = std::min(best, view.AnswerCost(query, cost_model));
    }
  }
  return best;
}

ViewTuningResult ViewAdvisor::Tune(
    const std::vector<advisor::WeightedQuery>& queries,
    const ViewTuningOptions& options) const {
  ViewTuningResult result;
  engine::Optimizer optimizer(cost_model_);

  // Candidate pool (deduplicated).
  std::vector<MaterializedView> pool;
  std::unordered_set<std::string> seen;
  for (const advisor::WeightedQuery& wq : queries) {
    auto candidate = ViewCandidateFor(*wq.query);
    if (!candidate.has_value()) continue;
    if (seen.insert(candidate->CanonicalKey()).second) {
      pool.push_back(std::move(*candidate));
    }
  }

  // Per-query current costs.
  std::vector<double> current(queries.size());
  double total = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    current[i] = optimizer.Cost(*queries[i].query, engine::Configuration());
    total += queries[i].weight * current[i];
  }
  result.initial_cost = total;

  const uint64_t budget = static_cast<uint64_t>(
      options.storage_budget_multiplier *
      static_cast<double>(cost_model_->catalog().total_data_bytes()));

  std::vector<bool> used(pool.size(), false);
  while (static_cast<int>(result.views.size()) < options.max_views) {
    double best_improvement = 0.0;
    size_t best = pool.size();
    std::vector<double> best_costs;
    for (size_t v = 0; v < pool.size(); ++v) {
      if (used[v]) continue;
      if (result.storage_bytes + pool[v].SizeBytes(*cost_model_) > budget) {
        continue;
      }
      double improvement = 0.0;
      std::vector<double> costs(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        costs[i] = current[i];
        if (pool[v].Matches(*queries[i].query)) {
          costs[i] = std::min(
              costs[i], pool[v].AnswerCost(*queries[i].query, *cost_model_));
          improvement += queries[i].weight * (current[i] - costs[i]);
        }
      }
      if (improvement > best_improvement) {
        best_improvement = improvement;
        best = v;
        best_costs = std::move(costs);
      }
    }
    if (best == pool.size() || best_improvement <= 0.0) break;
    used[best] = true;
    result.storage_bytes += pool[best].SizeBytes(*cost_model_);
    result.views.push_back(pool[best]);
    current = std::move(best_costs);
    total -= best_improvement;
  }
  result.final_cost = total;
  return result;
}

}  // namespace isum::views
