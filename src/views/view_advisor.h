#ifndef ISUM_VIEWS_VIEW_ADVISOR_H_
#define ISUM_VIEWS_VIEW_ADVISOR_H_

#include <vector>

#include "advisor/advisor.h"
#include "views/view.h"

namespace isum::views {

/// Knobs for view selection.
struct ViewTuningOptions {
  int max_views = 10;
  /// Storage budget as a fraction of the base data size (views are bulkier
  /// than indexes; 1.0x of the database is a generous default).
  double storage_budget_multiplier = 1.0;
};

struct ViewTuningResult {
  std::vector<MaterializedView> views;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  uint64_t storage_bytes = 0;
};

/// Cost of `query` given `views`: the cheaper of the base-table plan (no
/// indexes) and the best matching view.
double CostWithViews(const sql::BoundQuery& query,
                     const std::vector<MaterializedView>& views,
                     const engine::CostModel& cost_model);

/// A greedy materialized-view advisor, mirroring the index advisor's
/// structure (candidates per query -> greedy enumeration under a storage
/// budget, honoring query weights). Exists to evaluate the paper's §10
/// claim that workload compression extends to other physical design
/// problems (bench_ext_views).
class ViewAdvisor {
 public:
  explicit ViewAdvisor(const engine::CostModel* cost_model)
      : cost_model_(cost_model) {}

  ViewTuningResult Tune(const std::vector<advisor::WeightedQuery>& queries,
                        const ViewTuningOptions& options = {}) const;

 private:
  const engine::CostModel* cost_model_;
};

}  // namespace isum::views

#endif  // ISUM_VIEWS_VIEW_ADVISOR_H_
