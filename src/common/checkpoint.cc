#include "common/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>

#include "common/check.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace isum {

namespace {

constexpr char kMagic[] = "isum-ckpt-v1";  // 12 bytes, no terminator on disk
constexpr size_t kMagicLen = 12;
constexpr uint32_t kVersion = 1;

Mutex g_ambient_ckpt_mu;
CheckpointConfig g_ambient_ckpt ISUM_GUARDED_BY(g_ambient_ckpt_mu);

struct CkptMetrics {
  obs::Counter* writes;
  obs::Counter* write_failures;
  obs::Counter* restores;
  obs::Counter* rejected;
  obs::Counter* bytes_written;

  static const CkptMetrics& Get() {
    static const CkptMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return CkptMetrics{registry.GetCounter("ckpt.writes"),
                         registry.GetCounter("ckpt.write_failures"),
                         registry.GetCounter("ckpt.restores"),
                         registry.GetCounter("ckpt.rejected"),
                         registry.GetCounter("ckpt.bytes_written")};
    }();
    return m;
  }
};

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

void PutU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

uint32_t GetU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t GetU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

/// Splits `path` into (directory, filename). Paths without a separator get
/// directory ".".
void SplitPath(const std::string& path, std::string* dir, std::string* file) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    *dir = ".";
    *file = path;
  } else {
    *dir = slash == 0 ? "/" : path.substr(0, slash);
    *file = path.substr(slash + 1);
  }
}

Status ParseError(const std::string& what) {
  return Status::ParseError("checkpoint: " + what);
}

/// Creates `dir` and any missing ancestors (mkdir -p). Existing directories
/// are fine; the final component failing is reported.
bool MakeDirs(const std::string& dir) {
  if (dir.empty() || dir == "." || dir == "/") return true;
  std::string prefix;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    if (!prefix.empty() && prefix != "/") {
      if (mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) return false;
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  // Table generated on first use from the reflected IEEE polynomial.
  static const uint32_t* const table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

/// ---- CheckpointWriter ----

void CheckpointWriter::BeginSection(uint32_t id) {
  ISUM_CHECK_MSG(!in_section_, "BeginSection inside an open section");
  in_section_ = true;
  sections_.push_back(Section{id, {}});
}

void CheckpointWriter::EndSection() {
  ISUM_CHECK_MSG(in_section_, "EndSection without BeginSection");
  in_section_ = false;
}

void CheckpointWriter::AppendU64(uint64_t value) {
  ISUM_CHECK_MSG(in_section_, "append outside a section");
  PutU64(&sections_.back().payload, value);
}

void CheckpointWriter::AppendF64(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(bits);
}

void CheckpointWriter::AppendBytes(const void* data, size_t len) {
  ISUM_CHECK_MSG(in_section_, "append outside a section");
  sections_.back().payload.append(static_cast<const char*>(data), len);
}

void CheckpointWriter::AppendString(std::string_view s) {
  AppendU64(s.size());
  AppendBytes(s.data(), s.size());
}

void CheckpointWriter::AppendU64Vector(const std::vector<uint64_t>& values) {
  AppendU64(values.size());
  for (const uint64_t v : values) AppendU64(v);
}

void CheckpointWriter::AppendF64Vector(const std::vector<double>& values) {
  AppendU64(values.size());
  for (const double v : values) AppendF64(v);
}

std::string CheckpointWriter::Serialize() const {
  ISUM_CHECK_MSG(!in_section_, "Serialize with an open section");
  std::string out;
  out.append(kMagic, kMagicLen);
  PutU32(&out, kVersion);
  PutU32(&out, static_cast<uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    PutU32(&out, s.id);
    PutU64(&out, s.payload.size());
    out.append(s.payload);
    PutU32(&out, Crc32(s.payload.data(), s.payload.size()));
  }
  PutU32(&out, Crc32(out.data() + kMagicLen, out.size() - kMagicLen));
  return out;
}

Status CheckpointWriter::WriteAtomic(const std::string& path) const {
  return WriteFileAtomic(path, Serialize());
}

/// ---- CheckpointCursor ----

Status CheckpointCursor::Need(size_t bytes) const {
  if (payload_.size() - pos_ < bytes) {
    return ParseError("section payload underrun");
  }
  return Status::OK();
}

StatusOr<uint64_t> CheckpointCursor::ReadU64() {
  ISUM_RETURN_IF_ERROR(Need(8));
  const uint64_t v = GetU64(payload_.data() + pos_);
  pos_ += 8;
  return v;
}

StatusOr<double> CheckpointCursor::ReadF64() {
  ISUM_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

StatusOr<std::string> CheckpointCursor::ReadString() {
  ISUM_ASSIGN_OR_RETURN(const uint64_t len, ReadU64());
  ISUM_RETURN_IF_ERROR(Need(len));
  std::string s(payload_.substr(pos_, len));
  pos_ += len;
  return s;
}

StatusOr<std::vector<uint64_t>> CheckpointCursor::ReadU64Vector() {
  ISUM_ASSIGN_OR_RETURN(const uint64_t count, ReadU64());
  if (count > remaining() / 8) return ParseError("vector length overruns");
  ISUM_RETURN_IF_ERROR(Need(count * 8));
  std::vector<uint64_t> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(GetU64(payload_.data() + pos_));
    pos_ += 8;
  }
  return out;
}

StatusOr<std::vector<double>> CheckpointCursor::ReadF64Vector() {
  ISUM_ASSIGN_OR_RETURN(const uint64_t count, ReadU64());
  if (count > remaining() / 8) return ParseError("vector length overruns");
  ISUM_RETURN_IF_ERROR(Need(count * 8));
  std::vector<double> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t bits = GetU64(payload_.data() + pos_);
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    out.push_back(v);
    pos_ += 8;
  }
  return out;
}

/// ---- CheckpointReader ----

StatusOr<CheckpointReader> CheckpointReader::Parse(std::string bytes) {
  CheckpointReader reader;
  reader.bytes_ = std::move(bytes);
  const std::string& b = reader.bytes_;
  // Header: magic + version + section count; trailer: file CRC.
  if (b.size() < kMagicLen + 4 + 4 + 4) {
    return ParseError("truncated header");
  }
  if (std::memcmp(b.data(), kMagic, kMagicLen) != 0) {
    return ParseError("bad magic (not an isum-ckpt-v1 file)");
  }
  const uint32_t version = GetU32(b.data() + kMagicLen);
  if (version != kVersion) {
    return ParseError(StrFormat("unsupported version %u (expected %u)",
                                version, kVersion));
  }
  const uint32_t file_crc = GetU32(b.data() + b.size() - 4);
  const uint32_t computed =
      Crc32(b.data() + kMagicLen, b.size() - kMagicLen - 4);
  if (file_crc != computed) {
    return ParseError("file CRC mismatch (torn or corrupt)");
  }
  const uint32_t section_count = GetU32(b.data() + kMagicLen + 4);
  size_t pos = kMagicLen + 8;
  const size_t end = b.size() - 4;  // file CRC excluded from the walk
  for (uint32_t i = 0; i < section_count; ++i) {
    if (end - pos < 12) return ParseError("truncated section header");
    const uint32_t id = GetU32(b.data() + pos);
    const uint64_t len = GetU64(b.data() + pos + 4);
    pos += 12;
    if (end - pos < len || end - pos - len < 4) {
      return ParseError("section length overruns file");
    }
    const uint32_t crc = GetU32(b.data() + pos + len);
    if (crc != Crc32(b.data() + pos, len)) {
      return ParseError(StrFormat("section %u CRC mismatch", id));
    }
    reader.sections_.push_back(SectionSpan{id, pos, static_cast<size_t>(len)});
    pos += len + 4;
  }
  if (pos != end) return ParseError("trailing bytes after last section");
  return reader;
}

bool CheckpointReader::HasSection(uint32_t id) const {
  for (const SectionSpan& s : sections_) {
    if (s.id == id) return true;
  }
  return false;
}

StatusOr<CheckpointCursor> CheckpointReader::Section(uint32_t id) const {
  for (const SectionSpan& s : sections_) {
    if (s.id == id) {
      return CheckpointCursor(
          std::string_view(bytes_).substr(s.offset, s.length));
    }
  }
  return Status::NotFound(StrFormat("checkpoint: no section %u", id));
}

std::vector<uint32_t> CheckpointReader::SectionIds() const {
  std::vector<uint32_t> ids;
  ids.reserve(sections_.size());
  for (const SectionSpan& s : sections_) ids.push_back(s.id);
  return ids;
}

size_t CheckpointReader::SectionSize(uint32_t id) const {
  for (const SectionSpan& s : sections_) {
    if (s.id == id) return s.length;
  }
  return 0;
}

/// ---- File helpers ----

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on " + path);
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot create " + tmp);
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // Flush libc buffers, then force the data to stable storage before the
  // rename publishes it: rename-before-fsync could publish a torn file.
  const bool flushed = std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    unlink(tmp.c_str());
    return Status::Internal("short or failed write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  // Make the rename itself durable.
  std::string dir;
  std::string file;
  SplitPath(path, &dir, &file);
  const int dfd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    fsync(dfd);
    close(dfd);
  }
  return Status::OK();
}

/// ---- CheckpointStore ----

CheckpointStore::CheckpointStore(std::string base_path, uint64_t fingerprint)
    : base_(std::move(base_path)), fingerprint_(fingerprint) {
  // A base like "ckpt/run" on a fresh machine has no parent directory yet;
  // without this every best-effort epoch write fails silently and a later
  // "resume" quietly starts from scratch.
  std::string dir;
  std::string file;
  SplitPath(base_, &dir, &file);
  MakeDirs(dir);
  ScanExistingEpochs();
}

std::string CheckpointStore::EpochPath(uint64_t epoch) const {
  return StrFormat("%s.%016llx.e%llu.ckpt", base_.c_str(),
                   static_cast<unsigned long long>(fingerprint_),
                   static_cast<unsigned long long>(epoch));
}

void CheckpointStore::ScanExistingEpochs() {
  std::string dir;
  std::string file;
  SplitPath(base_, &dir, &file);
  const std::string prefix = StrFormat(
      "%s.%016llx.e", file.c_str(), static_cast<unsigned long long>(fingerprint_));
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;  // no directory yet: no epochs
  uint64_t max_epoch = 0;
  bool any = false;
  while (struct dirent* entry = readdir(d)) {
    const std::string_view name(entry->d_name);
    if (name.size() <= prefix.size() + 5) continue;  // ".ckpt" suffix
    if (name.substr(0, prefix.size()) != prefix) continue;
    if (name.substr(name.size() - 5) != ".ckpt") continue;
    const std::string digits(
        name.substr(prefix.size(), name.size() - prefix.size() - 5));
    char* endp = nullptr;
    const uint64_t epoch = std::strtoull(digits.c_str(), &endp, 10);
    if (endp == nullptr || *endp != '\0' || digits.empty()) continue;
    if (!any || epoch > max_epoch) max_epoch = epoch;
    any = true;
  }
  closedir(d);
  if (any) next_epoch_ = max_epoch + 1;
}

Status CheckpointStore::WriteEpoch(const CheckpointWriter& writer) {
  const CkptMetrics& metrics = CkptMetrics::Get();
  const std::string image = writer.Serialize();
  const Status status = WriteFileAtomic(EpochPath(next_epoch_), image);
  if (!status.ok()) {
    metrics.write_failures->Add(1);
    return status;
  }
  metrics.writes->Add(1);
  metrics.bytes_written->Add(image.size());
  last_write_bytes_ = image.size();
  // Keep this epoch and the previous one; prune everything older. Pruning
  // after the new epoch is durable means a crash anywhere leaves at least
  // one intact checkpoint on disk.
  if (next_epoch_ >= 2) {
    for (uint64_t e = next_epoch_ - 1; e-- > 0;) {
      if (unlink(EpochPath(e).c_str()) != 0) break;  // already pruned
    }
  }
  ++next_epoch_;
  return Status::OK();
}

StatusOr<CheckpointReader> CheckpointStore::LoadLatest() {
  const CkptMetrics& metrics = CkptMetrics::Get();
  if (next_epoch_ == 0) return Status::NotFound("no checkpoint epochs");
  for (uint64_t e = next_epoch_; e-- > 0;) {
    StatusOr<std::string> bytes = ReadFileToString(EpochPath(e));
    if (!bytes.ok()) continue;  // pruned or missing epoch
    StatusOr<CheckpointReader> reader = CheckpointReader::Parse(*std::move(bytes));
    if (reader.ok()) {
      loaded_epoch_ = e;
      metrics.restores->Add(1);
      return reader;
    }
    // Torn or corrupt epoch: reject it and fall back to the previous one.
    metrics.rejected->Add(1);
  }
  return Status::NotFound("no valid checkpoint epoch (all torn or corrupt)");
}

/// ---- Ambient checkpoint configuration ----

void InstallAmbientCheckpoint(const CheckpointConfig& config) {
  MutexLock lock(g_ambient_ckpt_mu);
  g_ambient_ckpt = config;
}

CheckpointConfig AmbientCheckpoint() {
  MutexLock lock(g_ambient_ckpt_mu);
  return g_ambient_ckpt;
}

CheckpointConfig EffectiveCheckpoint(const CheckpointConfig& local) {
  if (local.enabled()) return local;
  return AmbientCheckpoint();
}

}  // namespace isum
