#include "common/jsonl.h"

#include <cstdlib>

#include "common/string_util.h"

namespace isum {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

StatusOr<std::string> JsonUnescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= escaped.size()) {
      return Status::ParseError("dangling escape in JSON string");
    }
    switch (escaped[i]) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u': {
        if (i + 4 >= escaped.size()) {
          return Status::ParseError("truncated \\u escape");
        }
        unsigned code = 0;
        for (int d = 1; d <= 4; ++d) {
          const char h = escaped[i + d];
          code <<= 4;
          if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
          else return Status::ParseError("bad \\u escape");
        }
        if (code > 0x7F) {
          return Status::ParseError("non-ASCII \\u escape unsupported");
        }
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default:
        return Status::ParseError("unknown escape in JSON string");
    }
  }
  return out;
}

bool JsonHasKey(const std::string& line, const std::string& name) {
  return line.find("\"" + name + "\"") != std::string::npos;
}

StatusOr<std::string> JsonExtractString(const std::string& line,
                                        const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::ParseError("missing key '" + name + "'");
  }
  pos = line.find('"', line.find(':', pos + needle.size()));
  if (pos == std::string::npos) {
    return Status::ParseError("malformed value for '" + name + "'");
  }
  std::string value;
  for (size_t i = pos + 1; i < line.size(); ++i) {
    if (line[i] == '\\') {
      if (i + 1 >= line.size()) break;
      value.push_back('\\');
      value.push_back(line[++i]);
      continue;
    }
    if (line[i] == '"') return JsonUnescape(value);
    value.push_back(line[i]);
  }
  return Status::ParseError("unterminated value for '" + name + "'");
}

StatusOr<double> JsonExtractNumber(const std::string& line,
                                   const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return Status::ParseError("missing key '" + name + "'");
  }
  pos = line.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return Status::ParseError("malformed value for '" + name + "'");
  }
  char* end = nullptr;
  const double v = std::strtod(line.c_str() + pos + 1, &end);
  if (end == line.c_str() + pos + 1) {
    return Status::ParseError("non-numeric value for '" + name + "'");
  }
  return v;
}

}  // namespace isum
