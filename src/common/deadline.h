#ifndef ISUM_COMMON_DEADLINE_H_
#define ISUM_COMMON_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace isum {

/// Deadlines, cancellation, and time budgets for the tuning pipeline.
///
/// ISUM's value proposition is tuning under a budget (what-if calls, wall
/// clock). This header is the library-wide vocabulary for "stop cleanly when
/// the budget expires": a monotonic Deadline, a hierarchical
/// CancellationToken, and the TimeBudget that combines them. Long-running
/// stages (greedy selection, candidate generation, configuration
/// enumeration) call TimeBudget::CheckCancelled() cooperatively and return
/// best-so-far results tagged with a StopReason instead of aborting.
/// Semantics are documented in docs/ROBUSTNESS.md.
///
/// Cost model: an unlimited budget short-circuits without reading the clock
/// or touching any atomic, so the layer is zero-cost when no budget is set.

/// ---- Injectable monotonic clock ----
///
/// Every deadline/backoff time read in the library goes through
/// MonotonicNanos()/SleepForNanos() so tests can substitute a deterministic
/// clock. The isum_lint rule `isum-no-raw-clock` enforces this outside
/// src/common/ and src/obs/.

using MonotonicClockFn = uint64_t (*)();
using SleepFn = void (*)(uint64_t nanos);

/// Nanoseconds from the process monotonic clock (or the test override).
uint64_t MonotonicNanos();

/// Test hook: replaces the clock (nullptr restores the steady clock).
void SetMonotonicClockForTest(MonotonicClockFn fn);

/// Blocks for `nanos` (or invokes the test override, which may not block).
void SleepForNanos(uint64_t nanos);

/// Test hook: replaces the sleeper (nullptr restores the real sleep).
void SetSleepForTest(SleepFn fn);

/// ---- Stop reasons ----

/// Why a pipeline stage returned: the `stop_reason` taxonomy carried by
/// SelectionResult, CompressedWorkload, TuningResult, and EvaluationResult
/// (docs/ROBUSTNESS.md).
enum class StopReason {
  kComplete = 0,  ///< ran to its natural fixpoint
  kDeadline,      ///< time budget expired; result is best-so-far
  kCancelled,     ///< cancellation token fired; result is best-so-far
  kFault,         ///< a persistent (non-retryable) failure cut the run short
};

/// Short stable name, e.g. "deadline" (used in reports and tests).
const char* StopReasonToString(StopReason reason);

/// Records a pipeline stage's final stop reason in the process-wide
/// abnormal-stop ledger. Entry points (Compress/Tune/baselines) call this
/// once per run; bench drivers consult AbnormalStopCount() to exit nonzero
/// on truncated runs unless --allow-truncated was passed
/// (docs/ROBUSTNESS.md, "Exit codes").
void NoteStopReason(StopReason reason);

/// Stages that stopped abnormally (reason != kComplete) since process start
/// or the last ResetAbnormalStopCount().
uint64_t AbnormalStopCount();

/// Test hook: clears the abnormal-stop ledger.
void ResetAbnormalStopCount();

/// ---- Deadline ----

/// A point on the monotonic clock. Value type; an unlimited deadline never
/// reads the clock.
class Deadline {
 public:
  static constexpr uint64_t kNoDeadline = ~uint64_t{0};

  /// Unlimited (never expires).
  Deadline() = default;

  /// Expires `seconds` from now. Non-positive budgets expire immediately.
  static Deadline After(double seconds);

  /// Expires at an absolute MonotonicNanos() reading (test construction).
  static Deadline AtNanos(uint64_t monotonic_nanos) {
    Deadline d;
    d.nanos_ = monotonic_nanos;
    return d;
  }

  bool unlimited() const { return nanos_ == kNoDeadline; }

  /// True once the clock passed the deadline. No clock read when unlimited.
  bool expired() const { return !unlimited() && MonotonicNanos() >= nanos_; }

  /// Nanoseconds until expiry (0 if expired, kNoDeadline if unlimited).
  uint64_t remaining_nanos() const;

  uint64_t nanos() const { return nanos_; }

 private:
  uint64_t nanos_ = kNoDeadline;
};

/// ---- CancellationToken ----

/// A hierarchical cooperative cancellation flag. Default-constructed tokens
/// are "null": never cancelled, not cancellable, zero-cost to check.
/// Cancellable tokens share state through copies; Child() tokens observe
/// their parent chain, so cancelling a parent cancels every descendant
/// while a child's Cancel() stays local to its subtree.
///
/// Thread-safe: Cancel() and cancelled() are relaxed atomics; a cancelled()
/// check walks the (short, immutable) parent chain.
class CancellationToken {
 public:
  /// Null token: never cancelled.
  CancellationToken() = default;

  /// A fresh cancellable root token.
  static CancellationToken Cancellable();

  /// A cancellable token that also observes this token's cancellation.
  /// A child of a null token is a fresh root.
  CancellationToken Child() const;

  /// Fires this token (and, transitively, its children). Requires a
  /// cancellable token. Idempotent.
  void Cancel() const;

  bool cancellable() const { return state_ != nullptr; }

  /// True once this token or any ancestor was cancelled.
  bool cancelled() const {
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cancelled.load(std::memory_order_relaxed)) return true;
    }
    return false;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::shared_ptr<const State> parent;
  };

  explicit CancellationToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// ---- TimeBudget ----

/// Deadline + cancellation token, passed by value through the pipeline.
/// Stages poll CheckCancelled() at loop boundaries; a non-OK status means
/// "stop cleanly now and return best-so-far".
class TimeBudget {
 public:
  /// Unlimited budget: CheckCancelled() always OK, zero-cost.
  TimeBudget() = default;

  explicit TimeBudget(Deadline deadline, CancellationToken token = {})
      : deadline_(deadline), token_(std::move(token)) {}

  /// Budget expiring `seconds` from now.
  static TimeBudget After(double seconds) {
    return TimeBudget(Deadline::After(seconds));
  }

  /// True when either a deadline or a cancellation token is attached.
  bool limited() const { return !deadline_.unlimited() || token_.cancellable(); }

  /// OK while the budget holds; Status::Cancelled() once the token fired
  /// (checked first), Status::DeadlineExceeded() once the deadline passed.
  /// Each deadline-exceeded observation bumps the process-wide
  /// "deadline.exceeded" counter.
  Status CheckCancelled() const;

  /// Boolean form of CheckCancelled() for hot loops that only need to know
  /// whether to stop (no counter bump, no Status allocation).
  bool Expired() const {
    return token_.cancelled() || deadline_.expired();
  }

  const Deadline& deadline() const { return deadline_; }
  const CancellationToken& token() const { return token_; }

  /// The StopReason matching a non-OK CheckCancelled() status.
  static StopReason ReasonFor(const Status& status);

 private:
  Deadline deadline_;
  CancellationToken token_;
};

/// ---- Ambient (process-wide) budget ----
///
/// Bench drivers install a whole-run budget (--time-budget=) once; library
/// entry points that were not handed an explicit budget fall back to it via
/// EffectiveBudget(). Install/read are mutex-guarded (entry-point rate, not
/// per-iteration).

/// Installs `budget` as the process-wide default (an unlimited budget
/// clears it).
void InstallAmbientBudget(const TimeBudget& budget);

/// The currently installed ambient budget (unlimited if none).
TimeBudget AmbientBudget();

/// `local` when it is limited, otherwise the ambient budget.
TimeBudget EffectiveBudget(const TimeBudget& local);

}  // namespace isum

#endif  // ISUM_COMMON_DEADLINE_H_
