#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace isum {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  ISUM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  ISUM_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian(double mean, double stddev) {
  // Box–Muller; drop the second variate to keep state handling simple.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  std::vector<size_t> out;
  if (k >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    Shuffle(out);
    return out;
  }
  out.reserve(k);
  // Floyd's algorithm: O(k) expected insertions.
  for (size_t j = n - k; j < n; ++j) {
    size_t t = NextUint64(j + 1);
    bool seen = false;
    for (size_t v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  Shuffle(out);
  return out;
}

Rng Rng::Fork(uint64_t stream_id) const {
  uint64_t mix = s_[0] ^ Rotl(s_[3], 13) ^ (stream_id * 0x9E3779B97F4A7C15ull);
  return Rng(mix);
}

ZipfSampler::ZipfSampler(uint64_t n, double skew) : n_(n), skew_(skew) {
  ISUM_CHECK(n >= 1);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -skew));
}

double ZipfSampler::H(double x) const {
  if (std::abs(skew_ - 1.0) < 1e-12) return std::log(x);
  return std::pow(x, 1.0 - skew_) / (1.0 - skew_);
}

double ZipfSampler::HInverse(double x) const {
  if (std::abs(skew_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow((1.0 - skew_) * x, 1.0 / (1.0 - skew_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  if (skew_ <= 1e-12) return 1 + rng.NextUint64(n_);
  for (;;) {
    double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(k, -skew_)) {
      return k;
    }
  }
}

}  // namespace isum
