#ifndef ISUM_COMMON_MUTEX_H_
#define ISUM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace isum {

/// Annotated synchronization shims over the standard library.
///
/// `std::mutex` carries no thread-safety attributes, so clang's
/// `-Wthread-safety` analysis cannot see which data it protects. Library
/// code therefore uses these wrappers instead (enforced by the isum_lint
/// rule `isum-guarded-by`):
///
///   class Registry {
///    private:
///     mutable Mutex mu_;
///     std::map<std::string, int> entries_ ISUM_GUARDED_BY(mu_);
///   };
///
///   void Registry::Add(...) {
///     MutexLock lock(mu_);
///     entries_[...] = ...;  // analyzer proves mu_ is held
///   }
///
/// The wrappers are zero-overhead: every method is an inline forward to the
/// underlying std primitive. See docs/ANALYSIS.md for the annotation policy
/// and thread_annotations.h for the attribute macros.

/// Annotated std::mutex. Also satisfies the standard Lockable requirements
/// (lowercase lock()/unlock()/try_lock()) so it composes with
/// std::condition_variable_any and std::unique_lock where needed.
class ISUM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ISUM_ACQUIRE() { mu_.lock(); }
  void Unlock() ISUM_RELEASE() { mu_.unlock(); }
  bool TryLock() ISUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Standard Lockable spellings (CondVar waits through these; the analysis
  /// attributes are identical to the capitalized forms).
  void lock() ISUM_ACQUIRE() { mu_.lock(); }
  void unlock() ISUM_RELEASE() { mu_.unlock(); }
  bool try_lock() ISUM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over an isum::Mutex — the annotated replacement for
/// `std::lock_guard<std::mutex>`. The analyzer treats the guarded mutex as
/// held for exactly this object's lifetime.
class ISUM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ISUM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() ISUM_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with isum::Mutex. Wait() requires the mutex to
/// be held and holds it again on return, which is exactly what the analysis
/// can express — so waits stay fully annotated, unlike the
/// std::condition_variable + std::unique_lock pairing. Use the untimed
/// Wait() in a caller-side predicate loop so the guarded reads stay inside
/// the annotated scope:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);  // ready_ ISUM_GUARDED_BY(mu_)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mu) ISUM_REQUIRES(mu) { cv_.wait(mu); }

  /// Timed Wait(): blocks for at most `nanos`. Returns true when notified,
  /// false on timeout; either way `mu` is held again on return. Like
  /// Wait(), use in a predicate loop — periodic workers (MetricsExporter)
  /// wait on a stop flag with the period as the timeout.
  bool WaitForNanos(Mutex& mu, uint64_t nanos) ISUM_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::nanoseconds(nanos)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace isum

#endif  // ISUM_COMMON_MUTEX_H_
