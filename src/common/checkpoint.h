#ifndef ISUM_COMMON_CHECKPOINT_H_
#define ISUM_COMMON_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace isum {

/// Crash-safe checkpoint snapshots for long-running compression/tuning.
///
/// A checkpoint file is the versioned `isum-ckpt-v1` container:
///
///   magic "isum-ckpt-v1" (12 bytes)
///   u32   format version (currently 1)
///   u32   section count
///   per section:
///     u32  section id (caller-defined)
///     u64  payload length
///     payload bytes
///     u32  CRC-32 of the payload
///   u32   file CRC-32 over everything after the magic (excluding itself)
///
/// All integers are little-endian; doubles travel as their raw IEEE-754
/// bits so a restored value is bit-identical to the one written. The
/// per-section CRCs catch payload corruption; the trailing file CRC (plus
/// the length prefixes) catches truncation and torn tails, so a reader
/// either gets the exact bytes a writer produced or a clean kParseError.
/// Writes go through WriteFileAtomic (tmp + fsync + rename), so a crash
/// mid-write never damages the previous checkpoint.
///
/// CheckpointStore layers epoch rotation on top: files are named
/// `<base>.<fingerprint-16hex>.e<N>.ckpt`, the two most recent epochs are
/// kept, and LoadLatest falls back to the previous epoch when the newest
/// fails to parse. The fingerprint in the name gives each logical work
/// unit its own lineage so concurrent or sequential runs over different
/// inputs never resume from each other's state. Semantics and the recovery
/// workflow are documented in docs/ROBUSTNESS.md.

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `len` bytes,
/// continuing from `seed` (pass a previous return value to extend).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Builds an isum-ckpt-v1 image section by section. Appenders must be
/// called between BeginSection/EndSection; sections are written in call
/// order.
class CheckpointWriter {
 public:
  void BeginSection(uint32_t id);
  void EndSection();

  void AppendU64(uint64_t value);
  /// Raw IEEE-754 bits: restores bit-identically, including -0.0 and NaNs.
  void AppendF64(double value);
  void AppendBytes(const void* data, size_t len);
  /// u64 length prefix + bytes.
  void AppendString(std::string_view s);
  /// u64 count prefix + elements.
  void AppendU64Vector(const std::vector<uint64_t>& values);
  void AppendF64Vector(const std::vector<double>& values);

  /// The complete container image (magic, sections, CRCs).
  std::string Serialize() const;

  /// Serializes and writes crash-atomically via WriteFileAtomic.
  [[nodiscard]] Status WriteAtomic(const std::string& path) const;

 private:
  struct Section {
    uint32_t id = 0;
    std::string payload;
  };
  std::vector<Section> sections_;
  bool in_section_ = false;
};

/// Bounds-checked forward reader over one section's payload. Views the
/// parent CheckpointReader's buffer: valid only while that reader is alive
/// and unmoved.
class CheckpointCursor {
 public:
  explicit CheckpointCursor(std::string_view payload) : payload_(payload) {}

  StatusOr<uint64_t> ReadU64();
  StatusOr<double> ReadF64();
  StatusOr<std::string> ReadString();
  StatusOr<std::vector<uint64_t>> ReadU64Vector();
  StatusOr<std::vector<double>> ReadF64Vector();

  bool AtEnd() const { return pos_ == payload_.size(); }
  size_t remaining() const { return payload_.size() - pos_; }

 private:
  [[nodiscard]] Status Need(size_t bytes) const;

  std::string_view payload_;
  size_t pos_ = 0;
};

/// Parses and validates an isum-ckpt-v1 image. Any structural defect —
/// bad magic, unknown version, overrunning length prefix, CRC mismatch,
/// trailing garbage — is a kParseError; a successfully parsed reader holds
/// exactly the bytes some writer serialized.
class CheckpointReader {
 public:
  static StatusOr<CheckpointReader> Parse(std::string bytes);

  bool HasSection(uint32_t id) const;
  /// Cursor over the first section with `id` (kNotFound when absent).
  StatusOr<CheckpointCursor> Section(uint32_t id) const;
  std::vector<uint32_t> SectionIds() const;
  /// Payload length of the first section with `id` (0 when absent).
  size_t SectionSize(uint32_t id) const;
  size_t total_bytes() const { return bytes_.size(); }

 private:
  struct SectionSpan {
    uint32_t id = 0;
    size_t offset = 0;
    size_t length = 0;
  };
  std::string bytes_;
  std::vector<SectionSpan> sections_;
};

/// Reads a whole file (kNotFound when it does not exist).
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Crash-atomic write: `<path>.tmp` + fsync + rename over `path`, then
/// fsyncs the parent directory so the rename itself is durable.
[[nodiscard]] Status WriteFileAtomic(const std::string& path,
                                     std::string_view bytes);

/// Epoch-rotated checkpoint lineage (file naming documented above).
class CheckpointStore {
 public:
  /// `base_path` is the operator-facing location (e.g. --checkpoint=);
  /// `fingerprint` isolates this work unit's lineage under it.
  CheckpointStore(std::string base_path, uint64_t fingerprint);

  /// Serializes `writer` into the next epoch file atomically, then prunes
  /// every epoch older than the previous one (two most recent kept).
  [[nodiscard]] Status WriteEpoch(const CheckpointWriter& writer);

  /// Newest epoch that parses cleanly, skipping over torn/corrupt newer
  /// epochs (the "fall back to the previous epoch" contract). kNotFound
  /// when no valid epoch exists.
  StatusOr<CheckpointReader> LoadLatest();

  /// Epoch number the next WriteEpoch will use.
  uint64_t next_epoch() const { return next_epoch_; }
  /// Epoch LoadLatest returned (meaningful after a successful load).
  uint64_t loaded_epoch() const { return loaded_epoch_; }
  /// Serialized size of the last successful WriteEpoch.
  uint64_t last_write_bytes() const { return last_write_bytes_; }
  uint64_t fingerprint() const { return fingerprint_; }

  std::string EpochPath(uint64_t epoch) const;

 private:
  void ScanExistingEpochs();

  std::string base_;
  uint64_t fingerprint_ = 0;
  uint64_t next_epoch_ = 0;
  uint64_t loaded_epoch_ = 0;
  uint64_t last_write_bytes_ = 0;
};

/// ---- Ambient (process-wide) checkpoint configuration ----
///
/// Mirrors the ambient TimeBudget (common/deadline.h): bench drivers
/// install --checkpoint=/--checkpoint-every= once; library entry points
/// that were not handed an explicit config fall back to it.

struct CheckpointConfig {
  /// Base path for checkpoint files; empty disables checkpointing.
  std::string path;
  /// Write an epoch every N completed rounds (>= 1).
  uint64_t every_rounds = 16;

  bool enabled() const { return !path.empty(); }
};

/// Installs `config` process-wide (a disabled config clears it).
void InstallAmbientCheckpoint(const CheckpointConfig& config);

/// The currently installed ambient config (disabled if none).
CheckpointConfig AmbientCheckpoint();

/// `local` when enabled, otherwise the ambient config.
CheckpointConfig EffectiveCheckpoint(const CheckpointConfig& local);

}  // namespace isum

#endif  // ISUM_COMMON_CHECKPOINT_H_
