#ifndef ISUM_COMMON_THREAD_POOL_H_
#define ISUM_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isum {

/// A small fixed-size worker pool. Used for embarrassingly parallel
/// what-if evaluation during configuration enumeration; results must be
/// reduced deterministically by the caller (e.g. by index) so thread count
/// never changes outcomes.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), distributing across workers; blocks until
  /// every call returned. fn must not throw.
  ///
  /// `cancel` (optional) makes the batch early-exiting: once the token
  /// fires, indexes not yet started are skipped (the batch drains promptly
  /// instead of running every remaining fn). In-flight calls finish —
  /// cancellation is cooperative, so fn should also poll the token if a
  /// single call can run long. ParallelFor still returns only after every
  /// claimed index completed or was skipped.
  ///
  /// Must not be called while holding mutex_ (it blocks on the workers,
  /// which need the lock to claim indexes).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancellationToken& cancel = {})
      ISUM_EXCLUDES(mutex_);

 private:
  void WorkerLoop() ISUM_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar work_available_;
  CondVar work_done_;
  // Current batch state (one ParallelFor at a time), guarded by mutex_.
  const std::function<void(size_t)>* batch_fn_ ISUM_GUARDED_BY(mutex_) =
      nullptr;
  const CancellationToken* batch_cancel_ ISUM_GUARDED_BY(mutex_) = nullptr;
  size_t batch_size_ ISUM_GUARDED_BY(mutex_) = 0;
  size_t next_index_ ISUM_GUARDED_BY(mutex_) = 0;
  size_t completed_ ISUM_GUARDED_BY(mutex_) = 0;
  bool shutdown_ ISUM_GUARDED_BY(mutex_) = false;
};

}  // namespace isum

#endif  // ISUM_COMMON_THREAD_POOL_H_
