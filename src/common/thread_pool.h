#ifndef ISUM_COMMON_THREAD_POOL_H_
#define ISUM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/deadline.h"

namespace isum {

/// A small fixed-size worker pool. Used for embarrassingly parallel
/// what-if evaluation during configuration enumeration; results must be
/// reduced deterministically by the caller (e.g. by index) so thread count
/// never changes outcomes.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), distributing across workers; blocks until
  /// every call returned. fn must not throw.
  ///
  /// `cancel` (optional) makes the batch early-exiting: once the token
  /// fires, indexes not yet started are skipped (the batch drains promptly
  /// instead of running every remaining fn). In-flight calls finish —
  /// cancellation is cooperative, so fn should also poll the token if a
  /// single call can run long. ParallelFor still returns only after every
  /// claimed index completed or was skipped.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const CancellationToken& cancel = {});

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  // Current batch state (one ParallelFor at a time).
  const std::function<void(size_t)>* batch_fn_ = nullptr;
  const CancellationToken* batch_cancel_ = nullptr;
  size_t batch_size_ = 0;
  size_t next_index_ = 0;
  size_t completed_ = 0;
  bool shutdown_ = false;
};

}  // namespace isum

#endif  // ISUM_COMMON_THREAD_POOL_H_
