#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace isum {

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(x.size());
}

double StdDev(const std::vector<double>& x) {
  if (x.size() < 2) return 0.0;
  double m = Mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(x.size()));
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> FractionalRanks(const std::vector<double>& x) {
  const size_t n = x.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&x](size_t a, size_t b) { return x[a] < x[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    // Average rank for the tie group [i, j], 1-based.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  return PearsonCorrelation(FractionalRanks(x), FractionalRanks(y));
}

double Percentile(std::vector<double> x, double p) {
  if (x.empty()) return 0.0;
  std::sort(x.begin(), x.end());
  const double pos = Clamp(p, 0.0, 100.0) / 100.0 *
                     static_cast<double>(x.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, x.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return x[lo] * (1.0 - frac) + x[hi] * frac;
}

void MinMaxNormalize(std::vector<double>& values) {
  if (values.empty()) return;
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double range = *mx_it - *mn_it;
  if (range <= 0.0) {
    std::fill(values.begin(), values.end(), 1.0);
    return;
  }
  for (double& v : values) v = v / range;
}

double Clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

}  // namespace isum
