#ifndef ISUM_COMMON_STRING_UTIL_H_
#define ISUM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace isum {

/// Splits `text` on `sep`, keeping empty tokens.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// ASCII lower-case copy.
std::string ToLower(std::string_view text);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view text);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace isum

#endif  // ISUM_COMMON_STRING_UTIL_H_
