#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace isum::internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& detail) {
  // The contract reporter is the one sanctioned direct stderr writer in the
  // library: it runs at most once per process, immediately before abort().
  if (detail.empty()) {
    std::fprintf(  // NOLINT(isum-no-stdio)
        stderr, "%s:%d: check failed: %s\n", file, line, expr);
  } else {
    std::fprintf(  // NOLINT(isum-no-stdio)
        stderr, "%s:%d: check failed: %s (%s)\n", file, line, expr,
        detail.c_str());
  }
  std::fflush(stderr);
  std::abort();  // NOLINT(isum-no-assert)
}

}  // namespace isum::internal
