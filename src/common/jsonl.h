#ifndef ISUM_COMMON_JSONL_H_
#define ISUM_COMMON_JSONL_H_

#include <string>

#include "common/status.h"

namespace isum {

/// Minimal JSON-lines helpers shared by the Query-Store and statistics
/// loaders: one flat JSON object per line, string and number values only.
/// Not a general JSON parser — exactly what those formats need.

/// Escapes a raw string for embedding in a JSON string literal.
std::string JsonEscape(const std::string& raw);

/// Reverses JsonEscape (ASCII \u escapes only).
StatusOr<std::string> JsonUnescape(const std::string& escaped);

/// Extracts the string value of key `name` from a single-line JSON object.
StatusOr<std::string> JsonExtractString(const std::string& line,
                                        const std::string& name);

/// Extracts the numeric value of key `name`.
StatusOr<double> JsonExtractNumber(const std::string& line,
                                   const std::string& name);

/// True if the object has key `name`.
bool JsonHasKey(const std::string& line, const std::string& name);

}  // namespace isum

#endif  // ISUM_COMMON_JSONL_H_
