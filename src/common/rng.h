#ifndef ISUM_COMMON_RNG_H_
#define ISUM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace isum {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// splitmix64. All randomized components of the library (workload generators,
/// sampling baselines, parameter bindings) draw from this type so experiments
/// are reproducible bit-for-bit given a seed.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield equal streams.
  explicit Rng(uint64_t seed = 0xD1CE5EEDull);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Returns a normally distributed value (Box–Muller).
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// Samples k distinct indices uniformly from [0, n) (Floyd's algorithm).
  /// If k >= n returns all indices 0..n-1 in shuffled order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent generator whose stream is a deterministic function
  /// of this generator's state and `stream_id`. Useful for giving each
  /// query template its own stable parameter stream.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
};

/// Samples ranks from a Zipf(s) distribution over {1, ..., n} using the
/// rejection-inversion method of Hörmann & Derflinger. skew = 0 degenerates
/// to uniform; typical data skew in the DSB/Real-M generators uses 1.0–2.0.
class ZipfSampler {
 public:
  /// Prepares a sampler over n items with exponent `skew` >= 0.
  ZipfSampler(uint64_t n, double skew);

  /// Draws one rank in [1, n].
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double skew_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace isum

#endif  // ISUM_COMMON_RNG_H_
