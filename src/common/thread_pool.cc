#include "common/thread_pool.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum {

namespace {

struct PoolMetrics {
  obs::Counter* batches;
  obs::Counter* tasks;
  obs::Gauge* workers;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PoolMetrics{registry.GetCounter("threadpool.batches"),
                         registry.GetCounter("threadpool.tasks"),
                         registry.GetGauge("threadpool.workers")};
    }();
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  PoolMetrics::Get().workers->Set(static_cast<double>(n));
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      // Tag the worker so spans it records (e.g. whatif/optimize during
      // parallel enumeration) land on a named thread track in trace
      // exports.
      obs::Tracer::Global().SetCurrentThreadName("pool-worker-" +
                                                 std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    size_t index = 0;
    const std::function<void(size_t)>* fn = nullptr;
    const CancellationToken* cancel = nullptr;
    {
      // Predicate loop stays inline (not a wait-with-lambda) so the guarded
      // reads sit in this annotated scope, where the analysis can prove
      // mutex_ is held.
      MutexLock lock(mutex_);
      while (!shutdown_ &&
             (batch_fn_ == nullptr || next_index_ >= batch_size_)) {
        work_available_.Wait(mutex_);
      }
      if (shutdown_) return;
      index = next_index_++;
      fn = batch_fn_;
      cancel = batch_cancel_;
    }
    // Early exit: a cancelled batch skips indexes that have not started,
    // so the caller's ParallelFor unblocks promptly.
    if (cancel == nullptr || !cancel->cancelled()) (*fn)(index);
    {
      MutexLock lock(mutex_);
      if (++completed_ == batch_size_) work_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                             const CancellationToken& cancel) {
  if (n == 0) return;
  ISUM_TRACE_SPAN("threadpool/parallel_for");
  PoolMetrics::Get().batches->Add(1);
  PoolMetrics::Get().tasks->Add(n);
  {
    MutexLock lock(mutex_);
    batch_fn_ = &fn;
    batch_cancel_ = cancel.cancellable() ? &cancel : nullptr;
    batch_size_ = n;
    next_index_ = 0;
    completed_ = 0;
  }
  work_available_.NotifyAll();
  {
    MutexLock lock(mutex_);
    while (completed_ != batch_size_) work_done_.Wait(mutex_);
    batch_fn_ = nullptr;
    batch_cancel_ = nullptr;
  }
}

}  // namespace isum
