#ifndef ISUM_COMMON_SIGNAL_SAFE_H_
#define ISUM_COMMON_SIGNAL_SAFE_H_

/// Marker for functions that run in (or are reachable from) a signal
/// handler and therefore must be async-signal-safe.
///
/// The annotation expands to nothing — it exists for readers and for the
/// `isum-no-alloc-in-signal` lint rule (tools/lint), which flags
/// allocation, locking, and stdio inside the body of any function marked
/// with it. The contract an annotated function must keep:
///
///  - no allocation: no `new`/`delete`, `malloc`/`free`, and nothing that
///    allocates under the hood (std::string, std::vector growth, ...);
///  - no locking: a mutex held by the interrupted thread self-deadlocks;
///  - no stdio: printf-family functions lock the stream and may allocate;
///  - only lock-free `std::atomic` operations and the POSIX
///    async-signal-safe function list (signal-safety(7));
///  - `errno` must be saved and restored if anything in between can
///    clobber it.
///
/// Place it before the return type, like a specifier:
///
///   ISUM_SIGNAL_SAFE void SigprofHandler(int sig, siginfo_t*, void*);
///
/// Used by the sampling profiler (src/obs/profiler.cc) and the allocation
/// hooks (src/obs/alloc_hooks.cc); the constraints are documented in
/// docs/OBSERVABILITY.md.
#define ISUM_SIGNAL_SAFE

#endif  // ISUM_COMMON_SIGNAL_SAFE_H_
