#ifndef ISUM_COMMON_MATH_UTIL_H_
#define ISUM_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <vector>

namespace isum {

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 if either series is constant or sizes mismatch/empty.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Spearman rank correlation (Pearson over fractional ranks, average ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& x);

/// Population standard deviation; 0 for inputs of size < 2.
double StdDev(const std::vector<double>& x);

/// Linear-interpolated percentile, p in [0, 100]. Input need not be sorted.
/// Returns 0 for empty input.
double Percentile(std::vector<double> x, double p);

/// Min-max normalizes values in place to [0, 1] as in §4.2 of the paper:
/// v' = v / (max - min). If all values are equal, they are set to 1.
void MinMaxNormalize(std::vector<double>& values);

/// Fractional ranks (1-based, ties averaged) of the values.
std::vector<double> FractionalRanks(const std::vector<double>& x);

/// Clamps v to [lo, hi].
double Clamp(double v, double lo, double hi);

}  // namespace isum

#endif  // ISUM_COMMON_MATH_UTIL_H_
