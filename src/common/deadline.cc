#include "common/deadline.h"

#include <chrono>
#include <thread>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace isum {

namespace {

std::atomic<MonotonicClockFn> g_clock_override{nullptr};
std::atomic<SleepFn> g_sleep_override{nullptr};

Mutex g_ambient_mu;
TimeBudget g_ambient_budget ISUM_GUARDED_BY(g_ambient_mu);

obs::Counter* DeadlineExceededCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("deadline.exceeded");
  return counter;
}

}  // namespace

uint64_t MonotonicNanos() {
  const MonotonicClockFn fn = g_clock_override.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetMonotonicClockForTest(MonotonicClockFn fn) {
  g_clock_override.store(fn, std::memory_order_relaxed);
}

void SleepForNanos(uint64_t nanos) {
  const SleepFn fn = g_sleep_override.load(std::memory_order_relaxed);
  if (fn != nullptr) {
    fn(nanos);
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

void SetSleepForTest(SleepFn fn) {
  g_sleep_override.store(fn, std::memory_order_relaxed);
}

namespace {
std::atomic<uint64_t> g_abnormal_stops{0};

obs::Counter* AbnormalStopCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("stop.abnormal");
  return counter;
}
}  // namespace

void NoteStopReason(StopReason reason) {
  if (reason == StopReason::kComplete) return;
  g_abnormal_stops.fetch_add(1, std::memory_order_relaxed);
  AbnormalStopCounter()->Add(1);
}

uint64_t AbnormalStopCount() {
  return g_abnormal_stops.load(std::memory_order_relaxed);
}

void ResetAbnormalStopCount() {
  g_abnormal_stops.store(0, std::memory_order_relaxed);
}

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kComplete:
      return "complete";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kFault:
      return "fault";
  }
  return "unknown";
}

Deadline Deadline::After(double seconds) {
  Deadline d;
  if (seconds <= 0.0) {
    d.nanos_ = MonotonicNanos();
    return d;
  }
  const double nanos = seconds * 1e9;
  // Saturate absurd budgets instead of overflowing into the past.
  if (nanos >= static_cast<double>(kNoDeadline) ||
      static_cast<uint64_t>(nanos) >= kNoDeadline - MonotonicNanos()) {
    return d;  // effectively unlimited
  }
  d.nanos_ = MonotonicNanos() + static_cast<uint64_t>(nanos);
  return d;
}

uint64_t Deadline::remaining_nanos() const {
  if (unlimited()) return kNoDeadline;
  const uint64_t now = MonotonicNanos();
  return now >= nanos_ ? 0 : nanos_ - now;
}

CancellationToken CancellationToken::Cancellable() {
  return CancellationToken(std::make_shared<State>());
}

CancellationToken CancellationToken::Child() const {
  auto state = std::make_shared<State>();
  state->parent = state_;
  return CancellationToken(std::move(state));
}

void CancellationToken::Cancel() const {
  ISUM_CHECK_MSG(state_ != nullptr,
                 "Cancel() on a null (non-cancellable) token");
  state_->cancelled.store(true, std::memory_order_relaxed);
}

Status TimeBudget::CheckCancelled() const {
  if (token_.cancelled()) {
    obs::Journal::Global().BudgetStop(
        StopReasonToString(StopReason::kCancelled));
    return Status::Cancelled("cancellation token fired");
  }
  if (deadline_.expired()) {
    DeadlineExceededCounter()->Add(1);
    obs::Journal::Global().BudgetStop(
        StopReasonToString(StopReason::kDeadline));
    return Status::DeadlineExceeded("time budget expired");
  }
  // Consumption timeline: BudgetTick rate-limits itself (one event per
  // ~250ms), so every cooperative poll can report without flooding.
  if (!deadline_.unlimited() && obs::Journal::Global().enabled()) {
    obs::Journal::Global().BudgetTick(
        static_cast<double>(deadline_.remaining_nanos()) * 1e-9);
  }
  return Status::OK();
}

StopReason TimeBudget::ReasonFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return StopReason::kComplete;
    case StatusCode::kCancelled:
      return StopReason::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return StopReason::kDeadline;
    default:
      return StopReason::kFault;
  }
}

void InstallAmbientBudget(const TimeBudget& budget) {
  MutexLock lock(g_ambient_mu);
  g_ambient_budget = budget;
}

TimeBudget AmbientBudget() {
  MutexLock lock(g_ambient_mu);
  return g_ambient_budget;
}

TimeBudget EffectiveBudget(const TimeBudget& local) {
  if (local.limited()) return local;
  return AmbientBudget();
}

}  // namespace isum
