#ifndef ISUM_COMMON_THREAD_ANNOTATIONS_H_
#define ISUM_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes, wrapped so annotated code still
/// compiles under GCC (where the attributes expand to nothing). Building
/// with clang and -DISUM_THREAD_SAFETY=ON turns `-Wthread-safety` into a
/// hard error, making lock discipline a compile-time property instead of a
/// TSan-schedule lottery: every mutex-protected member is declared
/// ISUM_GUARDED_BY its mutex, and the analyzer rejects any access path that
/// cannot prove the lock is held.
///
/// The annotated `isum::Mutex` / `isum::MutexLock` / `isum::CondVar` shims
/// these attributes attach to live in common/mutex.h; the isum_lint rule
/// `isum-guarded-by` rejects raw `std::mutex` members in src/ so new shared
/// state cannot dodge the analysis. Annotation policy and examples are in
/// docs/ANALYSIS.md.

#if defined(__clang__)
#define ISUM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ISUM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a class as a lockable capability ("mutex") so the analyzer can
/// reason about acquiring/releasing instances of it.
#define ISUM_CAPABILITY(x) ISUM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. isum::MutexLock).
#define ISUM_SCOPED_CAPABILITY \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// A data member that may only be accessed while holding `x`.
#define ISUM_GUARDED_BY(x) ISUM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// A pointer member whose *pointee* may only be accessed while holding `x`.
#define ISUM_PT_GUARDED_BY(x) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while already holding the listed
/// capabilities (they are not acquired or released by the call).
#define ISUM_REQUIRES(...) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (deadlock / lock-ordering guard, e.g. a re-entrant registration path).
#define ISUM_EXCLUDES(...) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define ISUM_ACQUIRE(...) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define ISUM_RELEASE(...) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns `result`
/// (true/false) on success.
#define ISUM_TRY_ACQUIRE(...) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the capability guarding its result
/// (lets callers lock through an accessor).
#define ISUM_RETURN_CAPABILITY(x) \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Opts one function out of the analysis. Reserve for code the analyzer
/// cannot model (condition-variable internals, intentional test abuse) and
/// justify with a comment.
#define ISUM_NO_THREAD_SAFETY_ANALYSIS \
  ISUM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // ISUM_COMMON_THREAD_ANNOTATIONS_H_
