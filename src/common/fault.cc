#include "common/fault.h"

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/hash.h"
#include "common/jsonl.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace isum {

namespace {

constexpr uint64_t kDefaultSeed = 0x5EED;

/// splitmix64 finalizer: turns the (seed, site, invocation) combination into
/// well-mixed bits so low-entropy inputs still give uniform decisions.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from 64 mixed bits.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

obs::Counter* InjectedCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("fault.injected");
  return counter;
}

/// Per-site injected-latency histogram, e.g. "fault.latency.whatif_cost"
/// (dots in the site name become underscores so the metric name stays one
/// dotted namespace deep). Registry lookup per injection is fine here: the
/// latency path sleeps anyway.
obs::Histogram* LatencyHistogram(const char* site) {
  std::string name = "fault.latency.";
  for (const char* p = site; *p != '\0'; ++p) {
    name += (*p == '.' || *p == '*') ? '_' : *p;
  }
  return obs::MetricsRegistry::Global().GetHistogram(name);
}

/// Splits the spec into its `;`-separated JSON entries, dropping blanks.
std::vector<std::string> SplitEntries(const std::string& spec) {
  std::vector<std::string> entries;
  std::string current;
  for (char c : spec + ";") {
    if (c == ';') {
      const std::string t(Trim(current));
      if (!t.empty()) entries.push_back(t);
      current.clear();
    } else {
      current += c;
    }
  }
  return entries;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

Status FaultInjector::Configure(const std::string& spec) {
  auto config = std::make_shared<Config>();
  config->seed = kDefaultSeed;
  for (const std::string& entry : SplitEntries(spec)) {
    if (JsonHasKey(entry, "seed")) {
      ISUM_ASSIGN_OR_RETURN(const double seed,
                            JsonExtractNumber(entry, "seed"));
      if (seed < 0.0) {
        return Status::InvalidArgument("fault spec: seed must be >= 0 in " +
                                       entry);
      }
      config->seed = static_cast<uint64_t>(seed);
      continue;
    }
    auto fault = std::make_unique<Fault>();
    ISUM_ASSIGN_OR_RETURN(fault->site, JsonExtractString(entry, "site"));
    ISUM_ASSIGN_OR_RETURN(const std::string kind,
                          JsonExtractString(entry, "kind"));
    if (kind == "error") {
      fault->kind = Kind::kError;
    } else if (kind == "latency") {
      fault->kind = Kind::kLatency;
    } else {
      return Status::InvalidArgument("fault spec: unknown kind \"" + kind +
                                     "\" in " + entry);
    }
    ISUM_ASSIGN_OR_RETURN(fault->probability, JsonExtractNumber(entry, "p"));
    if (fault->probability < 0.0 || fault->probability > 1.0) {
      return Status::InvalidArgument("fault spec: p must be in [0, 1] in " +
                                     entry);
    }
    if (fault->kind == Kind::kLatency) {
      ISUM_ASSIGN_OR_RETURN(const double ms, JsonExtractNumber(entry, "ms"));
      if (ms < 0.0) {
        return Status::InvalidArgument("fault spec: ms must be >= 0 in " +
                                       entry);
      }
      fault->latency_nanos = static_cast<uint64_t>(ms * 1e6);
    }
    if (JsonHasKey(entry, "after")) {
      ISUM_ASSIGN_OR_RETURN(const double after,
                            JsonExtractNumber(entry, "after"));
      if (after < 0.0) {
        return Status::InvalidArgument("fault spec: after must be >= 0 in " +
                                       entry);
      }
      fault->after = static_cast<uint64_t>(after);
    }
    fault->site_hash = HashBytes(fault->site);
    config->faults.push_back(std::move(fault));
  }

  const bool armed = !config->faults.empty();
  injected_.store(0, std::memory_order_relaxed);
  config_.store(armed ? std::shared_ptr<const Config>(std::move(config))
                      : nullptr,
                std::memory_order_release);
  armed_.store(armed, std::memory_order_relaxed);
  return Status::OK();
}

Status FaultInjector::ConfigureFromEnvironment() {
  if (Armed()) return Status::OK();  // explicit configuration wins
  const char* spec = std::getenv("ISUM_FAULTS");
  if (spec == nullptr || *spec == '\0') return Status::OK();
  return Configure(spec);
}

void FaultInjector::Reset() {
  armed_.store(false, std::memory_order_relaxed);
  config_.store(nullptr, std::memory_order_release);
  injected_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::Inject(const char* site) {
  const std::shared_ptr<const Config> config =
      config_.load(std::memory_order_acquire);
  if (config == nullptr) return Status::OK();
  const std::string_view site_view(site);
  for (const auto& fault : config->faults) {
    if (fault->site != "*" && fault->site != site_view) continue;
    const uint64_t n =
        fault->invocations.fetch_add(1, std::memory_order_relaxed);
    if (n < fault->after) continue;  // dormant warm-up window
    const uint64_t bits =
        Mix(HashCombine(HashCombine(config->seed, fault->site_hash), n));
    if (ToUnit(bits) >= fault->probability) continue;
    injected_.fetch_add(1, std::memory_order_relaxed);
    InjectedCounter()->Add(1);
    if (fault->kind == Kind::kLatency) {
      LatencyHistogram(site)->Observe(fault->latency_nanos);
      SleepForNanos(fault->latency_nanos);
      continue;  // delayed, not failed; later rules may still fire
    }
    return Status::Unavailable(std::string("injected fault at ") + site);
  }
  return Status::OK();
}

uint64_t FaultInjector::seed() const {
  const std::shared_ptr<const Config> config =
      config_.load(std::memory_order_acquire);
  return config == nullptr ? 0 : config->seed;
}

std::vector<std::string> FaultInjector::ConfiguredSites() const {
  const std::shared_ptr<const Config> config =
      config_.load(std::memory_order_acquire);
  std::vector<std::string> sites;
  if (config == nullptr) return sites;
  for (const auto& fault : config->faults) sites.push_back(fault->site);
  return sites;
}

}  // namespace isum
