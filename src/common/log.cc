#include "common/log.h"

#include <cstdio>
#include <utility>

namespace isum {

namespace {
LogSink& GlobalSink() {
  static LogSink sink;  // empty => default stderr writer
  return sink;
}
}  // namespace

LogSink SetLogSink(LogSink sink) {
  LogSink previous = std::move(GlobalSink());
  GlobalSink() = std::move(sink);
  return previous;
}

void LogWarning(const std::string& message) {
  const LogSink& sink = GlobalSink();
  if (sink) {
    sink(message);
    return;
  }
  // Default sink: the one sanctioned stderr writer for warnings.
  std::fprintf(stderr, "%s\n", message.c_str());  // NOLINT(isum-no-stdio)
}

}  // namespace isum
