#ifndef ISUM_COMMON_HASH_H_
#define ISUM_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string_view>

namespace isum {

/// Mixes `value`'s hash into `seed` (boost-style combiner over 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4));
}

/// FNV-1a over a byte string; stable across platforms and runs so template
/// signatures can be persisted and compared.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace isum

#endif  // ISUM_COMMON_HASH_H_
