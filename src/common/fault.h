#ifndef ISUM_COMMON_FAULT_H_
#define ISUM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace isum {

/// Deterministic process-wide fault injection for robustness testing.
///
/// Library code declares named fault sites — `ISUM_FAULT_POINT("whatif.cost")`
/// returns a Status — and the injector decides, per configured site, whether
/// to fail the call (Status::Unavailable) or delay it (SleepForNanos). The
/// decision is a pure function of (seed, site, per-site invocation index),
/// so a fixed seed replays the identical fault sequence; see
/// docs/ROBUSTNESS.md for the site inventory and determinism rules.
///
/// Configuration comes from the ISUM_FAULTS environment variable or a
/// --faults= flag (bench_util.h). The spec is `;`-separated flat JSON
/// objects, parsed with common/jsonl.h:
///
///   {"seed":42};{"site":"whatif.cost","kind":"error","p":0.25};
///   {"site":"*","kind":"latency","p":1.0,"ms":0.5};
///   {"site":"compress.select","kind":"error","p":1.0,"after":7}
///
///   seed   decision seed (one per spec; default 0x5EED)
///   site   fault site name, or "*" to match every site
///   kind   "error" (return Status::Unavailable) or "latency" (sleep, then
///          proceed)
///   p      injection probability in [0, 1]
///   ms     latency kinds only: injected delay in milliseconds (fractional
///          allowed)
///   after  optional: rule stays dormant for the first N matching
///          invocations (default 0). With p=1.0 this fires deterministically
///          at exactly invocation N — the chaos harness's "kill at round N"
///          primitive (docs/ROBUSTNESS.md).
///
/// Every injected latency is recorded in a per-site histogram named
/// `fault.latency.<site>` with dots replaced by underscores (e.g.
/// `fault.latency.whatif_cost`), surfaced by `tracecat` robustness output.
///
/// Cost model: when no faults are configured the per-site check is a single
/// relaxed atomic load (FaultInjector::Armed()). When armed, each matching
/// decision bumps a per-fault atomic counter; injections are mirrored into
/// the metrics registry as "fault.injected".
///
/// Thread-safety: Inject() may run concurrently from any thread. Configure()
/// swaps the configuration atomically (shared_ptr), so it is safe — though
/// pointless — to reconfigure while sites are firing. The injector is
/// deliberately lock-free (every member below is an atomic or reached
/// through the atomic `config_` snapshot), so there is no mutex for
/// ISUM_GUARDED_BY to name: the armed_ gate and per-rule invocation
/// counters are relaxed atomics, and a loaded Config is immutable except
/// for those counters. Keep it that way — ISUM_FAULT_POINT sits on the
/// what-if hot path, inside code the `isum-lock-scope` lint rule forbids
/// from running under a lock.
class FaultInjector {
 public:
  enum class Kind { kError, kLatency };

  /// One configured fault rule.
  struct Fault {
    std::string site;  ///< site name, or "*" for every site
    Kind kind = Kind::kError;
    double probability = 0.0;
    uint64_t latency_nanos = 0;
    uint64_t after = 0;      ///< dormant for the first `after` invocations
    uint64_t site_hash = 0;  ///< cached HashBytes(site)
    /// Per-rule invocation index; the decision stream position. Mutable so
    /// a shared const Config can advance it.
    mutable std::atomic<uint64_t> invocations{0};
  };

  /// The process-wide injector every ISUM_FAULT_POINT site consults.
  static FaultInjector& Global();

  /// Parses `spec` (grammar above) and installs it, replacing any previous
  /// configuration. An empty/blank spec disarms the injector. On a parse
  /// error nothing is installed.
  Status Configure(const std::string& spec);

  /// Configures from the ISUM_FAULTS environment variable (no-op when
  /// unset; an already-armed injector is left alone so --faults= wins).
  Status ConfigureFromEnvironment();

  /// Disarms and forgets every configured fault.
  void Reset();

  /// True when any fault is configured — the zero-cost gate every site
  /// reads before consulting the injector.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Full per-site decision: returns Status::Unavailable for an injected
  /// error, sleeps for latency faults, OK otherwise. Call through
  /// ISUM_FAULT_POINT / CheckFault so disarmed runs skip it entirely.
  Status Inject(const char* site);

  /// Decision seed of the installed configuration (0 when disarmed).
  uint64_t seed() const;

  /// Total faults injected (errors + latencies) since the last Configure.
  uint64_t injected() const { return injected_.load(std::memory_order_relaxed); }

  /// Names of the configured sites (for reports; "*" listed verbatim).
  std::vector<std::string> ConfiguredSites() const;

 private:
  struct Config {
    uint64_t seed = 0;
    std::vector<std::unique_ptr<Fault>> faults;
  };

  FaultInjector() = default;

  inline static std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};
  // C++20 atomic shared_ptr: Inject() loads without locking Configure().
  std::atomic<std::shared_ptr<const Config>> config_{nullptr};
};

/// The per-site check. Reads one relaxed atomic when no faults are
/// configured.
inline Status CheckFault(const char* site) {
  if (!FaultInjector::Armed()) return Status::OK();
  return FaultInjector::Global().Inject(site);
}

/// Declares a named fault site; evaluates to a Status.
#define ISUM_FAULT_POINT(site) ::isum::CheckFault(site)

}  // namespace isum

#endif  // ISUM_COMMON_FAULT_H_
