#ifndef ISUM_COMMON_STATUS_H_
#define ISUM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace isum {

/// Error categories used across the library. Library code never throws;
/// fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kUnimplemented,
  kInternal,
  /// A time budget (Deadline) expired before the operation finished.
  kDeadlineExceeded,
  /// A CancellationToken fired before the operation finished.
  kCancelled,
  /// A transient failure (e.g. an injected fault or a flaky optimizer
  /// call); the operation may succeed if retried. Retry loops only retry
  /// this code (docs/ROBUSTNESS.md).
  kUnavailable,
};

/// Returns a short human-readable name for `code`, e.g. "ParseError".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Copyable and cheap when OK.
/// [[nodiscard]]: silently dropping a Status hides errors; discard explicitly
/// with a justified NOLINT if a call is truly infallible at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored StatusOr is a programming error (ISUM_CHECK — enforced in all
/// build types, including NDEBUG).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr ergonomics).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    ISUM_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ISUM_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    ISUM_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    ISUM_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace isum

/// Propagates a non-OK Status from an expression, absl-style.
#define ISUM_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::isum::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else assigns value.
#define ISUM_ASSIGN_OR_RETURN(lhs, expr)        \
  ISUM_ASSIGN_OR_RETURN_IMPL_(                  \
      ISUM_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define ISUM_STATUS_CONCAT_INNER_(a, b) a##b
#define ISUM_STATUS_CONCAT_(a, b) ISUM_STATUS_CONCAT_INNER_(a, b)
#define ISUM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // ISUM_COMMON_STATUS_H_
