#ifndef ISUM_COMMON_CHECK_H_
#define ISUM_COMMON_CHECK_H_

#include <string>

namespace isum::internal {

/// Reports a failed contract to stderr as
/// "file:line: check failed: expr (detail)" and aborts. Out of line so the
/// macros below stay cheap at every call site.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& detail);

}  // namespace isum::internal

/// Contract macros. Unlike assert(), ISUM_CHECK* survive NDEBUG: they are the
/// library's last line of defense against silently corrupt results (the
/// default RelWithDebInfo build defines NDEBUG, which compiles assert() out).
///
/// Policy (see docs/ANALYSIS.md):
///   ISUM_CHECK       — invariants whose violation would corrupt results or
///                      invoke UB. Always on; one predictable branch.
///   ISUM_CHECK_OK    — like ISUM_CHECK but for Status/StatusOr expressions;
///                      prints Status::ToString() on failure.
///   ISUM_DCHECK      — debug-only; for checks too expensive for release
///                      builds or redundant with an adjacent ISUM_CHECK.
///   ISUM_UNREACHABLE — marks control flow that must never execute.
#define ISUM_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::isum::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                  \
  } while (0)

/// Checks cond and appends a formatted detail message on failure. `detail`
/// may be any expression convertible to std::string (it is only evaluated on
/// failure).
#define ISUM_CHECK_MSG(cond, detail)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::isum::internal::CheckFailed(__FILE__, __LINE__, #cond, (detail)); \
    }                                                                     \
  } while (0)

/// Checks that a Status (or StatusOr) expression is OK; prints the carried
/// error on failure. Works with any type exposing ok() and status().
#define ISUM_CHECK_OK(expr)                                            \
  do {                                                                 \
    auto&& isum_check_ok_result_ = (expr);                             \
    if (!isum_check_ok_result_.ok()) {                                 \
      ::isum::internal::CheckFailed(                                   \
          __FILE__, __LINE__, #expr " is OK",                          \
          ::isum::internal::StatusDetail(isum_check_ok_result_));      \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define ISUM_DCHECK(cond)            \
  do {                               \
    if (false && (cond)) {           \
    }                                \
  } while (0)
#else
#define ISUM_DCHECK(cond) ISUM_CHECK(cond)
#endif

#define ISUM_UNREACHABLE()                                             \
  ::isum::internal::CheckFailed(__FILE__, __LINE__, "unreachable code", \
                                "")

namespace isum::internal {

/// Extracts a printable error from a Status or StatusOr-like object.
template <typename T>
std::string StatusDetail(const T& status_like) {
  if constexpr (requires { status_like.status().ToString(); }) {
    return status_like.status().ToString();
  } else {
    return status_like.ToString();
  }
}

}  // namespace isum::internal

#endif  // ISUM_COMMON_CHECK_H_
