#ifndef ISUM_COMMON_LOG_H_
#define ISUM_COMMON_LOG_H_

#include <functional>
#include <string>

namespace isum {

/// Minimal diagnostic sink. Library code must not write to stdout/stderr
/// directly (enforced by isum_lint); warnings funnel through here so
/// embedders can redirect or silence them.
using LogSink = std::function<void(const std::string& message)>;

/// Replaces the process-wide warning sink; pass nullptr to restore the
/// default (stderr). Returns the previous sink. Not thread-safe with
/// concurrent LogWarning calls; install sinks during startup.
LogSink SetLogSink(LogSink sink);

/// Emits a one-line warning to the installed sink (default: stderr, with a
/// trailing newline appended).
void LogWarning(const std::string& message);

}  // namespace isum

#endif  // ISUM_COMMON_LOG_H_
