#include "eval/drilldown.h"

#include <algorithm>

#include "common/string_util.h"
#include "engine/optimizer.h"

namespace isum::eval {

DrilldownReport BuildDrilldown(const workload::Workload& workload,
                               const workload::CompressedWorkload& compressed,
                               const engine::Configuration& config,
                               double min_similarity) {
  DrilldownReport report;
  if (compressed.entries.empty()) return report;

  // Features for similarity-based representation assignment.
  core::FeatureSpace space;
  core::Featurizer featurizer(workload.env().catalog, workload.env().stats,
                              &space);
  std::vector<core::SparseVector> features(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    features[i] = featurizer.Featurize(workload.query(i).bound);
  }

  engine::Optimizer optimizer(workload.env().cost_model);

  double before_total = 0.0;
  double after_total = 0.0;
  std::vector<bool> selected(workload.size(), false);
  for (const auto& e : compressed.entries) {
    DrilldownEntry entry;
    entry.query_index = e.query_index;
    entry.weight = e.weight;
    const workload::QueryInfo& q = workload.query(e.query_index);
    entry.cost_before = q.base_cost;
    const engine::PlanSummary plan = optimizer.Optimize(q.bound, config);
    entry.cost_after = plan.total_cost;
    for (const engine::PlannedTable& pt : plan.tables) {
      const engine::Index* used =
          pt.join_method == engine::JoinMethod::kIndexNestedLoop ? pt.inl_index
                                                                 : pt.access.index;
      if (used != nullptr) {
        entry.indexes_used.push_back(
            used->DebugName(*workload.env().catalog));
      }
    }
    before_total += e.weight * entry.cost_before;
    after_total += e.weight * entry.cost_after;
    selected[e.query_index] = true;
    report.entries.push_back(std::move(entry));
  }
  report.compressed_improvement_percent =
      before_total > 0.0 ? (before_total - after_total) / before_total * 100.0
                         : 0.0;

  // Assign every unselected input query to its most similar selected query.
  for (size_t i = 0; i < workload.size(); ++i) {
    if (selected[i]) continue;
    double best = 0.0;
    size_t rep = 0;
    for (size_t e = 0; e < report.entries.size(); ++e) {
      const double sim = core::WeightedJaccard(
          features[i], features[report.entries[e].query_index]);
      if (sim > best) {
        best = sim;
        rep = e;
      }
    }
    if (best >= min_similarity) {
      report.entries[rep].represents.push_back(RepresentedQuery{i, best});
    } else {
      report.unrepresented.push_back(i);
    }
  }
  for (DrilldownEntry& entry : report.entries) {
    std::sort(entry.represents.begin(), entry.represents.end(),
              [](const RepresentedQuery& a, const RepresentedQuery& b) {
                return a.similarity > b.similarity;
              });
  }
  return report;
}

std::string DrilldownReport::ToString(
    const workload::Workload& workload) const {
  std::string out = StrFormat(
      "Drill-down: %zu selected queries, estimated improvement on the "
      "compressed workload %.1f%%\n",
      entries.size(), compressed_improvement_percent);
  for (const DrilldownEntry& entry : entries) {
    const workload::QueryInfo& q = workload.query(entry.query_index);
    out += StrFormat("\nq%zu (weight %.3f)  cost %.0f -> %.0f (%.1f%%)\n",
                     entry.query_index, entry.weight, entry.cost_before,
                     entry.cost_after,
                     entry.cost_before > 0.0
                         ? (entry.cost_before - entry.cost_after) /
                               entry.cost_before * 100.0
                         : 0.0);
    out += "  " + q.sql.substr(0, 100) + (q.sql.size() > 100 ? "...\n" : "\n");
    if (!entry.indexes_used.empty()) {
      out += "  uses: " + Join(entry.indexes_used, ", ") + "\n";
    }
    if (!entry.represents.empty()) {
      out += StrFormat("  represents %zu input queries:", entry.represents.size());
      const size_t shown = std::min<size_t>(entry.represents.size(), 8);
      for (size_t i = 0; i < shown; ++i) {
        out += StrFormat(" q%zu(%.2f)", entry.represents[i].query_index,
                         entry.represents[i].similarity);
      }
      if (entry.represents.size() > shown) out += " ...";
      out += "\n";
    }
  }
  if (!unrepresented.empty()) {
    out += StrFormat("\n%zu input queries are not represented by any "
                     "selected query (similarity ~ 0):",
                     unrepresented.size());
    const size_t shown = std::min<size_t>(unrepresented.size(), 12);
    for (size_t i = 0; i < shown; ++i) {
      out += StrFormat(" q%zu", unrepresented[i]);
    }
    if (unrepresented.size() > shown) out += " ...";
    out += "\n";
  }
  return out;
}

}  // namespace isum::eval
