#include "eval/reporting.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace isum::eval {

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(StrFormat("%.2f", v));
  AddRow(std::move(cells));
}

std::string Table::ToString(bool csv) const {
  std::string out;
  if (csv) {
    out += Join(headers_, ",") + "\n";
    for (const auto& row : rows_) out += Join(row, ",") + "\n";
    return out;
  }
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::Print(const std::string& title, bool csv) const {
  // Print() is the bench/example output sink; stdout is its documented
  // contract, so the stdio ban is waived here.
  std::printf("\n=== %s ===\n%s", title.c_str(),  // NOLINT(isum-no-stdio)
              ToString(csv).c_str());
  std::fflush(stdout);
}

bool WantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

double ScaleArg(int argc, char** argv, double default_scale) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      return std::strtod(argv[i + 1], nullptr);
    }
  }
  return default_scale;
}

}  // namespace isum::eval
