#ifndef ISUM_EVAL_REPORTING_H_
#define ISUM_EVAL_REPORTING_H_

#include <string>
#include <vector>

namespace isum::eval {

/// Small aligned-table printer for bench output (with optional CSV mode so
/// results can be piped into plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Adds a row; pads/truncates to the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for mixed numeric rows: formats doubles with %.2f.
  void AddRow(const std::string& label, const std::vector<double>& values);

  /// Renders aligned columns (or comma-separated when `csv`).
  std::string ToString(bool csv = false) const;

  /// Prints to stdout, preceded by `title` as a section heading.
  void Print(const std::string& title, bool csv = false) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// True if any CLI argument equals "--csv" (shared by bench mains).
bool WantCsv(int argc, char** argv);

/// Returns the value following "--scale" (default 1.0): bench workload
/// scale factor; 1.0 = fast defaults, larger approaches paper-sized inputs.
double ScaleArg(int argc, char** argv, double default_scale = 1.0);

}  // namespace isum::eval

#endif  // ISUM_EVAL_REPORTING_H_
