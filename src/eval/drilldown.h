#ifndef ISUM_EVAL_DRILLDOWN_H_
#define ISUM_EVAL_DRILLDOWN_H_

#include <string>
#include <vector>

#include "core/isum.h"
#include "engine/configuration.h"
#include "workload/workload.h"

namespace isum::eval {

/// The §10 interpretability extension: commercial advisors report, per input
/// query, the estimated improvement and which indexes serve it — which costs
/// one optimizer call per input query. This report instead explains the
/// recommendation through the *compressed* workload: each selected query is
/// shown with the input queries it represents (nearest-selected assignment
/// by feature similarity), letting the user audit a large workload at the
/// cost of k optimizer calls plus featurization.

/// One input query's relationship to the recommendation.
struct RepresentedQuery {
  size_t query_index = 0;
  /// Weighted-Jaccard similarity to its representative.
  double similarity = 0.0;
};

/// One compressed-workload query with its followers and measured costs.
struct DrilldownEntry {
  size_t query_index = 0;
  double weight = 0.0;
  double cost_before = 0.0;
  double cost_after = 0.0;
  /// Indexes (names) the query's tuned plan actually uses.
  std::vector<std::string> indexes_used;
  /// Input queries represented by this selected query (itself excluded).
  std::vector<RepresentedQuery> represents;
};

/// Full report for a recommendation.
struct DrilldownReport {
  std::vector<DrilldownEntry> entries;
  /// Input queries whose similarity to every selected query is ~0 — the
  /// recommendation is blind to these (§10's interpretability gap).
  std::vector<size_t> unrepresented;
  /// Estimated improvement (%) over the compressed workload only — the
  /// cheap stand-in for full-workload estimation the paper proposes.
  double compressed_improvement_percent = 0.0;

  /// Renders the report as human-readable text.
  std::string ToString(const workload::Workload& workload) const;
};

/// Builds the report: costs each selected query before/after `config`,
/// extracts the indexes its plan uses, and assigns every input query to its
/// most similar selected query (similarity threshold 0 keeps everything).
DrilldownReport BuildDrilldown(const workload::Workload& workload,
                               const workload::CompressedWorkload& compressed,
                               const engine::Configuration& config,
                               double min_similarity = 0.05);

}  // namespace isum::eval

#endif  // ISUM_EVAL_DRILLDOWN_H_
