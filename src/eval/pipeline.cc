#include "eval/pipeline.h"

#include "common/deadline.h"
#include "engine/optimizer.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace isum::eval {

double WorkloadImprovementPercent(const workload::Workload& workload,
                                  const engine::Configuration& config) {
  const double base = workload.TotalCost();
  if (base <= 0.0) return 0.0;
  engine::Optimizer optimizer(workload.env().cost_model);
  double tuned = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    tuned += optimizer.Cost(workload.query(i).bound, config);
  }
  return (base - tuned) / base * 100.0;
}

EvaluationResult RunPipeline(const workload::Workload& workload,
                             const workload::CompressedWorkload& compressed,
                             const TunerFn& tuner, std::string algorithm_name) {
  EvaluationResult result;
  result.algorithm = std::move(algorithm_name);
  result.k = compressed.size();
  result.compressed = compressed;

  std::vector<advisor::WeightedQuery> queries;
  queries.reserve(compressed.entries.size());
  for (const auto& e : compressed.entries) {
    queries.push_back({&workload.query(e.query_index).bound, e.weight});
  }

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const uint64_t start_nanos = MonotonicNanos();
  {
    ISUM_TRACE_SPAN("pipeline/tune");
    result.tuning = tuner(queries);
  }
  result.tuning_seconds =
      static_cast<double>(MonotonicNanos() - start_nanos) * 1e-9;
  {
    ISUM_TRACE_SPAN("pipeline/evaluate");
    result.improvement_percent =
        WorkloadImprovementPercent(workload, result.tuning.configuration);
  }
  // First early stop along the pipeline wins: a truncated compression is
  // upstream of (and explains) whatever the tuner then did.
  result.stop_reason = compressed.stop_reason != StopReason::kComplete
                           ? compressed.stop_reason
                           : result.tuning.stop_reason;
  result.metrics = obs::MetricsSnapshot::Delta(
      before, obs::MetricsRegistry::Global().Snapshot());
  obs::Journal& journal = obs::Journal::Global();
  if (journal.enabled()) {
    // Post-eval attribution: for every selected query, the benefit greedy
    // selection estimated vs. the cost reduction the recommended
    // configuration realized on it (base cost minus cost under the final
    // configuration, weighted like the tuner saw it).
    engine::Optimizer optimizer(workload.env().cost_model);
    for (const auto& e : compressed.entries) {
      const workload::QueryInfo& q = workload.query(e.query_index);
      const double realized =
          q.base_cost -
          optimizer.Cost(q.bound, result.tuning.configuration);
      journal.Attribution(e.query_index, e.weight, e.selection_benefit,
                          realized);
    }
    // PipelineEnd flushes eagerly when stop_reason is abnormal, so a
    // deadline-killed run still leaves a complete journal on disk.
    journal.PipelineEnd(result.algorithm.c_str(), result.k,
                        result.improvement_percent,
                        StopReasonToString(result.stop_reason));
  }
  return result;
}

TunerFn MakeDtaTuner(const workload::Workload& workload,
                     const advisor::TuningOptions& options) {
  const engine::CostModel* cm = workload.env().cost_model;
  return [cm, options](const std::vector<advisor::WeightedQuery>& queries) {
    return advisor::DtaStyleAdvisor(cm).Tune(queries, options);
  };
}

TunerFn MakeDexterTuner(const workload::Workload& workload,
                        const advisor::DexterOptions& options) {
  const engine::CostModel* cm = workload.env().cost_model;
  return [cm, options](const std::vector<advisor::WeightedQuery>& queries) {
    return advisor::DexterStyleAdvisor(cm).Tune(queries, options);
  };
}

}  // namespace isum::eval
