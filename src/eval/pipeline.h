#ifndef ISUM_EVAL_PIPELINE_H_
#define ISUM_EVAL_PIPELINE_H_

#include <functional>
#include <string>

#include "advisor/advisor.h"
#include "advisor/dexter_advisor.h"
#include "baselines/compressor.h"
#include "core/isum.h"
#include "obs/metrics.h"

namespace isum::eval {

/// End-to-end result of compress -> tune -> evaluate for one algorithm/k.
struct EvaluationResult {
  std::string algorithm;
  size_t k = 0;
  /// Improvement (%) of the *full* workload under the recommended indexes:
  /// (C(W) - C_k(W)) / C(W) × 100 (§8, Evaluation Metrics).
  double improvement_percent = 0.0;
  double compression_seconds = 0.0;
  double tuning_seconds = 0.0;
  advisor::TuningResult tuning;
  workload::CompressedWorkload compressed;
  /// kComplete, or the first early-stop reason along the pipeline
  /// (compression before tuning). Partial pipelines still evaluate whatever
  /// configuration the tuner produced (docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;
  /// Registry activity attributable to this pipeline run: the delta of
  /// MetricsRegistry::Global() across tune + evaluate. In a single-threaded
  /// driver, metrics.CounterValue("whatif.optimizer_calls") equals
  /// tuning.optimizer_calls exactly (docs/OBSERVABILITY.md).
  obs::MetricsSnapshot metrics;
};

/// Improvement (%) of `workload` under `config`, using the workload's own
/// cost model (fresh optimizer pass per query; this is the "report estimated
/// improvement on the entire input workload" step of §1/§10).
double WorkloadImprovementPercent(const workload::Workload& workload,
                                  const engine::Configuration& config);

/// Tuner signature: weighted queries in, recommendation out. Lets the same
/// pipeline drive the DTA-style and DEXTER-style advisors (§8.3).
using TunerFn = std::function<advisor::TuningResult(
    const std::vector<advisor::WeightedQuery>&)>;

/// Runs `tuner` on the compressed workload and evaluates the recommended
/// configuration on the full workload.
EvaluationResult RunPipeline(const workload::Workload& workload,
                             const workload::CompressedWorkload& compressed,
                             const TunerFn& tuner, std::string algorithm_name);

/// Convenience: DTA-style tuner with `options`.
TunerFn MakeDtaTuner(const workload::Workload& workload,
                     const advisor::TuningOptions& options);

/// Convenience: DEXTER-style tuner with `options`.
TunerFn MakeDexterTuner(const workload::Workload& workload,
                        const advisor::DexterOptions& options);

/// Adapts the ISUM compressor to the baselines::Compressor interface so
/// experiment sweeps can treat all algorithms uniformly.
class IsumCompressor : public baselines::Compressor {
 public:
  explicit IsumCompressor(core::IsumOptions options = {},
                          std::string display_name = "ISUM")
      : options_(options), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }

  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override {
    return core::Isum(&workload, options_).Compress(k);
  }

 private:
  core::IsumOptions options_;
  std::string name_;
};

}  // namespace isum::eval

#endif  // ISUM_EVAL_PIPELINE_H_
