#include "sql/templatizer.h"

#include "common/hash.h"
#include "sql/printer.h"

namespace isum::sql {

namespace {

SelectStatement MaskStatement(const SelectStatement& stmt);

/// Deep-copies `expr` with every literal (and LIKE pattern) masked to '?'.
ExpressionPtr MaskLiterals(const Expression& expr) {
  switch (expr.kind()) {
    case ExpressionKind::kLiteral:
      return LiteralExpression::String("?");
    case ExpressionKind::kColumnRef:
    case ExpressionKind::kStar:
      return expr.Clone();
    case ExpressionKind::kBinary: {
      const auto& e = static_cast<const BinaryExpression&>(expr);
      return std::make_unique<BinaryExpression>(e.op(), MaskLiterals(e.lhs()),
                                                MaskLiterals(e.rhs()));
    }
    case ExpressionKind::kUnaryNot: {
      const auto& e = static_cast<const UnaryNotExpression&>(expr);
      return std::make_unique<UnaryNotExpression>(MaskLiterals(e.child()));
    }
    case ExpressionKind::kIn: {
      const auto& e = static_cast<const InExpression&>(expr);
      std::vector<ExpressionPtr> values;
      values.reserve(e.values().size());
      for (const auto& v : e.values()) values.push_back(MaskLiterals(*v));
      return std::make_unique<InExpression>(MaskLiterals(e.operand()),
                                            std::move(values), e.negated());
    }
    case ExpressionKind::kBetween: {
      const auto& e = static_cast<const BetweenExpression&>(expr);
      return std::make_unique<BetweenExpression>(
          MaskLiterals(e.operand()), MaskLiterals(e.lo()), MaskLiterals(e.hi()),
          e.negated());
    }
    case ExpressionKind::kLike: {
      const auto& e = static_cast<const LikeExpression&>(expr);
      return std::make_unique<LikeExpression>(MaskLiterals(e.operand()), "?",
                                              e.negated());
    }
    case ExpressionKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpression&>(expr);
      return std::make_unique<IsNullExpression>(MaskLiterals(e.operand()),
                                                e.negated());
    }
    case ExpressionKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpression&>(expr);
      std::vector<ExpressionPtr> args;
      args.reserve(e.args().size());
      for (const auto& a : e.args()) args.push_back(MaskLiterals(*a));
      return std::make_unique<FunctionCallExpression>(e.name(), std::move(args),
                                                      e.distinct());
    }
    case ExpressionKind::kExists: {
      const auto& e = static_cast<const ExistsExpression&>(expr);
      return std::make_unique<ExistsExpression>(
          std::make_unique<SelectStatement>(MaskStatement(e.subquery())),
          e.negated());
    }
    case ExpressionKind::kInSubquery: {
      const auto& e = static_cast<const InSubqueryExpression&>(expr);
      return std::make_unique<InSubqueryExpression>(
          MaskLiterals(e.operand()),
          std::make_unique<SelectStatement>(MaskStatement(e.subquery())),
          e.negated());
    }
  }
  return expr.Clone();
}

SelectStatement MaskStatement(const SelectStatement& stmt) {
  SelectStatement masked;
  masked.distinct = stmt.distinct;
  for (const auto& item : stmt.select_list) {
    masked.select_list.push_back(SelectItem{MaskLiterals(*item.expr), item.alias});
  }
  masked.from = stmt.from;
  masked.where = stmt.where ? MaskLiterals(*stmt.where) : nullptr;
  for (const auto& g : stmt.group_by) masked.group_by.push_back(MaskLiterals(*g));
  masked.having = stmt.having ? MaskLiterals(*stmt.having) : nullptr;
  for (const auto& o : stmt.order_by) {
    masked.order_by.push_back(OrderByItem{MaskLiterals(*o.expr), o.descending});
  }
  masked.limit = stmt.limit.has_value() ? std::optional<int64_t>(0) : std::nullopt;
  return masked;
}

}  // namespace

std::string TemplateText(const SelectStatement& stmt) {
  return StatementToSql(MaskStatement(stmt));
}

uint64_t TemplateHash(const SelectStatement& stmt) {
  return HashBytes(TemplateText(stmt));
}

}  // namespace isum::sql
