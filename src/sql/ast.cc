#include "sql/ast.h"

namespace isum::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kPlus:
      return "+";
    case BinaryOp::kMinus:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

ExpressionPtr LiteralExpression::Clone() const {
  auto e = std::make_unique<LiteralExpression>();
  e->kind_ = kind_;
  e->number_ = number_;
  e->string_ = string_;
  return e;
}

ExpressionPtr InExpression::Clone() const {
  std::vector<ExpressionPtr> values;
  values.reserve(values_.size());
  for (const auto& v : values_) values.push_back(v->Clone());
  return std::make_unique<InExpression>(operand_->Clone(), std::move(values),
                                        negated_);
}

ExpressionPtr FunctionCallExpression::Clone() const {
  std::vector<ExpressionPtr> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->Clone());
  return std::make_unique<FunctionCallExpression>(name_, std::move(args),
                                                  distinct_);
}

SelectStatement SelectStatement::Clone() const {
  SelectStatement out;
  out.distinct = distinct;
  out.select_list.reserve(select_list.size());
  for (const auto& item : select_list) out.select_list.push_back(item.Clone());
  out.from = from;
  out.where = where ? where->Clone() : nullptr;
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  out.having = having ? having->Clone() : nullptr;
  out.order_by.reserve(order_by.size());
  for (const auto& o : order_by) out.order_by.push_back(o.Clone());
  out.limit = limit;
  return out;
}

}  // namespace isum::sql
