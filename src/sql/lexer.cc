#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace isum::sql {

bool Token::Is(std::string_view spelling) const {
  if (type == TokenType::kNumber || type == TokenType::kString ||
      type == TokenType::kEnd) {
    return false;
  }
  return EqualsIgnoreCase(text, spelling);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: -- ... \n
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      bool seen_exp = false;
      while (j < n) {
        const char d = sql[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          // `1.` followed by an identifier char would be table.column on a
          // numeric alias — not legal here, so consume greedily.
          seen_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !seen_exp && j + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[j + 1])) ||
                    ((sql[j + 1] == '+' || sql[j + 1] == '-') && j + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(sql[j + 2]))))) {
          seen_exp = true;
          j += 2;
        } else {
          break;
        }
      }
      tok.type = TokenType::kNumber;
      tok.text = std::string(sql.substr(i, j - i));
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string value;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          value.push_back(sql[j]);
          ++j;
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      i = j;
    } else {
      // Multi-char symbols first.
      auto two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(two == "!=" ? "<>" : two);
        i += 2;
      } else if (std::string_view("=<>+-*/,().;").find(c) !=
                 std::string_view::npos) {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        ++i;
      } else {
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace isum::sql
