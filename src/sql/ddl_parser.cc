#include "sql/ddl_parser.h"

#include <vector>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace isum::sql {

namespace {

class DdlParser {
 public:
  DdlParser(std::vector<Token> tokens, catalog::Catalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  StatusOr<int> Run() {
    int created = 0;
    while (!Peek().Is(TokenType::kEnd)) {
      ISUM_RETURN_IF_ERROR(ParseCreateTable());
      ++created;
      while (Match(";")) {
      }
    }
    return created;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(std::string_view spelling) {
    if (Peek().Is(spelling)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view spelling) {
    if (Match(spelling)) return Status::OK();
    return Status::ParseError(StrFormat(
        "expected '%s' at offset %zu, got '%s'", std::string(spelling).c_str(),
        Peek().offset, Peek().text.c_str()));
  }
  StatusOr<std::string> ExpectIdentifier(const char* what) {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Status::ParseError(
          StrFormat("expected %s at offset %zu", what, Peek().offset));
    }
    return Advance().text;
  }

  /// Parses "(number [, number])" and returns the first value; 0 if absent.
  StatusOr<int32_t> ParseOptionalLength() {
    if (!Match("(")) return 0;
    if (!Peek().Is(TokenType::kNumber)) {
      return Status::ParseError(
          StrFormat("expected length at offset %zu", Peek().offset));
    }
    const int32_t length = static_cast<int32_t>(Advance().number);
    if (Match(",")) {
      if (!Peek().Is(TokenType::kNumber)) {
        return Status::ParseError(
            StrFormat("expected scale at offset %zu", Peek().offset));
      }
      Advance();
    }
    ISUM_RETURN_IF_ERROR(Expect(")"));
    return length;
  }

  StatusOr<catalog::ColumnType> ParseType(int32_t* declared_length) {
    ISUM_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column type"));
    const std::string lower = ToLower(name);
    *declared_length = 0;
    if (lower == "int" || lower == "integer" || lower == "smallint") {
      return catalog::ColumnType::kInt;
    }
    if (lower == "bigint") return catalog::ColumnType::kBigInt;
    if (lower == "double" || lower == "float" || lower == "real") {
      return catalog::ColumnType::kDouble;
    }
    if (lower == "decimal" || lower == "numeric") {
      ISUM_ASSIGN_OR_RETURN(*declared_length, ParseOptionalLength());
      return catalog::ColumnType::kDecimal;
    }
    if (lower == "varchar") {
      ISUM_ASSIGN_OR_RETURN(*declared_length, ParseOptionalLength());
      return catalog::ColumnType::kVarchar;
    }
    if (lower == "char") {
      ISUM_ASSIGN_OR_RETURN(*declared_length, ParseOptionalLength());
      return catalog::ColumnType::kChar;
    }
    if (lower == "text") {
      *declared_length = 64;
      return catalog::ColumnType::kVarchar;
    }
    if (lower == "date" || lower == "timestamp" || lower == "datetime") {
      return catalog::ColumnType::kDate;
    }
    if (lower == "bool" || lower == "boolean") return catalog::ColumnType::kBool;
    return Status::ParseError("unknown column type '" + name + "'");
  }

  Status ParseCreateTable() {
    ISUM_RETURN_IF_ERROR(Expect("create"));
    ISUM_RETURN_IF_ERROR(Expect("table"));
    ISUM_ASSIGN_OR_RETURN(std::string table_name,
                          ExpectIdentifier("table name"));
    ISUM_RETURN_IF_ERROR(Expect("("));

    struct PendingColumn {
      catalog::Column column;
    };
    std::vector<PendingColumn> columns;
    for (;;) {
      ISUM_ASSIGN_OR_RETURN(std::string col_name,
                            ExpectIdentifier("column name"));
      int32_t declared_length = 0;
      ISUM_ASSIGN_OR_RETURN(catalog::ColumnType type,
                            ParseType(&declared_length));
      PendingColumn pc;
      pc.column.name = std::move(col_name);
      pc.column.type = type;
      pc.column.width_bytes = catalog::DefaultWidthBytes(type, declared_length);
      // Column constraints we understand; others are rejected loudly rather
      // than silently skipped.
      for (;;) {
        if (Match("primary")) {
          ISUM_RETURN_IF_ERROR(Expect("key"));
          pc.column.is_key = true;
        } else if (Match("not")) {
          ISUM_RETURN_IF_ERROR(Expect("null"));
        } else if (Match("unique")) {
          pc.column.is_key = true;
        } else {
          break;
        }
      }
      columns.push_back(std::move(pc));
      if (Match(",")) continue;
      ISUM_RETURN_IF_ERROR(Expect(")"));
      break;
    }

    uint64_t rows = 1000;
    if (Match("with")) {
      ISUM_RETURN_IF_ERROR(Expect("("));
      ISUM_RETURN_IF_ERROR(Expect("rows"));
      ISUM_RETURN_IF_ERROR(Expect("="));
      if (!Peek().Is(TokenType::kNumber)) {
        return Status::ParseError(
            StrFormat("expected row count at offset %zu", Peek().offset));
      }
      rows = static_cast<uint64_t>(Advance().number);
      ISUM_RETURN_IF_ERROR(Expect(")"));
    }

    ISUM_ASSIGN_OR_RETURN(catalog::Table * table,
                          catalog_->CreateTable(table_name, rows));
    for (PendingColumn& pc : columns) {
      auto added = table->AddColumn(std::move(pc.column));
      if (!added.ok()) return added.status();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  catalog::Catalog* catalog_;
};

}  // namespace

StatusOr<int> ParseSchema(std::string_view ddl, catalog::Catalog* catalog) {
  ISUM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(ddl));
  DdlParser parser(std::move(tokens), catalog);
  return parser.Run();
}

}  // namespace isum::sql
