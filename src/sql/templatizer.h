#ifndef ISUM_SQL_TEMPLATIZER_H_
#define ISUM_SQL_TEMPLATIZER_H_

#include <cstdint>
#include <string>

#include "sql/ast.h"

namespace isum::sql {

/// Canonical template text of a statement: the SQL rendering with every
/// literal replaced by '?'. Two query instances of the same template (same
/// skeleton, different parameter bindings — the grouping used by [11] and by
/// the paper's Stratified baseline and template-based weighing, §7) map to
/// identical template text.
std::string TemplateText(const SelectStatement& stmt);

/// Stable 64-bit hash of TemplateText (FNV-1a).
uint64_t TemplateHash(const SelectStatement& stmt);

}  // namespace isum::sql

#endif  // ISUM_SQL_TEMPLATIZER_H_
