#ifndef ISUM_SQL_AST_H_
#define ISUM_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace isum::sql {

/// Expression node discriminator.
enum class ExpressionKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnaryNot,
  kIn,
  kBetween,
  kLike,
  kFunctionCall,
  kStar,
  kIsNull,
  kExists,      ///< [NOT] EXISTS (SELECT ...)
  kInSubquery,  ///< expr [NOT] IN (SELECT ...)
};

/// Binary operators (boolean, comparison and arithmetic).
enum class BinaryOp {
  kAnd,
  kOr,
  kEq,
  kNotEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kMul,
  kDiv,
};

/// Returns the SQL spelling of `op` (e.g. "<=", "AND").
const char* BinaryOpToString(BinaryOp op);
/// True for =, <>, <, <=, >, >=.
bool IsComparison(BinaryOp op);

/// Base class for all expression nodes. Nodes are owned via unique_ptr and
/// deep-copyable via Clone().
class Expression {
 public:
  explicit Expression(ExpressionKind kind) : kind_(kind) {}
  virtual ~Expression() = default;
  Expression(const Expression&) = delete;
  Expression& operator=(const Expression&) = delete;

  ExpressionKind kind() const { return kind_; }
  virtual std::unique_ptr<Expression> Clone() const = 0;

 private:
  ExpressionKind kind_;
};

using ExpressionPtr = std::unique_ptr<Expression>;

/// A (possibly qualified) column reference, e.g. `l.l_orderkey` or `name`.
class ColumnRefExpression : public Expression {
 public:
  ColumnRefExpression(std::string table, std::string column)
      : Expression(ExpressionKind::kColumnRef),
        table_(std::move(table)),
        column_(std::move(column)) {}

  /// Qualifier (alias or table name); empty when unqualified.
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<ColumnRefExpression>(table_, column_);
  }

 private:
  std::string table_;
  std::string column_;
};

/// Literal value kinds supported by the SQL subset.
enum class LiteralKind { kNumber, kString, kNull };

/// A numeric, string, or NULL literal.
class LiteralExpression : public Expression {
 public:
  static std::unique_ptr<LiteralExpression> Number(double v) {
    auto e = std::make_unique<LiteralExpression>();
    e->kind_ = LiteralKind::kNumber;
    e->number_ = v;
    return e;
  }
  static std::unique_ptr<LiteralExpression> String(std::string v) {
    auto e = std::make_unique<LiteralExpression>();
    e->kind_ = LiteralKind::kString;
    e->string_ = std::move(v);
    return e;
  }
  static std::unique_ptr<LiteralExpression> Null() {
    auto e = std::make_unique<LiteralExpression>();
    e->kind_ = LiteralKind::kNull;
    return e;
  }

  LiteralExpression() : Expression(ExpressionKind::kLiteral) {}

  LiteralKind literal_kind() const { return kind_; }
  double number() const { return number_; }
  const std::string& string_value() const { return string_; }

  ExpressionPtr Clone() const override;

 private:
  LiteralKind kind_ = LiteralKind::kNull;
  double number_ = 0.0;
  std::string string_;
};

/// `lhs op rhs` for boolean, comparison and arithmetic operators.
class BinaryExpression : public Expression {
 public:
  BinaryExpression(BinaryOp op, ExpressionPtr lhs, ExpressionPtr rhs)
      : Expression(ExpressionKind::kBinary),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  BinaryOp op() const { return op_; }
  const Expression& lhs() const { return *lhs_; }
  const Expression& rhs() const { return *rhs_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<BinaryExpression>(op_, lhs_->Clone(), rhs_->Clone());
  }

 private:
  BinaryOp op_;
  ExpressionPtr lhs_;
  ExpressionPtr rhs_;
};

/// `NOT child`.
class UnaryNotExpression : public Expression {
 public:
  explicit UnaryNotExpression(ExpressionPtr child)
      : Expression(ExpressionKind::kUnaryNot), child_(std::move(child)) {}

  const Expression& child() const { return *child_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<UnaryNotExpression>(child_->Clone());
  }

 private:
  ExpressionPtr child_;
};

/// `expr [NOT] IN (v1, v2, ...)`.
class InExpression : public Expression {
 public:
  InExpression(ExpressionPtr operand, std::vector<ExpressionPtr> values,
               bool negated)
      : Expression(ExpressionKind::kIn),
        operand_(std::move(operand)),
        values_(std::move(values)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const std::vector<ExpressionPtr>& values() const { return values_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override;

 private:
  ExpressionPtr operand_;
  std::vector<ExpressionPtr> values_;
  bool negated_;
};

/// `expr [NOT] BETWEEN lo AND hi`.
class BetweenExpression : public Expression {
 public:
  BetweenExpression(ExpressionPtr operand, ExpressionPtr lo, ExpressionPtr hi,
                    bool negated)
      : Expression(ExpressionKind::kBetween),
        operand_(std::move(operand)),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const Expression& lo() const { return *lo_; }
  const Expression& hi() const { return *hi_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<BetweenExpression>(operand_->Clone(), lo_->Clone(),
                                               hi_->Clone(), negated_);
  }

 private:
  ExpressionPtr operand_;
  ExpressionPtr lo_;
  ExpressionPtr hi_;
  bool negated_;
};

/// `expr [NOT] LIKE 'pattern'`.
class LikeExpression : public Expression {
 public:
  LikeExpression(ExpressionPtr operand, std::string pattern, bool negated)
      : Expression(ExpressionKind::kLike),
        operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<LikeExpression>(operand_->Clone(), pattern_, negated_);
  }

 private:
  ExpressionPtr operand_;
  std::string pattern_;
  bool negated_;
};

/// `expr IS [NOT] NULL`.
class IsNullExpression : public Expression {
 public:
  IsNullExpression(ExpressionPtr operand, bool negated)
      : Expression(ExpressionKind::kIsNull),
        operand_(std::move(operand)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<IsNullExpression>(operand_->Clone(), negated_);
  }

 private:
  ExpressionPtr operand_;
  bool negated_;
};

/// `*` in a select list or inside COUNT(*).
class StarExpression : public Expression {
 public:
  StarExpression() : Expression(ExpressionKind::kStar) {}
  ExpressionPtr Clone() const override {
    return std::make_unique<StarExpression>();
  }
};

/// Function (aggregate) call, e.g. SUM(l_extendedprice * (1 - l_discount)).
class FunctionCallExpression : public Expression {
 public:
  FunctionCallExpression(std::string name, std::vector<ExpressionPtr> args,
                         bool distinct)
      : Expression(ExpressionKind::kFunctionCall),
        name_(std::move(name)),
        args_(std::move(args)),
        distinct_(distinct) {}

  /// Upper-cased function name (COUNT/SUM/AVG/MIN/MAX/...).
  const std::string& name() const { return name_; }
  const std::vector<ExpressionPtr>& args() const { return args_; }
  bool distinct() const { return distinct_; }

  ExpressionPtr Clone() const override;

 private:
  std::string name_;
  std::vector<ExpressionPtr> args_;
  bool distinct_;
};

/// One item of the select list: expression plus optional alias.
struct SelectItem {
  ExpressionPtr expr;
  std::string alias;

  SelectItem Clone() const { return SelectItem{expr->Clone(), alias}; }
};

/// One base-table reference in the FROM clause.
struct TableRef {
  std::string table_name;
  std::string alias;  ///< empty when unaliased

  /// Name that qualifies columns for this reference.
  const std::string& effective_name() const {
    return alias.empty() ? table_name : alias;
  }
};

/// One ORDER BY item.
struct OrderByItem {
  ExpressionPtr expr;
  bool descending = false;

  OrderByItem Clone() const { return OrderByItem{expr->Clone(), descending}; }
};

/// A single-block SELECT statement. Explicit `JOIN ... ON` syntax is
/// normalized at parse time into the FROM list plus WHERE conjuncts, which is
/// lossless for the query shapes ISUM targets (single-block SPJ + aggregation).
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  ExpressionPtr where;  ///< may be null
  std::vector<ExpressionPtr> group_by;
  ExpressionPtr having;  ///< may be null
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  SelectStatement() = default;
  SelectStatement(SelectStatement&&) = default;
  SelectStatement& operator=(SelectStatement&&) = default;

  SelectStatement Clone() const;
};

/// `[NOT] EXISTS (SELECT ...)`. The binder flattens these into semi/anti
/// joins (see Binder); they never reach the optimizer directly.
class ExistsExpression : public Expression {
 public:
  ExistsExpression(std::unique_ptr<SelectStatement> subquery, bool negated)
      : Expression(ExpressionKind::kExists),
        subquery_(std::move(subquery)),
        negated_(negated) {}

  const SelectStatement& subquery() const { return *subquery_; }
  SelectStatement& mutable_subquery() { return *subquery_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<ExistsExpression>(
        std::make_unique<SelectStatement>(subquery_->Clone()), negated_);
  }

 private:
  std::unique_ptr<SelectStatement> subquery_;
  bool negated_;
};

/// `expr [NOT] IN (SELECT col FROM ...)`. Flattened like EXISTS, with the
/// additional equality between the operand and the subquery's select item.
class InSubqueryExpression : public Expression {
 public:
  InSubqueryExpression(ExpressionPtr operand,
                       std::unique_ptr<SelectStatement> subquery, bool negated)
      : Expression(ExpressionKind::kInSubquery),
        operand_(std::move(operand)),
        subquery_(std::move(subquery)),
        negated_(negated) {}

  const Expression& operand() const { return *operand_; }
  const SelectStatement& subquery() const { return *subquery_; }
  SelectStatement& mutable_subquery() { return *subquery_; }
  bool negated() const { return negated_; }

  ExpressionPtr Clone() const override {
    return std::make_unique<InSubqueryExpression>(
        operand_->Clone(),
        std::make_unique<SelectStatement>(subquery_->Clone()), negated_);
  }

 private:
  ExpressionPtr operand_;
  std::unique_ptr<SelectStatement> subquery_;
  bool negated_;
};

}  // namespace isum::sql

#endif  // ISUM_SQL_AST_H_
