#ifndef ISUM_SQL_LEXER_H_
#define ISUM_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace isum::sql {

/// Token categories produced by the lexer. Keywords are recognized in the
/// parser from kIdentifier tokens (case-insensitive), keeping the lexer small.
enum class TokenType {
  kIdentifier,
  kNumber,
  kString,
  kSymbol,  ///< one of: = <> != < <= > >= + - * / , ( ) . ;
  kEnd,
};

/// One lexed token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    ///< identifier/symbol spelling or string contents
  double number = 0.0; ///< valid when type == kNumber
  size_t offset = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword/symbol match.
  bool Is(std::string_view spelling) const;
};

/// Tokenizes `sql`; returns ParseError on malformed input (unterminated
/// string, bad character). The final token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace isum::sql

#endif  // ISUM_SQL_LEXER_H_
