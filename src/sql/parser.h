#ifndef ISUM_SQL_PARSER_H_
#define ISUM_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace isum::sql {

/// Parses one single-block SELECT statement from `sql`.
///
/// Supported subset (sufficient for TPC-H/TPC-DS/DSB-shaped workloads):
///   SELECT [DISTINCT] <exprs|*> FROM t [alias] {, t | [INNER|LEFT] JOIN t ON e}
///   [WHERE e] [GROUP BY cols] [HAVING e] [ORDER BY cols [ASC|DESC]] [LIMIT n]
/// with AND/OR/NOT, comparisons, arithmetic, IN, BETWEEN, LIKE, IS NULL and
/// aggregate calls. Explicit JOIN ... ON is normalized into the FROM list
/// plus WHERE conjuncts.
StatusOr<SelectStatement> ParseSelect(std::string_view sql);

}  // namespace isum::sql

#endif  // ISUM_SQL_PARSER_H_
