#include "sql/printer.h"

#include <cmath>

#include "common/string_util.h"

namespace isum::sql {

namespace {

std::string FormatNumber(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%g", v);
}

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace

std::string ExpressionToSql(const Expression& expr) {
  switch (expr.kind()) {
    case ExpressionKind::kColumnRef: {
      const auto& e = static_cast<const ColumnRefExpression&>(expr);
      return e.table().empty() ? e.column() : e.table() + "." + e.column();
    }
    case ExpressionKind::kLiteral: {
      const auto& e = static_cast<const LiteralExpression&>(expr);
      switch (e.literal_kind()) {
        case LiteralKind::kNumber:
          return FormatNumber(e.number());
        case LiteralKind::kString:
          return QuoteString(e.string_value());
        case LiteralKind::kNull:
          return "NULL";
      }
      return "NULL";
    }
    case ExpressionKind::kBinary: {
      const auto& e = static_cast<const BinaryExpression&>(expr);
      return "(" + ExpressionToSql(e.lhs()) + " " + BinaryOpToString(e.op()) +
             " " + ExpressionToSql(e.rhs()) + ")";
    }
    case ExpressionKind::kUnaryNot: {
      const auto& e = static_cast<const UnaryNotExpression&>(expr);
      return "NOT (" + ExpressionToSql(e.child()) + ")";
    }
    case ExpressionKind::kIn: {
      const auto& e = static_cast<const InExpression&>(expr);
      std::string out = ExpressionToSql(e.operand());
      out += e.negated() ? " NOT IN (" : " IN (";
      for (size_t i = 0; i < e.values().size(); ++i) {
        if (i > 0) out += ", ";
        out += ExpressionToSql(*e.values()[i]);
      }
      out += ")";
      return out;
    }
    case ExpressionKind::kBetween: {
      const auto& e = static_cast<const BetweenExpression&>(expr);
      return ExpressionToSql(e.operand()) +
             (e.negated() ? " NOT BETWEEN " : " BETWEEN ") +
             ExpressionToSql(e.lo()) + " AND " + ExpressionToSql(e.hi());
    }
    case ExpressionKind::kLike: {
      const auto& e = static_cast<const LikeExpression&>(expr);
      return ExpressionToSql(e.operand()) +
             (e.negated() ? " NOT LIKE " : " LIKE ") + QuoteString(e.pattern());
    }
    case ExpressionKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpression&>(expr);
      return ExpressionToSql(e.operand()) +
             (e.negated() ? " IS NOT NULL" : " IS NULL");
    }
    case ExpressionKind::kStar:
      return "*";
    case ExpressionKind::kExists: {
      const auto& e = static_cast<const ExistsExpression&>(expr);
      return std::string(e.negated() ? "NOT " : "") + "EXISTS (" +
             StatementToSql(e.subquery()) + ")";
    }
    case ExpressionKind::kInSubquery: {
      const auto& e = static_cast<const InSubqueryExpression&>(expr);
      return ExpressionToSql(e.operand()) +
             (e.negated() ? " NOT IN (" : " IN (") +
             StatementToSql(e.subquery()) + ")";
    }
    case ExpressionKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpression&>(expr);
      std::string out = e.name() + "(";
      if (e.distinct()) out += "DISTINCT ";
      for (size_t i = 0; i < e.args().size(); ++i) {
        if (i > 0) out += ", ";
        out += ExpressionToSql(*e.args()[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

std::string StatementToSql(const SelectStatement& stmt) {
  std::string out = "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < stmt.select_list.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExpressionToSql(*stmt.select_list[i].expr);
    if (!stmt.select_list[i].alias.empty()) {
      out += " AS " + stmt.select_list[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += stmt.from[i].table_name;
    if (!stmt.from[i].alias.empty()) out += " " + stmt.from[i].alias;
  }
  if (stmt.where != nullptr) {
    out += " WHERE " + ExpressionToSql(*stmt.where);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExpressionToSql(*stmt.group_by[i]);
    }
  }
  if (stmt.having != nullptr) {
    out += " HAVING " + ExpressionToSql(*stmt.having);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExpressionToSql(*stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit.has_value()) {
    out += StrFormat(" LIMIT %lld", static_cast<long long>(*stmt.limit));
  }
  return out;
}

}  // namespace isum::sql
