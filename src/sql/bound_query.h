#ifndef ISUM_SQL_BOUND_QUERY_H_
#define ISUM_SQL_BOUND_QUERY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace isum::sql {

class Expression;  // ast.h; retained predicates reference bound AST nodes

/// Operator of a bound (per-column) filter predicate.
enum class PredicateOp {
  kEq,
  kNotEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
  kBetween,
  kLike,
  kIsNull,
  kComplex,  ///< single-column but not index-sargable (OR trees, arithmetic)
};

/// Returns a short spelling ("=", "IN", ...).
const char* PredicateOpToString(PredicateOp op);

/// A filter on one column with literals encoded as doubles (dates become
/// days-since-epoch, strings a stable hash). `selectivity` is estimated at
/// bind time from column statistics.
struct FilterPredicate {
  catalog::ColumnId column;
  PredicateOp op = PredicateOp::kEq;
  std::vector<double> values;
  double selectivity = 1.0;
  /// True if an index seek can evaluate this predicate (point/range/prefix).
  bool sargable = true;
  /// Original expression, retained for kComplex predicates so the execution
  /// substrate can evaluate them exactly (shared: BoundQuery stays copyable).
  std::shared_ptr<const Expression> expr;
};

/// An equi-join between columns of two different tables.
struct JoinPredicate {
  catalog::ColumnId left;
  catalog::ColumnId right;
  /// Estimated join selectivity: 1 / max(distinct(left), distinct(right)).
  double selectivity = 1.0;
};

/// A residual predicate spanning several columns or tables (e.g. an OR across
/// tables, or a comparison between columns). Costed, never indexed.
struct ComplexPredicate {
  std::vector<catalog::ColumnId> columns;
  double selectivity = 1.0;
  /// Original expression (see FilterPredicate::expr).
  std::shared_ptr<const Expression> expr;
};

/// How a table participates in the join (subquery flattening, §binder):
/// kSemi/kAnti tables came from [NOT] EXISTS / [NOT] IN subqueries and cap
/// rather than multiply the output cardinality.
enum class JoinSemantics { kInner, kSemi, kAnti };

/// One bound FROM-list entry.
struct BoundTableRef {
  catalog::TableId table = catalog::kInvalidTableId;
  std::string effective_name;  ///< alias if present, else table name
  JoinSemantics semantics = JoinSemantics::kInner;
};

/// Aggregate function kinds appearing in the select list.
enum class AggregateKind { kCount, kSum, kAvg, kMin, kMax };

/// One aggregate in the select list (argument column if a plain column).
struct AggregateRef {
  AggregateKind kind = AggregateKind::kCount;
  catalog::ColumnId argument;  ///< invalid for COUNT(*) or expression args
  bool distinct = false;
};

/// A fully resolved single-block query: everything the optimizer, the index
/// advisor and ISUM's featurization need, with all names resolved to
/// catalog ids and all literals encoded and selectivity-estimated.
struct BoundQuery {
  std::vector<BoundTableRef> tables;
  std::vector<FilterPredicate> filters;
  std::vector<JoinPredicate> joins;
  std::vector<ComplexPredicate> complex_predicates;

  std::vector<catalog::ColumnId> group_by_columns;
  /// (column, descending) pairs.
  std::vector<std::pair<catalog::ColumnId, bool>> order_by_columns;
  /// Plain columns projected by the select list (incl. aggregate arguments);
  /// drives covering-index analysis.
  std::vector<catalog::ColumnId> output_columns;
  std::vector<AggregateRef> aggregates;

  bool distinct = false;
  bool select_star = false;
  /// Selectivity of the HAVING clause applied to aggregated groups
  /// (1.0 when absent). HAVING predicates are never indexable; only their
  /// cardinality effect is modeled.
  double having_selectivity = 1.0;
  std::optional<int64_t> limit;

  uint64_t template_hash = 0;
  std::string sql_text;
  /// lower-cased effective table name (alias or table) -> table id; lets
  /// retained expressions be re-resolved (e.g. by the executor).
  std::unordered_map<std::string, catalog::TableId> alias_map;

  /// True if the query references table `t`.
  bool ReferencesTable(catalog::TableId t) const;

  /// Product of the selectivities of all filters on table `t` (complex
  /// single-table predicates included). 1.0 when unfiltered.
  double TableFilterSelectivity(catalog::TableId t) const;

  /// All distinct columns mentioned anywhere in the query.
  std::vector<catalog::ColumnId> ReferencedColumns() const;
};

}  // namespace isum::sql

#endif  // ISUM_SQL_BOUND_QUERY_H_
