#ifndef ISUM_SQL_BINDER_H_
#define ISUM_SQL_BINDER_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::sql {

/// Resolves names in a parsed statement against a catalog, classifies WHERE
/// conjuncts into sargable filters / equi-joins / complex residuals, encodes
/// literals, and estimates per-predicate selectivities from statistics.
class Binder {
 public:
  /// `stats` may outlive the binder; both pointers must be non-null.
  Binder(const catalog::Catalog* catalog, const stats::StatsManager* stats)
      : catalog_(catalog), stats_(stats) {}

  /// Binds `stmt`. `sql_text` is stored on the result for reporting.
  StatusOr<BoundQuery> Bind(const SelectStatement& stmt,
                            std::string sql_text = "") const;

 private:
  const catalog::Catalog* catalog_;
  const stats::StatsManager* stats_;
};

/// Encodes a literal to the numeric domain used by statistics: numbers pass
/// through, ISO dates (YYYY-MM-DD) become days since 1970-01-01, other
/// strings hash to a stable value.
double EncodeLiteral(const LiteralExpression& lit);

/// Days since 1970-01-01 for an ISO date string; nullopt if not a date.
std::optional<double> ParseIsoDate(const std::string& text);

}  // namespace isum::sql

#endif  // ISUM_SQL_BINDER_H_
