#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace isum::sql {

namespace {

/// Reserved words that terminate an alias-free expression context; a bare
/// identifier in alias position must not be one of these.
bool IsReservedKeyword(const std::string& word) {
  static constexpr const char* kReserved[] = {
      "select", "from",  "where", "group",  "by",    "having", "order",
      "limit",  "and",   "or",    "not",    "in",    "between", "like",
      "is",     "null",  "as",    "join",   "inner", "left",    "right",
      "outer",  "on",    "asc",   "desc",   "distinct", "exists"};
  const std::string lower = ToLower(word);
  for (const char* k : kReserved) {
    if (lower == k) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<SelectStatement> ParseStatement();
  StatusOr<SelectStatement> ParseSelectBody();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(std::string_view spelling) {
    if (Peek().Is(spelling)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view spelling) {
    if (Match(spelling)) return Status::OK();
    return Status::ParseError(StrFormat("expected '%s' at offset %zu, got '%s'",
                                        std::string(spelling).c_str(),
                                        Peek().offset, Peek().text.c_str()));
  }
  Status ExpectKeyword(std::string_view kw) { return ExpectSymbol(kw); }

  StatusOr<std::vector<TableRef>> ParseFromClause(
      std::vector<ExpressionPtr>* join_conjuncts);
  StatusOr<TableRef> ParseTableRef();
  StatusOr<ExpressionPtr> ParseExpression();
  StatusOr<ExpressionPtr> ParseOr();
  StatusOr<ExpressionPtr> ParseAnd();
  StatusOr<ExpressionPtr> ParseNot();
  StatusOr<ExpressionPtr> ParseExists(bool negated);
  StatusOr<ExpressionPtr> ParsePredicate();
  StatusOr<ExpressionPtr> ParseAdditive();
  StatusOr<ExpressionPtr> ParseMultiplicative();
  StatusOr<ExpressionPtr> ParseUnary();
  StatusOr<ExpressionPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
};

// Every recursive cycle in the grammar (parenthesized expressions, function
// arguments, subqueries) re-enters ParseExpression, so bounding it here
// bounds total parser recursion. 200 levels is far beyond any real workload
// query but shallow enough that the ~9 frames per level stay well inside the
// stack even with sanitizer-inflated frame sizes.
constexpr int kMaxExpressionDepth = 200;

StatusOr<ExpressionPtr> Parser::ParseExpression() {
  if (expr_depth_ >= kMaxExpressionDepth) {
    return Status::ParseError(
        StrFormat("expression nesting deeper than %d levels at offset %zu",
                  kMaxExpressionDepth, Peek().offset));
  }
  ++expr_depth_;
  StatusOr<ExpressionPtr> result = ParseOr();
  --expr_depth_;
  return result;
}

StatusOr<SelectStatement> Parser::ParseStatement() {
  ISUM_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelectBody());
  Match(";");
  if (!Peek().Is(TokenType::kEnd)) {
    return Status::ParseError(StrFormat("trailing input at offset %zu: '%s'",
                                        Peek().offset, Peek().text.c_str()));
  }
  return stmt;
}

StatusOr<SelectStatement> Parser::ParseSelectBody() {
  ISUM_RETURN_IF_ERROR(ExpectKeyword("select"));
  SelectStatement stmt;
  stmt.distinct = Match("distinct");

  // Select list.
  if (Peek().Is("*") &&
      !(Peek(1).Is(TokenType::kIdentifier) || Peek(1).Is("("))) {
    Advance();
    SelectItem item;
    item.expr = std::make_unique<StarExpression>();
    stmt.select_list.push_back(std::move(item));
  } else {
    for (;;) {
      SelectItem item;
      ISUM_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (Match("as")) {
        if (!Peek().Is(TokenType::kIdentifier)) {
          return Status::ParseError(
              StrFormat("expected alias after AS at offset %zu", Peek().offset));
        }
        item.alias = Advance().text;
      } else if (Peek().Is(TokenType::kIdentifier) &&
                 !IsReservedKeyword(Peek().text)) {
        item.alias = Advance().text;
      }
      stmt.select_list.push_back(std::move(item));
      if (!Match(",")) break;
    }
  }

  ISUM_RETURN_IF_ERROR(ExpectKeyword("from"));
  std::vector<ExpressionPtr> join_conjuncts;
  ISUM_ASSIGN_OR_RETURN(stmt.from, ParseFromClause(&join_conjuncts));

  if (Match("where")) {
    ISUM_ASSIGN_OR_RETURN(stmt.where, ParseExpression());
  }
  // Fold JOIN ... ON conjuncts into WHERE.
  for (auto& conjunct : join_conjuncts) {
    if (stmt.where == nullptr) {
      stmt.where = std::move(conjunct);
    } else {
      stmt.where = std::make_unique<BinaryExpression>(
          BinaryOp::kAnd, std::move(stmt.where), std::move(conjunct));
    }
  }

  if (Match("group")) {
    ISUM_RETURN_IF_ERROR(ExpectKeyword("by"));
    for (;;) {
      ISUM_ASSIGN_OR_RETURN(ExpressionPtr e, ParseExpression());
      stmt.group_by.push_back(std::move(e));
      if (!Match(",")) break;
    }
  }

  if (Match("having")) {
    ISUM_ASSIGN_OR_RETURN(stmt.having, ParseExpression());
  }

  if (Match("order")) {
    ISUM_RETURN_IF_ERROR(ExpectKeyword("by"));
    for (;;) {
      OrderByItem item;
      ISUM_ASSIGN_OR_RETURN(item.expr, ParseExpression());
      if (Match("desc")) {
        item.descending = true;
      } else {
        Match("asc");
      }
      stmt.order_by.push_back(std::move(item));
      if (!Match(",")) break;
    }
  }

  if (Match("limit")) {
    if (!Peek().Is(TokenType::kNumber)) {
      return Status::ParseError(
          StrFormat("expected number after LIMIT at offset %zu", Peek().offset));
    }
    stmt.limit = static_cast<int64_t>(Advance().number);
  }

  return stmt;
}

StatusOr<std::vector<TableRef>> Parser::ParseFromClause(
    std::vector<ExpressionPtr>* join_conjuncts) {
  std::vector<TableRef> refs;
  ISUM_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
  refs.push_back(std::move(first));
  for (;;) {
    if (Match(",")) {
      ISUM_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      refs.push_back(std::move(ref));
      continue;
    }
    bool is_join = false;
    if (Peek().Is("join")) {
      Advance();
      is_join = true;
    } else if (Peek().Is("inner") || Peek().Is("left") || Peek().Is("right")) {
      Advance();
      Match("outer");
      ISUM_RETURN_IF_ERROR(ExpectKeyword("join"));
      is_join = true;
    }
    if (!is_join) break;
    ISUM_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    refs.push_back(std::move(ref));
    if (Match("on")) {
      ISUM_ASSIGN_OR_RETURN(ExpressionPtr cond, ParseExpression());
      join_conjuncts->push_back(std::move(cond));
    }
  }
  return refs;
}

StatusOr<TableRef> Parser::ParseTableRef() {
  if (!Peek().Is(TokenType::kIdentifier)) {
    return Status::ParseError(
        StrFormat("expected table name at offset %zu", Peek().offset));
  }
  TableRef ref;
  ref.table_name = Advance().text;
  if (Match("as")) {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Status::ParseError(
          StrFormat("expected alias after AS at offset %zu", Peek().offset));
    }
    ref.alias = Advance().text;
  } else if (Peek().Is(TokenType::kIdentifier) &&
             !IsReservedKeyword(Peek().text)) {
    ref.alias = Advance().text;
  }
  return ref;
}

StatusOr<ExpressionPtr> Parser::ParseOr() {
  ISUM_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseAnd());
  while (Match("or")) {
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseAnd());
    lhs = std::make_unique<BinaryExpression>(BinaryOp::kOr, std::move(lhs),
                                             std::move(rhs));
  }
  return lhs;
}

StatusOr<ExpressionPtr> Parser::ParseAnd() {
  ISUM_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseNot());
  while (Match("and")) {
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseNot());
    lhs = std::make_unique<BinaryExpression>(BinaryOp::kAnd, std::move(lhs),
                                             std::move(rhs));
  }
  return lhs;
}

StatusOr<ExpressionPtr> Parser::ParseNot() {
  if (Match("not")) {
    if (Peek().Is("exists")) {
      return ParseExists(/*negated=*/true);
    }
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr child, ParseNot());
    return ExpressionPtr(std::make_unique<UnaryNotExpression>(std::move(child)));
  }
  return ParsePredicate();
}

StatusOr<ExpressionPtr> Parser::ParseExists(bool negated) {
  ISUM_RETURN_IF_ERROR(ExpectKeyword("exists"));
  ISUM_RETURN_IF_ERROR(ExpectSymbol("("));
  ISUM_ASSIGN_OR_RETURN(SelectStatement subquery, ParseSelectBody());
  ISUM_RETURN_IF_ERROR(ExpectSymbol(")"));
  return ExpressionPtr(std::make_unique<ExistsExpression>(
      std::make_unique<SelectStatement>(std::move(subquery)), negated));
}

StatusOr<ExpressionPtr> Parser::ParsePredicate() {
  if (Peek().Is("exists")) return ParseExists(/*negated=*/false);
  ISUM_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseAdditive());

  const bool negated = Match("not");

  if (Match("in")) {
    ISUM_RETURN_IF_ERROR(ExpectSymbol("("));
    if (Peek().Is("select")) {
      ISUM_ASSIGN_OR_RETURN(SelectStatement subquery, ParseSelectBody());
      ISUM_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExpressionPtr(std::make_unique<InSubqueryExpression>(
          std::move(lhs),
          std::make_unique<SelectStatement>(std::move(subquery)), negated));
    }
    std::vector<ExpressionPtr> values;
    for (;;) {
      ISUM_ASSIGN_OR_RETURN(ExpressionPtr v, ParseExpression());
      values.push_back(std::move(v));
      if (!Match(",")) break;
    }
    ISUM_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExpressionPtr(std::make_unique<InExpression>(
        std::move(lhs), std::move(values), negated));
  }
  if (Match("between")) {
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr lo, ParseAdditive());
    ISUM_RETURN_IF_ERROR(ExpectKeyword("and"));
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr hi, ParseAdditive());
    return ExpressionPtr(std::make_unique<BetweenExpression>(
        std::move(lhs), std::move(lo), std::move(hi), negated));
  }
  if (Match("like")) {
    if (!Peek().Is(TokenType::kString)) {
      return Status::ParseError(
          StrFormat("expected pattern after LIKE at offset %zu", Peek().offset));
    }
    std::string pattern = Advance().text;
    return ExpressionPtr(std::make_unique<LikeExpression>(
        std::move(lhs), std::move(pattern), negated));
  }
  if (negated) {
    return Status::ParseError(StrFormat(
        "expected IN/BETWEEN/LIKE after NOT at offset %zu", Peek().offset));
  }
  if (Match("is")) {
    const bool is_not = Match("not");
    ISUM_RETURN_IF_ERROR(ExpectKeyword("null"));
    return ExpressionPtr(
        std::make_unique<IsNullExpression>(std::move(lhs), is_not));
  }

  // Comparison?
  static constexpr std::pair<const char*, BinaryOp> kComparisons[] = {
      {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<>", BinaryOp::kNotEq},
      {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
  };
  for (const auto& [spelling, op] : kComparisons) {
    if (Match(spelling)) {
      ISUM_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseAdditive());
      return ExpressionPtr(std::make_unique<BinaryExpression>(
          op, std::move(lhs), std::move(rhs)));
    }
  }
  return lhs;
}

StatusOr<ExpressionPtr> Parser::ParseAdditive() {
  ISUM_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseMultiplicative());
  for (;;) {
    BinaryOp op;
    if (Match("+")) {
      op = BinaryOp::kPlus;
    } else if (Match("-")) {
      op = BinaryOp::kMinus;
    } else {
      break;
    }
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseMultiplicative());
    lhs = std::make_unique<BinaryExpression>(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExpressionPtr> Parser::ParseMultiplicative() {
  ISUM_ASSIGN_OR_RETURN(ExpressionPtr lhs, ParseUnary());
  for (;;) {
    BinaryOp op;
    if (Match("*")) {
      op = BinaryOp::kMul;
    } else if (Match("/")) {
      op = BinaryOp::kDiv;
    } else {
      break;
    }
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr rhs, ParseUnary());
    lhs = std::make_unique<BinaryExpression>(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<ExpressionPtr> Parser::ParseUnary() {
  if (Match("-")) {
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr child, ParseUnary());
    // Fold negation into numeric literals; otherwise 0 - child.
    if (child->kind() == ExpressionKind::kLiteral) {
      auto* lit = static_cast<LiteralExpression*>(child.get());
      if (lit->literal_kind() == LiteralKind::kNumber) {
        return ExpressionPtr(LiteralExpression::Number(-lit->number()));
      }
    }
    return ExpressionPtr(std::make_unique<BinaryExpression>(
        BinaryOp::kMinus, LiteralExpression::Number(0.0), std::move(child)));
  }
  return ParsePrimary();
}

StatusOr<ExpressionPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  if (tok.Is(TokenType::kNumber)) {
    Advance();
    return ExpressionPtr(LiteralExpression::Number(tok.number));
  }
  if (tok.Is(TokenType::kString)) {
    Advance();
    return ExpressionPtr(LiteralExpression::String(tok.text));
  }
  if (tok.Is("null")) {
    Advance();
    return ExpressionPtr(LiteralExpression::Null());
  }
  if (tok.Is("(")) {
    Advance();
    ISUM_ASSIGN_OR_RETURN(ExpressionPtr inner, ParseExpression());
    ISUM_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  if (tok.Is("*")) {
    Advance();
    return ExpressionPtr(std::make_unique<StarExpression>());
  }
  if (tok.Is(TokenType::kIdentifier)) {
    // Function call?
    if (Peek(1).Is("(")) {
      std::string name = ToUpper(Advance().text);
      Advance();  // '('
      bool distinct = Match("distinct");
      std::vector<ExpressionPtr> args;
      if (!Peek().Is(")")) {
        for (;;) {
          ISUM_ASSIGN_OR_RETURN(ExpressionPtr arg, ParseExpression());
          args.push_back(std::move(arg));
          if (!Match(",")) break;
        }
      }
      ISUM_RETURN_IF_ERROR(ExpectSymbol(")"));
      return ExpressionPtr(std::make_unique<FunctionCallExpression>(
          std::move(name), std::move(args), distinct));
    }
    // Column reference, possibly qualified.
    std::string first = Advance().text;
    if (Match(".")) {
      if (!Peek().Is(TokenType::kIdentifier)) {
        return Status::ParseError(StrFormat(
            "expected column after '%s.' at offset %zu", first.c_str(),
            Peek().offset));
      }
      std::string column = Advance().text;
      return ExpressionPtr(std::make_unique<ColumnRefExpression>(
          std::move(first), std::move(column)));
    }
    return ExpressionPtr(
        std::make_unique<ColumnRefExpression>("", std::move(first)));
  }
  return Status::ParseError(StrFormat("unexpected token '%s' at offset %zu",
                                      tok.text.c_str(), tok.offset));
}

}  // namespace

StatusOr<SelectStatement> ParseSelect(std::string_view sql) {
  ISUM_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace isum::sql
