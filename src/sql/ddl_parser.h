#ifndef ISUM_SQL_DDL_PARSER_H_
#define ISUM_SQL_DDL_PARSER_H_

#include <string_view>

#include "catalog/catalog.h"
#include "common/status.h"

namespace isum::sql {

/// Parses a schema script of CREATE TABLE statements into `catalog`:
///
///   CREATE TABLE orders (
///     o_orderkey INT PRIMARY KEY,
///     o_custkey  INT,
///     o_comment  VARCHAR(79)
///   ) WITH (ROWS = 15000000);
///
/// Supported types: INT/INTEGER, BIGINT, DOUBLE/FLOAT/REAL, DECIMAL/NUMERIC
/// (precision/scale accepted and ignored), VARCHAR(n)/CHAR(n)/TEXT, DATE,
/// BOOL/BOOLEAN. `PRIMARY KEY` marks a key column. The WITH (ROWS = n)
/// clause sets the table cardinality (default 1000). `--` comments allowed.
///
/// Returns the number of tables created.
StatusOr<int> ParseSchema(std::string_view ddl, catalog::Catalog* catalog);

}  // namespace isum::sql

#endif  // ISUM_SQL_DDL_PARSER_H_
