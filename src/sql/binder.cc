#include "sql/binder.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/string_util.h"
#include "sql/templatizer.h"

namespace isum::sql {

namespace {

// Default selectivities for predicates statistics cannot see through.
constexpr double kDefaultComplexSelectivity = 0.33;
constexpr double kLikePrefixSelectivity = 0.05;
constexpr double kLikeContainsSelectivity = 0.09;
constexpr double kMinSelectivity = 1e-9;

/// Name-resolution scope for one statement.
class Scope {
 public:
  Scope(const catalog::Catalog& catalog, const std::vector<TableRef>& from)
      : catalog_(catalog) {
    for (const TableRef& ref : from) {
      const catalog::Table* t = catalog.FindTable(ref.table_name);
      tables_.push_back(
          BoundTableRef{t == nullptr ? catalog::kInvalidTableId : t->id(),
                        ref.effective_name()});
      if (t != nullptr) by_name_[ToLower(ref.effective_name())] = t->id();
    }
  }

  Status Validate(const std::vector<TableRef>& from) const {
    for (size_t i = 0; i < tables_.size(); ++i) {
      if (tables_[i].table == catalog::kInvalidTableId) {
        return Status::BindError("unknown table '" + from[i].table_name + "'");
      }
    }
    return Status::OK();
  }

  const std::vector<BoundTableRef>& tables() const { return tables_; }
  const std::unordered_map<std::string, catalog::TableId>& names() const {
    return by_name_;
  }

  StatusOr<catalog::ColumnId> Resolve(const ColumnRefExpression& ref) const {
    if (!ref.table().empty()) {
      auto it = by_name_.find(ToLower(ref.table()));
      if (it == by_name_.end()) {
        return Status::BindError("unknown table or alias '" + ref.table() + "'");
      }
      const catalog::Table& t = catalog_.table(it->second);
      const int32_t ord = t.FindColumn(ref.column());
      if (ord < 0) {
        return Status::BindError("unknown column '" + ref.table() + "." +
                                 ref.column() + "'");
      }
      return catalog::ColumnId{it->second, ord};
    }
    catalog::ColumnId found{};
    for (const BoundTableRef& bt : tables_) {
      const catalog::Table& t = catalog_.table(bt.table);
      const int32_t ord = t.FindColumn(ref.column());
      if (ord >= 0) {
        if (found.valid()) {
          return Status::BindError("ambiguous column '" + ref.column() + "'");
        }
        found = catalog::ColumnId{bt.table, ord};
      }
    }
    if (!found.valid()) {
      return Status::BindError("unknown column '" + ref.column() + "'");
    }
    return found;
  }

 private:
  const catalog::Catalog& catalog_;
  std::vector<BoundTableRef> tables_;
  std::unordered_map<std::string, catalog::TableId> by_name_;
};

void FlattenConjuncts(const Expression& expr,
                      std::vector<const Expression*>* out) {
  if (expr.kind() == ExpressionKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpression&>(expr);
    if (bin.op() == BinaryOp::kAnd) {
      FlattenConjuncts(bin.lhs(), out);
      FlattenConjuncts(bin.rhs(), out);
      return;
    }
  }
  out->push_back(&expr);
}

// --- Subquery flattening: [NOT] EXISTS / [NOT] IN (SELECT ...) conjuncts
// become semi/anti-joined tables of the outer block, the way index advisors
// see them after view unnesting. ---

using SemanticsMap = std::unordered_map<std::string, JoinSemantics>;

Status FlattenSubqueries(SelectStatement* stmt, SemanticsMap* semantics,
                         int depth);

/// Merges `sub`'s (already flattened) tables and WHERE into `stmt`.
Status MergeSubquery(SelectStatement* stmt, SelectStatement sub, bool negated,
                     SemanticsMap* semantics,
                     std::vector<ExpressionPtr>* conjuncts) {
  if (!sub.group_by.empty() || sub.having != nullptr || sub.limit.has_value() ||
      sub.distinct) {
    return Status::Unimplemented(
        "cannot flatten subquery with GROUP BY/HAVING/LIMIT/DISTINCT");
  }
  // Alias-conflict check against the outer FROM list.
  std::unordered_set<std::string> outer_names;
  for (const TableRef& ref : stmt->from) {
    outer_names.insert(ToLower(ref.effective_name()));
  }
  const JoinSemantics mark =
      negated ? JoinSemantics::kAnti : JoinSemantics::kSemi;
  for (TableRef& ref : sub.from) {
    const std::string key = ToLower(ref.effective_name());
    if (outer_names.contains(key)) {
      return Status::Unimplemented("subquery table '" + ref.effective_name() +
                                   "' collides with an outer table; alias it");
    }
    // Keep an existing (nested) mark; anti dominates.
    auto it = semantics->find(key);
    if (it == semantics->end() || mark == JoinSemantics::kAnti) {
      (*semantics)[key] = mark;
    }
    stmt->from.push_back(ref);
  }
  if (sub.where != nullptr) conjuncts->push_back(std::move(sub.where));
  return Status::OK();
}

Status FlattenSubqueries(SelectStatement* stmt, SemanticsMap* semantics,
                         int depth) {
  if (depth > 8) return Status::Unimplemented("subquery nesting too deep");
  if (stmt->where == nullptr) return Status::OK();

  std::vector<const Expression*> conjuncts;
  FlattenConjuncts(*stmt->where, &conjuncts);
  bool any_subquery = false;
  for (const Expression* c : conjuncts) {
    if (c->kind() == ExpressionKind::kExists ||
        c->kind() == ExpressionKind::kInSubquery) {
      any_subquery = true;
      break;
    }
  }
  if (!any_subquery) return Status::OK();

  std::vector<ExpressionPtr> rebuilt;
  for (const Expression* c : conjuncts) {
    switch (c->kind()) {
      case ExpressionKind::kExists: {
        const auto& e = static_cast<const ExistsExpression&>(*c);
        SelectStatement sub = e.subquery().Clone();
        ISUM_RETURN_IF_ERROR(FlattenSubqueries(&sub, semantics, depth + 1));
        ISUM_RETURN_IF_ERROR(
            MergeSubquery(stmt, std::move(sub), e.negated(), semantics,
                          &rebuilt));
        break;
      }
      case ExpressionKind::kInSubquery: {
        const auto& e = static_cast<const InSubqueryExpression&>(*c);
        SelectStatement sub = e.subquery().Clone();
        ISUM_RETURN_IF_ERROR(FlattenSubqueries(&sub, semantics, depth + 1));
        if (sub.select_list.size() != 1 ||
            sub.select_list[0].expr->kind() == ExpressionKind::kStar ||
            sub.select_list[0].expr->kind() == ExpressionKind::kFunctionCall) {
          return Status::Unimplemented(
              "IN subquery must select exactly one plain expression");
        }
        // operand = subquery's select item becomes the (semi) join predicate.
        rebuilt.push_back(std::make_unique<BinaryExpression>(
            BinaryOp::kEq, e.operand().Clone(),
            sub.select_list[0].expr->Clone()));
        ISUM_RETURN_IF_ERROR(
            MergeSubquery(stmt, std::move(sub), e.negated(), semantics,
                          &rebuilt));
        break;
      }
      default:
        rebuilt.push_back(c->Clone());
        break;
    }
  }
  // Rebuild the AND chain.
  ExpressionPtr where;
  for (ExpressionPtr& c : rebuilt) {
    where = where == nullptr
                ? std::move(c)
                : std::make_unique<BinaryExpression>(
                      BinaryOp::kAnd, std::move(where), std::move(c));
  }
  stmt->where = std::move(where);
  return Status::OK();
}

/// Folds a literal-only expression tree to a numeric constant.
std::optional<double> ConstantFold(const Expression& expr) {
  switch (expr.kind()) {
    case ExpressionKind::kLiteral:
      return EncodeLiteral(static_cast<const LiteralExpression&>(expr));
    case ExpressionKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpression&>(expr);
      auto l = ConstantFold(bin.lhs());
      auto r = ConstantFold(bin.rhs());
      if (!l || !r) return std::nullopt;
      switch (bin.op()) {
        case BinaryOp::kPlus:
          return *l + *r;
        case BinaryOp::kMinus:
          return *l - *r;
        case BinaryOp::kMul:
          return *l * *r;
        case BinaryOp::kDiv:
          return *r == 0.0 ? std::nullopt : std::optional<double>(*l / *r);
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

/// Collects all column ids referenced anywhere in `expr`.
Status CollectColumns(const Expression& expr, const Scope& scope,
                      std::vector<catalog::ColumnId>* out) {
  switch (expr.kind()) {
    case ExpressionKind::kColumnRef: {
      ISUM_ASSIGN_OR_RETURN(
          catalog::ColumnId id,
          scope.Resolve(static_cast<const ColumnRefExpression&>(expr)));
      out->push_back(id);
      return Status::OK();
    }
    case ExpressionKind::kLiteral:
    case ExpressionKind::kStar:
      return Status::OK();
    case ExpressionKind::kBinary: {
      const auto& e = static_cast<const BinaryExpression&>(expr);
      ISUM_RETURN_IF_ERROR(CollectColumns(e.lhs(), scope, out));
      return CollectColumns(e.rhs(), scope, out);
    }
    case ExpressionKind::kUnaryNot:
      return CollectColumns(
          static_cast<const UnaryNotExpression&>(expr).child(), scope, out);
    case ExpressionKind::kIn: {
      const auto& e = static_cast<const InExpression&>(expr);
      ISUM_RETURN_IF_ERROR(CollectColumns(e.operand(), scope, out));
      for (const auto& v : e.values()) {
        ISUM_RETURN_IF_ERROR(CollectColumns(*v, scope, out));
      }
      return Status::OK();
    }
    case ExpressionKind::kBetween: {
      const auto& e = static_cast<const BetweenExpression&>(expr);
      ISUM_RETURN_IF_ERROR(CollectColumns(e.operand(), scope, out));
      ISUM_RETURN_IF_ERROR(CollectColumns(e.lo(), scope, out));
      return CollectColumns(e.hi(), scope, out);
    }
    case ExpressionKind::kLike:
      return CollectColumns(static_cast<const LikeExpression&>(expr).operand(),
                            scope, out);
    case ExpressionKind::kIsNull:
      return CollectColumns(
          static_cast<const IsNullExpression&>(expr).operand(), scope, out);
    case ExpressionKind::kFunctionCall: {
      const auto& e = static_cast<const FunctionCallExpression&>(expr);
      for (const auto& a : e.args()) {
        ISUM_RETURN_IF_ERROR(CollectColumns(*a, scope, out));
      }
      return Status::OK();
    }
    case ExpressionKind::kExists:
    case ExpressionKind::kInSubquery:
      // Unflattened subqueries (inside OR branches) stay opaque: their
      // columns belong to a scope we did not merge.
      return Status::OK();
  }
  return Status::OK();
}

const ColumnRefExpression* AsColumnRef(const Expression& expr) {
  return expr.kind() == ExpressionKind::kColumnRef
             ? static_cast<const ColumnRefExpression*>(&expr)
             : nullptr;
}

bool LikePatternHasSargablePrefix(const std::string& pattern) {
  return !pattern.empty() && pattern[0] != '%' && pattern[0] != '_';
}

/// Recursive selectivity estimator for arbitrary boolean expressions
/// (used for residual/complex predicates).
double EstimateBooleanSelectivity(const Expression& expr, const Scope& scope,
                                  const stats::StatsManager& stats) {
  switch (expr.kind()) {
    case ExpressionKind::kBinary: {
      const auto& e = static_cast<const BinaryExpression&>(expr);
      if (e.op() == BinaryOp::kAnd) {
        return EstimateBooleanSelectivity(e.lhs(), scope, stats) *
               EstimateBooleanSelectivity(e.rhs(), scope, stats);
      }
      if (e.op() == BinaryOp::kOr) {
        const double a = EstimateBooleanSelectivity(e.lhs(), scope, stats);
        const double b = EstimateBooleanSelectivity(e.rhs(), scope, stats);
        return std::clamp(a + b - a * b, 0.0, 1.0);
      }
      if (IsComparison(e.op())) {
        const ColumnRefExpression* lcol = AsColumnRef(e.lhs());
        const ColumnRefExpression* rcol = AsColumnRef(e.rhs());
        if (lcol != nullptr && rcol != nullptr) {
          auto l = scope.Resolve(*lcol);
          auto r = scope.Resolve(*rcol);
          if (l.ok() && r.ok()) {
            const double d = std::max(stats.DistinctCount(l.value()),
                                      stats.DistinctCount(r.value()));
            return e.op() == BinaryOp::kEq ? 1.0 / std::max(1.0, d)
                                           : kDefaultComplexSelectivity;
          }
          return kDefaultComplexSelectivity;
        }
        const ColumnRefExpression* col = lcol != nullptr ? lcol : rcol;
        const Expression& other = lcol != nullptr ? e.rhs() : e.lhs();
        if (col != nullptr) {
          auto id = scope.Resolve(*col);
          auto value = ConstantFold(other);
          if (id.ok() && value.has_value()) {
            switch (e.op()) {
              case BinaryOp::kEq:
                return stats.SelectivityEquals(id.value(), *value);
              case BinaryOp::kNotEq:
                return 1.0 - stats.SelectivityEquals(id.value(), *value);
              case BinaryOp::kLt:
              case BinaryOp::kLe:
                return stats.SelectivityRange(id.value(), std::nullopt, *value);
              case BinaryOp::kGt:
              case BinaryOp::kGe:
                return stats.SelectivityRange(id.value(), *value, std::nullopt);
              default:
                break;
            }
          }
        }
        return kDefaultComplexSelectivity;
      }
      return kDefaultComplexSelectivity;
    }
    case ExpressionKind::kUnaryNot:
      return std::clamp(
          1.0 - EstimateBooleanSelectivity(
                    static_cast<const UnaryNotExpression&>(expr).child(), scope,
                    stats),
          0.0, 1.0);
    case ExpressionKind::kIn: {
      const auto& e = static_cast<const InExpression&>(expr);
      const ColumnRefExpression* col = AsColumnRef(e.operand());
      if (col != nullptr) {
        auto id = scope.Resolve(*col);
        if (id.ok()) {
          double sel = 0.0;
          for (const auto& v : e.values()) {
            auto value = ConstantFold(*v);
            sel += value.has_value()
                       ? stats.SelectivityEquals(id.value(), *value)
                       : stats.Density(id.value());
          }
          sel = std::clamp(sel, 0.0, 1.0);
          return e.negated() ? 1.0 - sel : sel;
        }
      }
      return kDefaultComplexSelectivity;
    }
    case ExpressionKind::kBetween: {
      const auto& e = static_cast<const BetweenExpression&>(expr);
      const ColumnRefExpression* col = AsColumnRef(e.operand());
      if (col != nullptr) {
        auto id = scope.Resolve(*col);
        auto lo = ConstantFold(e.lo());
        auto hi = ConstantFold(e.hi());
        if (id.ok() && lo.has_value() && hi.has_value()) {
          const double sel = stats.SelectivityRange(id.value(), *lo, *hi);
          return e.negated() ? 1.0 - sel : sel;
        }
      }
      return kDefaultComplexSelectivity;
    }
    case ExpressionKind::kLike: {
      const auto& e = static_cast<const LikeExpression&>(expr);
      const double sel = LikePatternHasSargablePrefix(e.pattern())
                             ? kLikePrefixSelectivity
                             : kLikeContainsSelectivity;
      return e.negated() ? 1.0 - sel : sel;
    }
    case ExpressionKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpression&>(expr);
      const ColumnRefExpression* col = AsColumnRef(e.operand());
      double nf = 0.01;
      if (col != nullptr) {
        auto id = scope.Resolve(*col);
        if (id.ok()) nf = std::max(stats.GetStats(id.value()).null_fraction, 0.001);
      }
      return e.negated() ? 1.0 - nf : nf;
    }
    default:
      return kDefaultComplexSelectivity;
  }
}

}  // namespace

const char* PredicateOpToString(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq:
      return "=";
    case PredicateOp::kNotEq:
      return "<>";
    case PredicateOp::kLt:
      return "<";
    case PredicateOp::kLe:
      return "<=";
    case PredicateOp::kGt:
      return ">";
    case PredicateOp::kGe:
      return ">=";
    case PredicateOp::kIn:
      return "IN";
    case PredicateOp::kBetween:
      return "BETWEEN";
    case PredicateOp::kLike:
      return "LIKE";
    case PredicateOp::kIsNull:
      return "IS NULL";
    case PredicateOp::kComplex:
      return "<complex>";
  }
  return "?";
}

std::optional<double> ParseIsoDate(const std::string& text) {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return std::nullopt;
  for (size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u}) {
    if (!std::isdigit(static_cast<unsigned char>(text[i]))) return std::nullopt;
  }
  const int y = std::stoi(text.substr(0, 4));
  const unsigned m = static_cast<unsigned>(std::stoi(text.substr(5, 2)));
  const unsigned d = static_cast<unsigned>(std::stoi(text.substr(8, 2)));
  if (m < 1 || m > 12 || d < 1 || d > 31) return std::nullopt;
  // Howard Hinnant's days_from_civil.
  const int yy = y - (m <= 2);
  const int era = (yy >= 0 ? yy : yy - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(yy - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<double>(era * 146097 + static_cast<int>(doe) - 719468);
}

double EncodeLiteral(const LiteralExpression& lit) {
  switch (lit.literal_kind()) {
    case LiteralKind::kNumber:
      return lit.number();
    case LiteralKind::kString: {
      auto date = ParseIsoDate(lit.string_value());
      if (date.has_value()) return *date;
      // Stable hash folded into a modest positive range so string literals
      // are usable with density-based equality estimation.
      return static_cast<double>(HashBytes(lit.string_value()) % 1000003ull);
    }
    case LiteralKind::kNull:
      return 0.0;
  }
  return 0.0;
}

StatusOr<BoundQuery> Binder::Bind(const SelectStatement& original,
                                  std::string sql_text) const {
  BoundQuery out;
  out.sql_text = std::move(sql_text);
  // Template identity reflects the SQL as written, pre-flattening.
  out.template_hash = TemplateHash(original);

  // Flatten [NOT] EXISTS / [NOT] IN subqueries into semi/anti joins.
  SelectStatement flattened = original.Clone();
  SemanticsMap semantics;
  ISUM_RETURN_IF_ERROR(FlattenSubqueries(&flattened, &semantics, 0));
  const SelectStatement& stmt = flattened;

  out.distinct = stmt.distinct;
  out.limit = stmt.limit;

  Scope scope(*catalog_, stmt.from);
  ISUM_RETURN_IF_ERROR(scope.Validate(stmt.from));
  out.tables = scope.tables();
  out.alias_map = scope.names();
  for (BoundTableRef& ref : out.tables) {
    auto it = semantics.find(ToLower(ref.effective_name));
    if (it != semantics.end()) ref.semantics = it->second;
  }

  // --- WHERE clause: classify conjuncts. ---
  std::vector<const Expression*> conjuncts;
  if (stmt.where != nullptr) FlattenConjuncts(*stmt.where, &conjuncts);

  for (const Expression* conjunct : conjuncts) {
    // 1. Equi-join between two tables?
    if (conjunct->kind() == ExpressionKind::kBinary) {
      const auto& bin = static_cast<const BinaryExpression&>(*conjunct);
      if (bin.op() == BinaryOp::kEq) {
        const ColumnRefExpression* l = AsColumnRef(bin.lhs());
        const ColumnRefExpression* r = AsColumnRef(bin.rhs());
        if (l != nullptr && r != nullptr) {
          ISUM_ASSIGN_OR_RETURN(catalog::ColumnId lid, scope.Resolve(*l));
          ISUM_ASSIGN_OR_RETURN(catalog::ColumnId rid, scope.Resolve(*r));
          if (lid.table != rid.table) {
            JoinPredicate jp;
            jp.left = lid;
            jp.right = rid;
            jp.selectivity =
                1.0 / std::max({1.0, stats_->DistinctCount(lid),
                                stats_->DistinctCount(rid)});
            out.joins.push_back(jp);
            continue;
          }
        }
      }
    }

    // 2. Sargable single-column predicate?
    bool handled = false;
    switch (conjunct->kind()) {
      case ExpressionKind::kBinary: {
        const auto& bin = static_cast<const BinaryExpression&>(*conjunct);
        if (!IsComparison(bin.op())) break;
        const ColumnRefExpression* lcol = AsColumnRef(bin.lhs());
        const ColumnRefExpression* rcol = AsColumnRef(bin.rhs());
        if ((lcol != nullptr) == (rcol != nullptr)) break;  // need exactly one
        const ColumnRefExpression* col = lcol != nullptr ? lcol : rcol;
        const Expression& other = lcol != nullptr ? bin.lhs() : bin.rhs();
        (void)other;
        auto value = ConstantFold(lcol != nullptr ? bin.rhs() : bin.lhs());
        if (!value.has_value()) break;
        ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
        FilterPredicate fp;
        fp.column = id;
        fp.values = {*value};
        // Normalize so the column is on the left.
        BinaryOp op = bin.op();
        if (rcol != nullptr) {
          switch (op) {
            case BinaryOp::kLt: op = BinaryOp::kGt; break;
            case BinaryOp::kLe: op = BinaryOp::kGe; break;
            case BinaryOp::kGt: op = BinaryOp::kLt; break;
            case BinaryOp::kGe: op = BinaryOp::kLe; break;
            default: break;
          }
        }
        switch (op) {
          case BinaryOp::kEq:
            fp.op = PredicateOp::kEq;
            fp.selectivity = stats_->SelectivityEquals(id, *value);
            break;
          case BinaryOp::kNotEq:
            fp.op = PredicateOp::kNotEq;
            fp.selectivity = 1.0 - stats_->SelectivityEquals(id, *value);
            fp.sargable = false;
            break;
          case BinaryOp::kLt:
          case BinaryOp::kLe:
            fp.op = op == BinaryOp::kLt ? PredicateOp::kLt : PredicateOp::kLe;
            fp.selectivity = stats_->SelectivityRange(id, std::nullopt, *value);
            break;
          case BinaryOp::kGt:
          case BinaryOp::kGe:
            fp.op = op == BinaryOp::kGt ? PredicateOp::kGt : PredicateOp::kGe;
            fp.selectivity = stats_->SelectivityRange(id, *value, std::nullopt);
            break;
          default:
            break;
        }
        fp.selectivity = std::clamp(fp.selectivity, kMinSelectivity, 1.0);
        out.filters.push_back(std::move(fp));
        handled = true;
        break;
      }
      case ExpressionKind::kIn: {
        const auto& in = static_cast<const InExpression&>(*conjunct);
        const ColumnRefExpression* col = AsColumnRef(in.operand());
        if (col == nullptr) break;
        ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
        FilterPredicate fp;
        fp.column = id;
        fp.op = PredicateOp::kIn;
        double sel = 0.0;
        for (const auto& v : in.values()) {
          auto value = ConstantFold(*v);
          if (value.has_value()) {
            fp.values.push_back(*value);
            sel += stats_->SelectivityEquals(id, *value);
          } else {
            sel += stats_->Density(id);
          }
        }
        fp.selectivity = std::clamp(sel, kMinSelectivity, 1.0);
        if (in.negated()) {
          fp.selectivity = std::clamp(1.0 - fp.selectivity, kMinSelectivity, 1.0);
          fp.sargable = false;
          fp.op = PredicateOp::kComplex;
        }
        out.filters.push_back(std::move(fp));
        handled = true;
        break;
      }
      case ExpressionKind::kBetween: {
        const auto& bt = static_cast<const BetweenExpression&>(*conjunct);
        const ColumnRefExpression* col = AsColumnRef(bt.operand());
        if (col == nullptr) break;
        auto lo = ConstantFold(bt.lo());
        auto hi = ConstantFold(bt.hi());
        if (!lo.has_value() || !hi.has_value()) break;
        ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
        FilterPredicate fp;
        fp.column = id;
        fp.op = PredicateOp::kBetween;
        fp.values = {*lo, *hi};
        fp.selectivity =
            std::clamp(stats_->SelectivityRange(id, *lo, *hi), kMinSelectivity, 1.0);
        if (bt.negated()) {
          fp.selectivity = std::clamp(1.0 - fp.selectivity, kMinSelectivity, 1.0);
          fp.sargable = false;
          fp.op = PredicateOp::kComplex;
        }
        out.filters.push_back(std::move(fp));
        handled = true;
        break;
      }
      case ExpressionKind::kLike: {
        const auto& lk = static_cast<const LikeExpression&>(*conjunct);
        const ColumnRefExpression* col = AsColumnRef(lk.operand());
        if (col == nullptr) break;
        ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
        FilterPredicate fp;
        fp.column = id;
        fp.op = PredicateOp::kLike;
        const bool prefix = LikePatternHasSargablePrefix(lk.pattern());
        fp.selectivity = prefix ? kLikePrefixSelectivity : kLikeContainsSelectivity;
        fp.sargable = prefix && !lk.negated();
        if (lk.negated()) fp.selectivity = 1.0 - fp.selectivity;
        out.filters.push_back(std::move(fp));
        handled = true;
        break;
      }
      case ExpressionKind::kIsNull: {
        const auto& isn = static_cast<const IsNullExpression&>(*conjunct);
        const ColumnRefExpression* col = AsColumnRef(isn.operand());
        if (col == nullptr) break;
        ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
        FilterPredicate fp;
        fp.column = id;
        fp.op = PredicateOp::kIsNull;
        const double nf = std::max(stats_->GetStats(id).null_fraction, 0.001);
        fp.selectivity = isn.negated() ? 1.0 - nf : nf;
        fp.sargable = !isn.negated();
        out.filters.push_back(std::move(fp));
        handled = true;
        break;
      }
      default:
        break;
    }
    if (handled) continue;

    // 3. Residual predicate.
    std::vector<catalog::ColumnId> cols;
    ISUM_RETURN_IF_ERROR(CollectColumns(*conjunct, scope, &cols));
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    const double sel = std::clamp(
        EstimateBooleanSelectivity(*conjunct, scope, *stats_), kMinSelectivity, 1.0);
    if (cols.size() == 1) {
      FilterPredicate fp;
      fp.column = cols[0];
      fp.op = PredicateOp::kComplex;
      fp.selectivity = sel;
      fp.sargable = false;
      fp.expr = std::shared_ptr<const Expression>(conjunct->Clone());
      out.filters.push_back(std::move(fp));
    } else {
      ComplexPredicate cp;
      cp.columns = std::move(cols);
      cp.selectivity = sel;
      cp.expr = std::shared_ptr<const Expression>(conjunct->Clone());
      out.complex_predicates.push_back(std::move(cp));
    }
  }

  // --- Select list: outputs, aggregates, aliases. ---
  std::unordered_map<std::string, const Expression*> select_aliases;
  for (const SelectItem& item : stmt.select_list) {
    if (!item.alias.empty()) {
      select_aliases[ToLower(item.alias)] = item.expr.get();
    }
    if (item.expr->kind() == ExpressionKind::kStar) {
      out.select_star = true;
      continue;
    }
    if (item.expr->kind() == ExpressionKind::kFunctionCall) {
      const auto& fn = static_cast<const FunctionCallExpression&>(*item.expr);
      AggregateRef agg;
      if (fn.name() == "COUNT") agg.kind = AggregateKind::kCount;
      else if (fn.name() == "SUM") agg.kind = AggregateKind::kSum;
      else if (fn.name() == "AVG") agg.kind = AggregateKind::kAvg;
      else if (fn.name() == "MIN") agg.kind = AggregateKind::kMin;
      else if (fn.name() == "MAX") agg.kind = AggregateKind::kMax;
      agg.distinct = fn.distinct();
      if (fn.args().size() == 1) {
        const ColumnRefExpression* col = AsColumnRef(*fn.args()[0]);
        if (col != nullptr) {
          ISUM_ASSIGN_OR_RETURN(agg.argument, scope.Resolve(*col));
        }
      }
      out.aggregates.push_back(agg);
      // Argument columns still count as outputs (covering analysis).
      ISUM_RETURN_IF_ERROR(
          CollectColumns(*item.expr, scope, &out.output_columns));
      continue;
    }
    ISUM_RETURN_IF_ERROR(CollectColumns(*item.expr, scope, &out.output_columns));
  }

  // --- HAVING: cardinality effect only (post-aggregation, not indexable).
  if (stmt.having != nullptr) {
    out.having_selectivity = std::clamp(
        EstimateBooleanSelectivity(*stmt.having, scope, *stats_), 0.01, 1.0);
  }

  // --- GROUP BY. ---
  for (const auto& g : stmt.group_by) {
    const ColumnRefExpression* col = AsColumnRef(*g);
    if (col != nullptr) {
      ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*col));
      out.group_by_columns.push_back(id);
    } else {
      ISUM_RETURN_IF_ERROR(CollectColumns(*g, scope, &out.group_by_columns));
    }
  }

  // --- ORDER BY (select-alias references resolve through the alias map;
  // aliases of aggregate expressions are not indexable and are skipped). ---
  for (const auto& o : stmt.order_by) {
    const ColumnRefExpression* col = AsColumnRef(*o.expr);
    if (col == nullptr) continue;
    if (col->table().empty()) {
      auto it = select_aliases.find(ToLower(col->column()));
      if (it != select_aliases.end()) {
        const ColumnRefExpression* aliased = AsColumnRef(*it->second);
        if (aliased != nullptr) {
          ISUM_ASSIGN_OR_RETURN(catalog::ColumnId id, scope.Resolve(*aliased));
          out.order_by_columns.emplace_back(id, o.descending);
        }
        continue;
      }
    }
    auto resolved = scope.Resolve(*col);
    if (resolved.ok()) {
      out.order_by_columns.emplace_back(resolved.value(), o.descending);
    }
  }

  // Dedup output columns.
  std::sort(out.output_columns.begin(), out.output_columns.end());
  out.output_columns.erase(
      std::unique(out.output_columns.begin(), out.output_columns.end()),
      out.output_columns.end());

  return out;
}

bool BoundQuery::ReferencesTable(catalog::TableId t) const {
  for (const BoundTableRef& ref : tables) {
    if (ref.table == t) return true;
  }
  return false;
}

double BoundQuery::TableFilterSelectivity(catalog::TableId t) const {
  double sel = 1.0;
  for (const FilterPredicate& f : filters) {
    if (f.column.table == t) sel *= f.selectivity;
  }
  return std::clamp(sel, 1e-12, 1.0);
}

std::vector<catalog::ColumnId> BoundQuery::ReferencedColumns() const {
  std::set<catalog::ColumnId> all;
  for (const auto& f : filters) all.insert(f.column);
  for (const auto& j : joins) {
    all.insert(j.left);
    all.insert(j.right);
  }
  for (const auto& c : complex_predicates) {
    all.insert(c.columns.begin(), c.columns.end());
  }
  for (const auto& g : group_by_columns) all.insert(g);
  for (const auto& [col, desc] : order_by_columns) all.insert(col);
  for (const auto& o : output_columns) all.insert(o);
  return {all.begin(), all.end()};
}

}  // namespace isum::sql
