#ifndef ISUM_SQL_PRINTER_H_
#define ISUM_SQL_PRINTER_H_

#include <string>

#include "sql/ast.h"

namespace isum::sql {

/// Renders an expression back to SQL text.
std::string ExpressionToSql(const Expression& expr);

/// Renders a statement back to SQL text. Round-trips through ParseSelect up
/// to whitespace and literal formatting (verified by tests).
std::string StatementToSql(const SelectStatement& stmt);

}  // namespace isum::sql

#endif  // ISUM_SQL_PRINTER_H_
