#include "advisor/advisor.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "advisor/enumerator.h"
#include "common/deadline.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

namespace {

/// The run's effective budget: the explicit TimeBudget (or the ambient one),
/// tightened by the legacy time_budget_seconds knob when that expires first.
TimeBudget EffectiveTuningBudget(const TuningOptions& options) {
  TimeBudget budget = EffectiveBudget(options.budget);
  if (options.time_budget_seconds > 0.0) {
    const Deadline legacy = Deadline::After(options.time_budget_seconds);
    if (budget.deadline().unlimited() ||
        legacy.nanos() < budget.deadline().nanos()) {
      budget = TimeBudget(legacy, budget.token());
    }
  }
  return budget;
}

/// Budget for candidate selection: half the remaining time (DTA's split, so
/// enumeration always sees some candidates), same cancellation token.
TimeBudget SelectionBudget(const TimeBudget& full) {
  if (full.deadline().unlimited()) return full;
  const uint64_t remaining = full.deadline().remaining_nanos();
  return TimeBudget(Deadline::AtNanos(MonotonicNanos() + remaining / 2),
                    full.token());
}

}  // namespace

TuningResult DtaStyleAdvisor::Tune(const std::vector<WeightedQuery>& queries,
                                   const TuningOptions& options) const {
  ISUM_TRACE_SPAN("advisor/tune");
  static obs::Counter* const tuning_runs =
      obs::MetricsRegistry::Global().GetCounter("advisor.tuning_runs");
  tuning_runs->Add(1);
  const uint64_t start_nanos = MonotonicNanos();
  TuningResult result;
  if (queries.empty()) return result;

  engine::WhatIfOptimizer what_if(cost_model_);
  const catalog::Catalog& catalog = cost_model_->catalog();

  const TimeBudget budget = EffectiveTuningBudget(options);
  const TimeBudget selection_budget = SelectionBudget(budget);

  // --- Candidate selection: per query, keep the individually improving
  // candidates (top max_candidates_per_query by improvement). Queries are
  // independent, so this parallelizes; the pool merge below stays in query
  // order so results are identical for any thread count. A query whose base
  // costing fails (budget expiry or a persistent injected fault) contributes
  // no candidates; a single candidate whose costing fails is skipped. ---
  std::vector<std::vector<engine::Index>> kept_per_query(queries.size());
  std::atomic<uint64_t> explored{0};
  auto select_for = [&](size_t q) {
    if (selection_budget.Expired()) {
      return;  // anytime: later queries contribute no candidates
    }
    const WeightedQuery& wq = queries[q];
    const StatusOr<double> base_or =
        what_if.TryCost(*wq.query, engine::Configuration(), selection_budget);
    if (!base_or.ok()) return;
    const double base = *base_or;
    std::vector<engine::Index> candidates =
        GenerateCandidates(*wq.query, cost_model_->stats(),
                           options.candidate_options, selection_budget);
    std::vector<std::pair<double, size_t>> improving;
    for (size_t i = 0; i < candidates.size(); ++i) {
      engine::Configuration single;
      single.Add(candidates[i]);
      explored.fetch_add(1, std::memory_order_relaxed);
      const StatusOr<double> cost =
          what_if.TryCost(*wq.query, single, selection_budget);
      if (!cost.ok()) {
        if (cost.status().code() == StatusCode::kUnavailable) continue;
        break;  // budget expired: keep what this query has so far
      }
      const double improvement = base - *cost;
      if (improvement > options.min_improvement * base &&
          improvement > 0.0) {
        improving.emplace_back(improvement, i);
      }
    }
    std::sort(improving.begin(), improving.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const size_t keep = std::min<size_t>(
        improving.size(), static_cast<size_t>(options.max_candidates_per_query));
    for (size_t r = 0; r < keep; ++r) {
      kept_per_query[q].push_back(candidates[improving[r].second]);
    }
  };
  {
    ISUM_TRACE_SPAN("advisor/candidate-gen");
    if (options.num_threads > 1) {
      ThreadPool(static_cast<size_t>(options.num_threads))
          .ParallelFor(queries.size(), select_for, budget.token());
    } else {
      for (size_t q = 0; q < queries.size(); ++q) select_for(q);
    }
  }
  result.configurations_explored += explored.load();

  std::vector<engine::Index> pool;
  std::unordered_set<engine::Index> pool_set;
  for (const auto& kept : kept_per_query) {
    for (const engine::Index& idx : kept) {
      if (pool_set.insert(idx).second) pool.push_back(idx);
    }
  }

  // --- Storage budget. ---
  uint64_t storage_budget = options.storage_budget_bytes;
  if (storage_budget == 0 && options.storage_budget_multiplier > 0.0) {
    storage_budget =
        static_cast<uint64_t>(options.storage_budget_multiplier *
                              static_cast<double>(catalog.total_data_bytes()));
  }

  // --- Greedy enumeration. ---
  EnumerationResult enumerated = GreedyEnumerate(
      what_if, queries, pool, options.max_indexes, storage_budget, catalog,
      budget, options.num_threads, options.checkpoint);

  result.configuration = std::move(enumerated.configuration);
  result.configurations_explored += enumerated.configurations_explored;
  result.initial_cost = enumerated.initial_cost;
  result.final_cost = enumerated.final_cost;
  result.stop_reason = enumerated.stop_reason;
  result.optimizer_calls = what_if.optimizer_calls();
  result.cache_hits = what_if.cache_hits();
  result.optimizer_seconds = what_if.optimizer_seconds();
  result.retry_attempts = what_if.retry_attempts();
  result.elapsed_seconds =
      static_cast<double>(MonotonicNanos() - start_nanos) * 1e-9;
  return result;
}

}  // namespace isum::advisor
