#include "advisor/advisor.h"

#include <algorithm>
#include <chrono>
#include <atomic>
#include <optional>
#include <unordered_set>

#include "advisor/enumerator.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

TuningResult DtaStyleAdvisor::Tune(const std::vector<WeightedQuery>& queries,
                                   const TuningOptions& options) const {
  ISUM_TRACE_SPAN("advisor/tune");
  static obs::Counter* const tuning_runs =
      obs::MetricsRegistry::Global().GetCounter("advisor.tuning_runs");
  tuning_runs->Add(1);
  const auto start = std::chrono::steady_clock::now();
  TuningResult result;
  if (queries.empty()) return result;

  engine::WhatIfOptimizer what_if(cost_model_);
  const catalog::Catalog& catalog = cost_model_->catalog();

  // Anytime deadline (DTA's time-budget mode). Candidate selection gets at
  // most half the budget so enumeration always sees some candidates.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::optional<std::chrono::steady_clock::time_point> selection_deadline;
  if (options.time_budget_seconds > 0.0) {
    deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(options.time_budget_seconds));
    selection_deadline =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options.time_budget_seconds / 2.0));
  }

  // --- Candidate selection: per query, keep the individually improving
  // candidates (top max_candidates_per_query by improvement). Queries are
  // independent, so this parallelizes; the pool merge below stays in query
  // order so results are identical for any thread count. ---
  std::vector<std::vector<engine::Index>> kept_per_query(queries.size());
  std::atomic<uint64_t> explored{0};
  auto select_for = [&](size_t q) {
    if (selection_deadline.has_value() &&
        std::chrono::steady_clock::now() >= *selection_deadline) {
      return;  // anytime: later queries contribute no candidates
    }
    const WeightedQuery& wq = queries[q];
    const double base = what_if.Cost(*wq.query, engine::Configuration());
    std::vector<engine::Index> candidates =
        GenerateCandidates(*wq.query, cost_model_->stats(),
                           options.candidate_options);
    std::vector<std::pair<double, size_t>> improving;
    for (size_t i = 0; i < candidates.size(); ++i) {
      engine::Configuration single;
      single.Add(candidates[i]);
      explored.fetch_add(1, std::memory_order_relaxed);
      const double cost = what_if.Cost(*wq.query, single);
      const double improvement = base - cost;
      if (improvement > options.min_improvement * base &&
          improvement > 0.0) {
        improving.emplace_back(improvement, i);
      }
    }
    std::sort(improving.begin(), improving.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    const size_t keep = std::min<size_t>(
        improving.size(), static_cast<size_t>(options.max_candidates_per_query));
    for (size_t r = 0; r < keep; ++r) {
      kept_per_query[q].push_back(candidates[improving[r].second]);
    }
  };
  {
    ISUM_TRACE_SPAN("advisor/candidate-gen");
    if (options.num_threads > 1) {
      ThreadPool(static_cast<size_t>(options.num_threads))
          .ParallelFor(queries.size(), select_for);
    } else {
      for (size_t q = 0; q < queries.size(); ++q) select_for(q);
    }
  }
  result.configurations_explored += explored.load();

  std::vector<engine::Index> pool;
  std::unordered_set<engine::Index> pool_set;
  for (const auto& kept : kept_per_query) {
    for (const engine::Index& idx : kept) {
      if (pool_set.insert(idx).second) pool.push_back(idx);
    }
  }

  // --- Storage budget. ---
  uint64_t budget = options.storage_budget_bytes;
  if (budget == 0 && options.storage_budget_multiplier > 0.0) {
    budget = static_cast<uint64_t>(options.storage_budget_multiplier *
                                   static_cast<double>(catalog.total_data_bytes()));
  }

  // --- Greedy enumeration. ---
  EnumerationResult enumerated =
      GreedyEnumerate(what_if, queries, pool, options.max_indexes, budget,
                      catalog, deadline, options.num_threads);

  result.configuration = std::move(enumerated.configuration);
  result.configurations_explored += enumerated.configurations_explored;
  result.initial_cost = enumerated.initial_cost;
  result.final_cost = enumerated.final_cost;
  result.optimizer_calls = what_if.optimizer_calls();
  result.cache_hits = what_if.cache_hits();
  result.optimizer_seconds = what_if.optimizer_seconds();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace isum::advisor
