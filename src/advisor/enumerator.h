#ifndef ISUM_ADVISOR_ENUMERATOR_H_
#define ISUM_ADVISOR_ENUMERATOR_H_

#include <vector>

#include "advisor/advisor.h"
#include "common/checkpoint.h"
#include "common/deadline.h"

namespace isum::advisor {

/// Result of greedy configuration enumeration.
struct EnumerationResult {
  engine::Configuration configuration;
  uint64_t configurations_explored = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  /// kComplete, or why enumeration stopped early. On early stop the
  /// configuration holds only fully-evaluated rounds — a partially costed
  /// round is never applied (docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;
};

/// Greedily grows a configuration from `pool`: each round adds the candidate
/// with the maximum weighted-workload cost improvement that still fits the
/// storage budget, stopping at `max_indexes` or when no candidate improves.
/// Re-costs only queries referencing the candidate's table (plus the
/// memoization in `what_if`), which is what makes enumeration tractable.
/// `budget` makes enumeration anytime: it is observed at round boundaries
/// and inside every what-if call, and on expiry the configuration built so
/// far is returned with stop_reason set. Candidates whose costing fails
/// persistently under fault injection are treated as non-improving; a round
/// where *every* candidate fails stops enumeration with
/// StopReason::kFault. `num_threads` > 1 evaluates candidates concurrently
/// (same result for any thread count: the winner is reduced
/// deterministically; on cancellation the in-flight batch is drained before
/// returning).
///
/// `ckpt` enables crash-safe checkpoint/resume (docs/ROBUSTNESS.md): after
/// initial costing, the newest valid epoch under `<path>.enum` whose
/// fingerprint (queries, weights, pool, constraints) and bit-exact initial
/// cost match is restored — the winner sequence is replayed, per-query
/// current costs and the what-if memo cache are reinstated — and
/// enumeration continues from the checkpointed round; epochs are written
/// every `ckpt.every_rounds` rounds and at termination. A resumed run adds
/// the same indexes at the same costs as an uninterrupted one.
EnumerationResult GreedyEnumerate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const std::vector<engine::Index>& pool, int max_indexes,
    uint64_t storage_budget_bytes, const catalog::Catalog& catalog,
    const TimeBudget& budget = {}, int num_threads = 1,
    const CheckpointConfig& ckpt = {});

}  // namespace isum::advisor

#endif  // ISUM_ADVISOR_ENUMERATOR_H_
