#ifndef ISUM_ADVISOR_ENUMERATOR_H_
#define ISUM_ADVISOR_ENUMERATOR_H_

#include <chrono>
#include <optional>
#include <vector>

#include "advisor/advisor.h"

namespace isum::advisor {

/// Result of greedy configuration enumeration.
struct EnumerationResult {
  engine::Configuration configuration;
  uint64_t configurations_explored = 0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
};

/// Greedily grows a configuration from `pool`: each round adds the candidate
/// with the maximum weighted-workload cost improvement that still fits the
/// storage budget, stopping at `max_indexes` or when no candidate improves.
/// Re-costs only queries referencing the candidate's table (plus the
/// memoization in `what_if`), which is what makes enumeration tractable.
/// `deadline` (steady-clock, optional) makes enumeration anytime: the round
/// in flight finishes, no further rounds start. `num_threads` > 1 evaluates
/// candidates concurrently (same result for any thread count: the winner is
/// reduced deterministically).
EnumerationResult GreedyEnumerate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const std::vector<engine::Index>& pool, int max_indexes,
    uint64_t storage_budget_bytes, const catalog::Catalog& catalog,
    std::optional<std::chrono::steady_clock::time_point> deadline =
        std::nullopt,
    int num_threads = 1);

}  // namespace isum::advisor

#endif  // ISUM_ADVISOR_ENUMERATOR_H_
