#ifndef ISUM_ADVISOR_DEXTER_ADVISOR_H_
#define ISUM_ADVISOR_DEXTER_ADVISOR_H_

#include <vector>

#include "advisor/advisor.h"

namespace isum::advisor {

/// Knobs of the simpler advisor. `min_improvement` mirrors DEXTER's
/// "minimum improvement" parameter (set to 5% in the paper's §8.3).
struct DexterOptions {
  double min_improvement = 0.05;
  /// Hard cap on the result size (the paper notes DEXTER cannot constrain
  /// index count/storage during search; we truncate after the fact only so
  /// experiments can sweep a size axis). 0 = unlimited.
  int max_indexes = 0;
  /// Deadline/cancellation, observed between queries and inside what-if
  /// calls; on expiry the queries tuned so far are merged and returned with
  /// TuningResult::stop_reason set. Falls back to the ambient budget.
  TimeBudget budget;
};

/// A deliberately simpler, DEXTER-like index advisor (paper §8.3): per-query
/// local selection of single-table candidates with a minimum-improvement
/// threshold, no global enumeration, no index merging, no storage budget.
/// Exists to show ISUM generalizes across advisors (Figure 15, Table 3).
class DexterStyleAdvisor {
 public:
  explicit DexterStyleAdvisor(const engine::CostModel* cost_model)
      : cost_model_(cost_model) {}

  TuningResult Tune(const std::vector<WeightedQuery>& queries,
                    const DexterOptions& options = {}) const;

 private:
  const engine::CostModel* cost_model_;
};

}  // namespace isum::advisor

#endif  // ISUM_ADVISOR_DEXTER_ADVISOR_H_
