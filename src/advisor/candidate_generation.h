#ifndef ISUM_ADVISOR_CANDIDATE_GENERATION_H_
#define ISUM_ADVISOR_CANDIDATE_GENERATION_H_

#include <vector>

#include "common/deadline.h"
#include "engine/index.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::advisor {

/// Limits for syntactic candidate generation.
struct CandidateGenOptions {
  /// Maximum key columns per candidate index.
  int max_key_columns = 3;
  /// Maximum INCLUDE columns attached to covering variants.
  int max_include_columns = 8;
  /// Also emit covering variants (key + remaining referenced columns).
  bool covering_variants = true;
};

/// Generates the syntactically relevant candidate indexes for one query by
/// combining its indexable columns per the rule set of Table 1 in the paper:
///   R1 selection            R2 join
///   R3 selection + join     R4 join + selection
///   R5 order-by + selection + join   R6 group-by + selection + join
///   R7 order-by + join + selection   R8 group-by + join + selection
/// Selection columns are ordered most-selective-first (as index advisors do).
/// Results are deduplicated. `budget` makes generation anytime: it is
/// observed at per-table and covering-variant boundaries, and on expiry the
/// candidates emitted so far are returned (each is independently valid).
std::vector<engine::Index> GenerateCandidates(
    const sql::BoundQuery& query, const stats::StatsManager& stats,
    const CandidateGenOptions& options = {}, const TimeBudget& budget = {});

/// Indexable columns of `query` grouped by role (Definition 5 of the paper):
/// filter, join, group-by and order-by columns, per referenced table.
struct IndexableColumns {
  std::vector<catalog::ColumnId> filter_columns;
  std::vector<catalog::ColumnId> join_columns;
  std::vector<catalog::ColumnId> group_by_columns;
  std::vector<catalog::ColumnId> order_by_columns;
};

/// Extracts indexable columns (deduplicated per role, preserving first-seen
/// order). Filter columns include those in complex predicates.
IndexableColumns ExtractIndexableColumns(const sql::BoundQuery& query);

}  // namespace isum::advisor

#endif  // ISUM_ADVISOR_CANDIDATE_GENERATION_H_
