#include "advisor/candidate_generation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace isum::advisor {

namespace {

void PushUnique(std::vector<catalog::ColumnId>* v, catalog::ColumnId c) {
  if (std::find(v->begin(), v->end(), c) == v->end()) v->push_back(c);
}

/// Per-table slices of the indexable columns.
struct TableColumns {
  std::vector<catalog::ColumnId> selections;  // most selective first
  std::vector<catalog::ColumnId> joins;
  std::vector<catalog::ColumnId> group_by;  // in clause order
  std::vector<catalog::ColumnId> order_by;  // in clause order
  std::vector<catalog::ColumnId> referenced;
};

}  // namespace

IndexableColumns ExtractIndexableColumns(const sql::BoundQuery& query) {
  IndexableColumns out;
  for (const auto& f : query.filters) PushUnique(&out.filter_columns, f.column);
  for (const auto& cp : query.complex_predicates) {
    for (catalog::ColumnId c : cp.columns) PushUnique(&out.filter_columns, c);
  }
  for (const auto& j : query.joins) {
    PushUnique(&out.join_columns, j.left);
    PushUnique(&out.join_columns, j.right);
  }
  for (catalog::ColumnId g : query.group_by_columns) {
    PushUnique(&out.group_by_columns, g);
  }
  for (const auto& [col, desc] : query.order_by_columns) {
    PushUnique(&out.order_by_columns, col);
  }
  return out;
}

std::vector<engine::Index> GenerateCandidates(
    const sql::BoundQuery& query, const stats::StatsManager& stats,
    const CandidateGenOptions& options, const TimeBudget& budget) {
  // --- Build per-table views. ---
  std::unordered_map<catalog::TableId, TableColumns> per_table;

  // Sargable filters sorted by ascending selectivity (most selective first).
  std::vector<const sql::FilterPredicate*> sargable;
  for (const auto& f : query.filters) {
    if (f.sargable) sargable.push_back(&f);
  }
  std::sort(sargable.begin(), sargable.end(),
            [](const sql::FilterPredicate* a, const sql::FilterPredicate* b) {
              return a->selectivity < b->selectivity;
            });
  for (const auto* f : sargable) {
    PushUnique(&per_table[f->column.table].selections, f->column);
  }
  for (const auto& j : query.joins) {
    PushUnique(&per_table[j.left.table].joins, j.left);
    PushUnique(&per_table[j.right.table].joins, j.right);
  }
  for (catalog::ColumnId g : query.group_by_columns) {
    PushUnique(&per_table[g.table].group_by, g);
  }
  for (const auto& [col, desc] : query.order_by_columns) {
    PushUnique(&per_table[col.table].order_by, col);
  }
  for (catalog::ColumnId c : query.ReferencedColumns()) {
    PushUnique(&per_table[c.table].referenced, c);
  }
  (void)stats;

  // --- Emit candidates per Table 1. ---
  std::vector<engine::Index> out;
  std::unordered_set<engine::Index> seen;
  auto emit = [&](catalog::TableId t, std::vector<catalog::ColumnId> keys,
                  std::vector<catalog::ColumnId> includes = {}) {
    if (keys.empty()) return;
    // Dedup keys while preserving order; cap length.
    std::vector<catalog::ColumnId> uniq;
    for (catalog::ColumnId c : keys) {
      if (std::find(uniq.begin(), uniq.end(), c) == uniq.end()) {
        uniq.push_back(c);
      }
      if (static_cast<int>(uniq.size()) >= options.max_key_columns) break;
    }
    engine::Index index(t, std::move(uniq), std::move(includes));
    if (seen.insert(index).second) out.push_back(std::move(index));
  };

  for (auto& [t, cols] : per_table) {
    // Anytime: an expired budget stops emitting further tables; everything
    // emitted so far is a valid (if smaller) candidate set.
    if (budget.Expired()) return out;
    const auto& S = cols.selections;
    const auto& J = cols.joins;
    const auto& G = cols.group_by;
    const auto& O = cols.order_by;

    // R1: selection — singletons plus the selective prefix.
    for (catalog::ColumnId s : S) emit(t, {s});
    if (S.size() > 1) emit(t, S);
    // R2: join.
    for (catalog::ColumnId j : J) emit(t, {j});
    // R3: selection + join; R4: join + selection.
    if (!S.empty() && !J.empty()) {
      std::vector<catalog::ColumnId> sj = S;
      sj.insert(sj.end(), J.begin(), J.end());
      emit(t, sj);
      std::vector<catalog::ColumnId> js = J;
      js.insert(js.end(), S.begin(), S.end());
      emit(t, js);
    }
    // R5–R8: order-by/group-by leading (leading requirement per the paper).
    auto lead_combo = [&](const std::vector<catalog::ColumnId>& lead,
                          const std::vector<catalog::ColumnId>& a,
                          const std::vector<catalog::ColumnId>& b) {
      if (lead.empty()) return;
      std::vector<catalog::ColumnId> keys = lead;
      keys.insert(keys.end(), a.begin(), a.end());
      keys.insert(keys.end(), b.begin(), b.end());
      emit(t, keys);
    };
    lead_combo(O, S, J);  // R5
    lead_combo(G, S, J);  // R6
    lead_combo(O, J, S);  // R7
    lead_combo(G, J, S);  // R8
    if (!O.empty()) emit(t, O);
    if (!G.empty()) emit(t, G);
  }

  // --- Covering variants: add INCLUDEs for the rest of the table's
  // referenced columns to the most promising seek candidates. ---
  if (options.covering_variants) {
    const size_t base_count = out.size();
    for (size_t i = 0; i < base_count; ++i) {
      if (budget.Expired()) break;
      const engine::Index& base = out[i];
      const TableColumns& cols = per_table[base.table()];
      std::vector<catalog::ColumnId> includes;
      for (catalog::ColumnId c : cols.referenced) {
        if (!base.ContainsColumn(c)) includes.push_back(c);
        if (static_cast<int>(includes.size()) >= options.max_include_columns) {
          break;
        }
      }
      if (includes.empty()) continue;
      engine::Index covering(base.table(), base.key_columns(), includes);
      if (seen.insert(covering).second) out.push_back(std::move(covering));
    }
  }
  return out;
}

}  // namespace isum::advisor
