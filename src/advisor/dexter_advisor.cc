#include "advisor/dexter_advisor.h"

#include <algorithm>
#include <unordered_map>

#include "common/deadline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

TuningResult DexterStyleAdvisor::Tune(const std::vector<WeightedQuery>& queries,
                                      const DexterOptions& options) const {
  ISUM_TRACE_SPAN("advisor/tune");
  static obs::Counter* const tuning_runs =
      obs::MetricsRegistry::Global().GetCounter("advisor.tuning_runs");
  tuning_runs->Add(1);
  const uint64_t start_nanos = MonotonicNanos();
  TuningResult result;
  engine::WhatIfOptimizer what_if(cost_model_);
  const stats::StatsManager& stats = cost_model_->stats();
  const TimeBudget budget = EffectiveBudget(options.budget);

  // Accumulated benefit per chosen index across queries (for truncation).
  std::unordered_map<engine::Index, double> chosen;

  double initial = 0.0;
  double final_cost = 0.0;
  bool stopped = false;
  for (const WeightedQuery& wq : queries) {
    // Query boundaries are the cooperative stop points: the queries tuned so
    // far still merge into a valid recommendation.
    const Status query_check = budget.CheckCancelled();
    if (!query_check.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(query_check);
      break;
    }
    const StatusOr<double> base_or =
        what_if.TryCost(*wq.query, engine::Configuration(), budget);
    if (!base_or.ok()) {
      if (base_or.status().code() == StatusCode::kUnavailable) {
        continue;  // persistent fault on this query: tune the others
      }
      result.stop_reason = TimeBudget::ReasonFor(base_or.status());
      break;
    }
    const double base = *base_or;
    initial += wq.weight * base;

    // DEXTER-like candidates: single-column and two-column (filter, join)
    // key indexes only — no include lists, no multi-clause rules.
    CandidateGenOptions gen;
    gen.max_key_columns = 2;
    gen.covering_variants = false;
    std::vector<engine::Index> candidates =
        GenerateCandidates(*wq.query, stats, gen);

    // Local greedy: keep adding the best single candidate for *this query*
    // while it clears the minimum improvement bar.
    engine::Configuration local;
    double current = base;
    while (!stopped) {
      double best_improvement = 0.0;
      const engine::Index* best = nullptr;
      for (const engine::Index& c : candidates) {
        if (local.Contains(c)) continue;
        engine::Configuration trial = local;
        trial.Add(c);
        ++result.configurations_explored;
        const StatusOr<double> cost = what_if.TryCost(*wq.query, trial, budget);
        if (!cost.ok()) {
          if (cost.status().code() == StatusCode::kUnavailable) {
            continue;  // candidate uncostable: treat as non-improving
          }
          result.stop_reason = TimeBudget::ReasonFor(cost.status());
          stopped = true;
          break;
        }
        const double improvement = current - *cost;
        if (improvement > best_improvement) {
          best_improvement = improvement;
          best = &c;
        }
      }
      if (best == nullptr || best_improvement < options.min_improvement * base) {
        break;
      }
      local.Add(*best);
      current -= best_improvement;
      chosen[*best] += wq.weight * best_improvement;
    }
    final_cost += wq.weight * current;
    if (stopped) break;
  }

  // Union of local picks; truncate to the most beneficial if capped.
  std::vector<std::pair<double, engine::Index>> ranked;
  ranked.reserve(chosen.size());
  for (const auto& [index, benefit] : chosen) ranked.emplace_back(benefit, index);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t cap = options.max_indexes > 0
                         ? static_cast<size_t>(options.max_indexes)
                         : ranked.size();
  for (size_t i = 0; i < std::min(cap, ranked.size()); ++i) {
    result.configuration.Add(ranked[i].second);
  }

  result.initial_cost = initial;
  result.final_cost = final_cost;
  result.optimizer_calls = what_if.optimizer_calls();
  result.cache_hits = what_if.cache_hits();
  result.optimizer_seconds = what_if.optimizer_seconds();
  result.retry_attempts = what_if.retry_attempts();
  result.elapsed_seconds =
      static_cast<double>(MonotonicNanos() - start_nanos) * 1e-9;
  return result;
}

}  // namespace isum::advisor
