#include "advisor/dexter_advisor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

TuningResult DexterStyleAdvisor::Tune(const std::vector<WeightedQuery>& queries,
                                      const DexterOptions& options) const {
  ISUM_TRACE_SPAN("advisor/tune");
  static obs::Counter* const tuning_runs =
      obs::MetricsRegistry::Global().GetCounter("advisor.tuning_runs");
  tuning_runs->Add(1);
  const auto start = std::chrono::steady_clock::now();
  TuningResult result;
  engine::WhatIfOptimizer what_if(cost_model_);
  const stats::StatsManager& stats = cost_model_->stats();

  // Accumulated benefit per chosen index across queries (for truncation).
  std::unordered_map<engine::Index, double> chosen;

  double initial = 0.0;
  double final_cost = 0.0;
  for (const WeightedQuery& wq : queries) {
    const double base = what_if.Cost(*wq.query, engine::Configuration());
    initial += wq.weight * base;

    // DEXTER-like candidates: single-column and two-column (filter, join)
    // key indexes only — no include lists, no multi-clause rules.
    CandidateGenOptions gen;
    gen.max_key_columns = 2;
    gen.covering_variants = false;
    std::vector<engine::Index> candidates =
        GenerateCandidates(*wq.query, stats, gen);

    // Local greedy: keep adding the best single candidate for *this query*
    // while it clears the minimum improvement bar.
    engine::Configuration local;
    double current = base;
    for (;;) {
      double best_improvement = 0.0;
      const engine::Index* best = nullptr;
      for (const engine::Index& c : candidates) {
        if (local.Contains(c)) continue;
        engine::Configuration trial = local;
        trial.Add(c);
        ++result.configurations_explored;
        const double cost = what_if.Cost(*wq.query, trial);
        const double improvement = current - cost;
        if (improvement > best_improvement) {
          best_improvement = improvement;
          best = &c;
        }
      }
      if (best == nullptr || best_improvement < options.min_improvement * base) {
        break;
      }
      local.Add(*best);
      current -= best_improvement;
      chosen[*best] += wq.weight * best_improvement;
    }
    final_cost += wq.weight * current;
  }

  // Union of local picks; truncate to the most beneficial if capped.
  std::vector<std::pair<double, engine::Index>> ranked;
  ranked.reserve(chosen.size());
  for (const auto& [index, benefit] : chosen) ranked.emplace_back(benefit, index);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const size_t cap = options.max_indexes > 0
                         ? static_cast<size_t>(options.max_indexes)
                         : ranked.size();
  for (size_t i = 0; i < std::min(cap, ranked.size()); ++i) {
    result.configuration.Add(ranked[i].second);
  }

  result.initial_cost = initial;
  result.final_cost = final_cost;
  result.optimizer_calls = what_if.optimizer_calls();
  result.cache_hits = what_if.cache_hits();
  result.optimizer_seconds = what_if.optimizer_seconds();
  result.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace isum::advisor
