#include "advisor/enumerator.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

namespace {

/// Evaluation of one candidate against the current per-query costs.
struct CandidateEvaluation {
  double improvement = 0.0;
  std::vector<double> new_costs;
};

CandidateEvaluation EvaluateCandidate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const engine::Configuration& base_config, const engine::Index& candidate,
    const std::vector<double>& current_cost) {
  engine::Configuration trial = base_config;
  trial.Add(candidate);
  CandidateEvaluation out;
  out.new_costs.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!queries[qi].query->ReferencesTable(candidate.table())) {
      out.new_costs.push_back(current_cost[qi]);
      continue;
    }
    const double c = what_if.Cost(*queries[qi].query, trial);
    out.new_costs.push_back(c);
    out.improvement += queries[qi].weight * (current_cost[qi] - c);
  }
  return out;
}

}  // namespace

EnumerationResult GreedyEnumerate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const std::vector<engine::Index>& pool, int max_indexes,
    uint64_t storage_budget_bytes, const catalog::Catalog& catalog,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    int num_threads) {
  ISUM_TRACE_SPAN("advisor/enumerate");
  static obs::Counter* const rounds_counter =
      obs::MetricsRegistry::Global().GetCounter("advisor.enumeration_rounds");
  static obs::Counter* const explored_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "advisor.configurations_explored");
  EnumerationResult result;

  // Per-query current cost under the growing configuration.
  std::vector<double> current_cost(queries.size());
  double total_cost = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    current_cost[i] = what_if.Cost(*queries[i].query, result.configuration);
    total_cost += queries[i].weight * current_cost[i];
  }
  result.initial_cost = total_cost;

  std::unique_ptr<ThreadPool> pool_threads;
  if (num_threads > 1) {
    pool_threads = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads));
  }

  std::vector<bool> used(pool.size(), false);
  uint64_t used_storage = 0;

  while (static_cast<int>(result.configuration.size()) < max_indexes) {
    if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {
      break;  // anytime: keep what we have
    }
    // Candidates eligible this round (unused + fitting the budget).
    std::vector<size_t> eligible;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      if (storage_budget_bytes > 0 &&
          used_storage + pool[i].SizeBytes(catalog) > storage_budget_bytes) {
        continue;
      }
      eligible.push_back(i);
    }
    if (eligible.empty()) break;
    rounds_counter->Add(1);
    explored_counter->Add(eligible.size());
    result.configurations_explored += eligible.size();

    std::vector<CandidateEvaluation> evaluations(eligible.size());
    auto evaluate = [&](size_t e) {
      evaluations[e] = EvaluateCandidate(what_if, queries, result.configuration,
                                         pool[eligible[e]], current_cost);
    };
    if (pool_threads != nullptr) {
      pool_threads->ParallelFor(eligible.size(), evaluate);
    } else {
      for (size_t e = 0; e < eligible.size(); ++e) evaluate(e);
    }

    // Deterministic reduction: best improvement, ties to the lowest index.
    size_t best_e = eligible.size();
    double best_improvement = 0.0;
    for (size_t e = 0; e < eligible.size(); ++e) {
      if (evaluations[e].improvement > best_improvement) {
        best_improvement = evaluations[e].improvement;
        best_e = e;
      }
    }
    if (best_e == eligible.size()) break;

    const size_t best_i = eligible[best_e];
    used[best_i] = true;
    used_storage += pool[best_i].SizeBytes(catalog);
    result.configuration.Add(pool[best_i]);
    current_cost = std::move(evaluations[best_e].new_costs);
    total_cost -= best_improvement;
  }

  result.final_cost = total_cost;
  return result;
}

}  // namespace isum::advisor
