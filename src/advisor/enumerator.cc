#include "advisor/enumerator.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/fault.h"
#include "common/hash.h"
#include "common/thread_pool.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

namespace {

/// Evaluation of one candidate against the current per-query costs. When
/// `status` is non-OK the evaluation is incomplete and must not be applied.
struct CandidateEvaluation {
  double improvement = 0.0;
  std::vector<double> new_costs;
  Status status;
};

CandidateEvaluation EvaluateCandidate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const engine::Configuration& base_config, const engine::Index& candidate,
    const std::vector<double>& current_cost, const TimeBudget& budget) {
  engine::Configuration trial = base_config;
  trial.Add(candidate);
  CandidateEvaluation out;
  out.new_costs.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!queries[qi].query->ReferencesTable(candidate.table())) {
      out.new_costs.push_back(current_cost[qi]);
      continue;
    }
    const StatusOr<double> c = what_if.TryCost(*queries[qi].query, trial, budget);
    if (!c.ok()) {
      out.status = c.status();
      return out;
    }
    out.new_costs.push_back(*c);
    out.improvement += queries[qi].weight * (current_cost[qi] - *c);
  }
  return out;
}

/// ---- Enumeration checkpointing ----
///
/// Section layout of the `.enum` checkpoint (container format in
/// common/checkpoint.h):
///   meta     fingerprint, done, stop_reason, configurations_explored,
///            initial_cost bits, total_cost bits
///   winners  pool indices of the added indexes, in round order
///   costs    per-query current cost under the checkpointed configuration
///   cache    memoized what-if answers (query id, config hash, cost)
///
/// Restore replays the winner sequence instead of serializing the
/// Configuration object: pool indices plus the bit-exact per-query costs
/// fully determine the derived state, and the replay is O(rounds). The
/// stored initial cost must match the resumed run's freshly computed one
/// bit-for-bit before anything is applied — that proves the cost model,
/// stats and workload are the ones the checkpoint came from, so seeding the
/// what-if cache from it cannot poison the resumed run.
constexpr uint32_t kEnumMetaSection = 1;
constexpr uint32_t kEnumWinnersSection = 2;
constexpr uint32_t kEnumCostsSection = 3;
constexpr uint32_t kEnumCacheSection = 4;

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Identity of one enumeration work unit: the weighted workload, the
/// candidate pool (by canonical index definition, order-sensitive) and the
/// search constraints. Thread count is deliberately excluded — enumeration
/// is bit-identical across thread counts, so a checkpoint written at one
/// concurrency resumes at another.
uint64_t EnumerationFingerprint(const std::vector<WeightedQuery>& queries,
                                const std::vector<engine::Index>& pool,
                                int max_indexes,
                                uint64_t storage_budget_bytes) {
  uint64_t h = HashBytes("enum");
  h = HashCombine(h, queries.size());
  for (const WeightedQuery& wq : queries) {
    h = HashCombine(h, DoubleBits(wq.weight));
  }
  h = HashCombine(h, pool.size());
  for (const engine::Index& index : pool) {
    h = HashCombine(h, HashBytes(index.CanonicalKey()));
  }
  h = HashCombine(h, static_cast<uint64_t>(max_indexes));
  h = HashCombine(h, storage_budget_bytes);
  return h;
}

struct EnumSnapshot {
  uint64_t fingerprint = 0;
  uint64_t done = 0;
  uint64_t stop_reason = 0;
  uint64_t configurations_explored = 0;
  uint64_t initial_cost_bits = 0;
  uint64_t total_cost_bits = 0;
  std::vector<uint64_t> winners;
  std::vector<double> costs;
  std::vector<engine::WhatIfOptimizer::CacheEntry> cache;
};

void EncodeEnumSnapshot(const EnumSnapshot& snapshot,
                        CheckpointWriter* writer) {
  writer->BeginSection(kEnumMetaSection);
  writer->AppendU64(snapshot.fingerprint);
  writer->AppendU64(snapshot.done);
  writer->AppendU64(snapshot.stop_reason);
  writer->AppendU64(snapshot.configurations_explored);
  writer->AppendU64(snapshot.initial_cost_bits);
  writer->AppendU64(snapshot.total_cost_bits);
  writer->EndSection();
  writer->BeginSection(kEnumWinnersSection);
  writer->AppendU64Vector(snapshot.winners);
  writer->EndSection();
  writer->BeginSection(kEnumCostsSection);
  writer->AppendF64Vector(snapshot.costs);
  writer->EndSection();
  writer->BeginSection(kEnumCacheSection);
  writer->AppendU64(snapshot.cache.size());
  for (const engine::WhatIfOptimizer::CacheEntry& entry : snapshot.cache) {
    writer->AppendU64(entry.query_id);
    writer->AppendU64(entry.config_hash);
    writer->AppendF64(entry.cost);
  }
  writer->EndSection();
}

/// Newest valid epoch decoded into an EnumSnapshot, or kNotFound when no
/// usable checkpoint exists (absent lineage, fingerprint mismatch,
/// structurally invalid payload). Callers must still validate the initial
/// cost bits against a fresh costing pass before applying anything.
StatusOr<EnumSnapshot> LoadEnumSnapshot(CheckpointStore& store,
                                        uint64_t expected_fingerprint) {
  StatusOr<CheckpointReader> reader = store.LoadLatest();
  if (!reader.ok()) return reader.status();
  EnumSnapshot snapshot;
  StatusOr<CheckpointCursor> meta = reader->Section(kEnumMetaSection);
  if (!meta.ok()) return meta.status();
  ISUM_ASSIGN_OR_RETURN(snapshot.fingerprint, meta->ReadU64());
  ISUM_ASSIGN_OR_RETURN(snapshot.done, meta->ReadU64());
  ISUM_ASSIGN_OR_RETURN(snapshot.stop_reason, meta->ReadU64());
  ISUM_ASSIGN_OR_RETURN(snapshot.configurations_explored, meta->ReadU64());
  ISUM_ASSIGN_OR_RETURN(snapshot.initial_cost_bits, meta->ReadU64());
  ISUM_ASSIGN_OR_RETURN(snapshot.total_cost_bits, meta->ReadU64());
  if (snapshot.fingerprint != expected_fingerprint) {
    return Status::NotFound("checkpoint fingerprint mismatch");
  }
  if (snapshot.stop_reason > static_cast<uint64_t>(StopReason::kFault)) {
    return Status::ParseError("checkpoint stop_reason out of range");
  }
  StatusOr<CheckpointCursor> winners = reader->Section(kEnumWinnersSection);
  if (!winners.ok()) return winners.status();
  ISUM_ASSIGN_OR_RETURN(snapshot.winners, winners->ReadU64Vector());
  StatusOr<CheckpointCursor> costs = reader->Section(kEnumCostsSection);
  if (!costs.ok()) return costs.status();
  ISUM_ASSIGN_OR_RETURN(snapshot.costs, costs->ReadF64Vector());
  StatusOr<CheckpointCursor> cache = reader->Section(kEnumCacheSection);
  if (!cache.ok()) return cache.status();
  uint64_t cache_count = 0;
  ISUM_ASSIGN_OR_RETURN(cache_count, cache->ReadU64());
  if (cache_count > cache->remaining() / 24) {
    return Status::ParseError("checkpoint cache overruns section");
  }
  snapshot.cache.reserve(cache_count);
  for (uint64_t i = 0; i < cache_count; ++i) {
    engine::WhatIfOptimizer::CacheEntry entry;
    ISUM_ASSIGN_OR_RETURN(entry.query_id, cache->ReadU64());
    ISUM_ASSIGN_OR_RETURN(entry.config_hash, cache->ReadU64());
    ISUM_ASSIGN_OR_RETURN(entry.cost, cache->ReadF64());
    snapshot.cache.push_back(entry);
  }
  return snapshot;
}

}  // namespace

EnumerationResult GreedyEnumerate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const std::vector<engine::Index>& pool, int max_indexes,
    uint64_t storage_budget_bytes, const catalog::Catalog& catalog,
    const TimeBudget& budget, int num_threads,
    const CheckpointConfig& ckpt) {
  ISUM_TRACE_SPAN_VAR(span, "advisor/enumerate");
  span.Arg("pool", static_cast<uint64_t>(pool.size()))
      .Arg("max_indexes", max_indexes)
      .Arg("queries", static_cast<uint64_t>(queries.size()));
  static obs::Counter* const rounds_counter =
      obs::MetricsRegistry::Global().GetCounter("advisor.enumeration_rounds");
  static obs::Counter* const explored_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "advisor.configurations_explored");
  // Process-wide what-if counters, sampled per round so journal enum_round
  // events can attribute this round's cache hits and optimizer calls.
  static obs::Counter* const whatif_calls_counter =
      obs::MetricsRegistry::Global().GetCounter("whatif.optimizer_calls");
  static obs::Counter* const whatif_hits_counter =
      obs::MetricsRegistry::Global().GetCounter("whatif.cache_hits");
  EnumerationResult result;

  // Per-query current cost under the growing (initially empty) configuration.
  // Initial costing is exempt from the deadline (bounded work, and without
  // it a truncated result would report meaningless zero costs); it still
  // honors cancellation and fault handling.
  const TimeBudget initial_budget(Deadline(), budget.token());
  std::vector<double> current_cost(queries.size());
  double total_cost = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const StatusOr<double> c =
        what_if.TryCost(*queries[i].query, result.configuration, initial_budget);
    if (!c.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(c.status());
      result.initial_cost = total_cost;
      result.final_cost = total_cost;
      NoteStopReason(result.stop_reason);
      if (obs::Journal::Global().enabled()) {
        obs::Journal::Global().EnumEnd(
            result.configuration.size(), result.initial_cost,
            result.final_cost, StopReasonToString(result.stop_reason));
      }
      return result;
    }
    current_cost[i] = *c;
    total_cost += queries[i].weight * current_cost[i];
  }
  result.initial_cost = total_cost;

  std::unique_ptr<ThreadPool> pool_threads;
  if (num_threads > 1) {
    pool_threads = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads));
  }

  std::vector<bool> used(pool.size(), false);
  uint64_t used_storage = 0;
  uint64_t round_index = 0;

  // Checkpoint/resume (header comment and docs/ROBUSTNESS.md): the restore
  // runs only after the fresh initial costing above, so the stored initial
  // cost can be validated bit-for-bit before the checkpoint seeds anything.
  const CheckpointConfig ckpt_config = EffectiveCheckpoint(ckpt);
  std::unique_ptr<CheckpointStore> ckpt_store;
  std::vector<size_t> winner_ids;  // pool indices in add order
  uint64_t ckpt_written_rounds = 0;
  const uint64_t ckpt_every =
      ckpt_config.every_rounds == 0 ? 1 : ckpt_config.every_rounds;
  bool restored_done = false;
  if (ckpt_config.enabled()) {
    const uint64_t fingerprint = EnumerationFingerprint(
        queries, pool, max_indexes, storage_budget_bytes);
    ckpt_store = std::make_unique<CheckpointStore>(ckpt_config.path + ".enum",
                                                   fingerprint);
    StatusOr<EnumSnapshot> snapshot = LoadEnumSnapshot(*ckpt_store, fingerprint);
    if (snapshot.ok() &&
        snapshot->initial_cost_bits == DoubleBits(result.initial_cost) &&
        snapshot->costs.size() == queries.size() &&
        snapshot->winners.size() <= static_cast<size_t>(max_indexes)) {
      bool winners_valid = true;
      std::vector<bool> replayed(pool.size(), false);
      for (const uint64_t w : snapshot->winners) {
        if (w >= pool.size() || replayed[w]) {
          winners_valid = false;
          break;
        }
        replayed[w] = true;
      }
      if (winners_valid) {
        // Seed the memo cache first so continued rounds reuse the killed
        // run's optimizer work (pre-validated above: a stale or foreign
        // checkpoint never reaches this point).
        std::vector<const sql::BoundQuery*> query_ptrs;
        query_ptrs.reserve(queries.size());
        for (const WeightedQuery& wq : queries) query_ptrs.push_back(wq.query);
        what_if.ImportCache(snapshot->cache, query_ptrs);
        for (const uint64_t w : snapshot->winners) {
          const size_t i = static_cast<size_t>(w);
          used[i] = true;
          used_storage += pool[i].SizeBytes(catalog);
          result.configuration.Add(pool[i]);
          winner_ids.push_back(i);
        }
        round_index = winner_ids.size();
        result.configurations_explored = snapshot->configurations_explored;
        current_cost = std::move(snapshot->costs);
        total_cost = DoubleFromBits(snapshot->total_cost_bits);
        restored_done = snapshot->done != 0;
        ckpt_written_rounds = winner_ids.size();
        obs::Journal::Global().CkptRestore(
            "enum", ckpt_store->loaded_epoch(), winner_ids.size(),
            obs::SelectionOrderHash(winner_ids.data(), winner_ids.size()),
            restored_done ? 1 : 0);
      }
    }
  }
  // Query-pointer → stable-id map for cache export on checkpoint writes.
  std::unordered_map<const void*, uint64_t> query_ids;
  if (ckpt_store != nullptr) {
    query_ids.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      query_ids.emplace(queries[i].query, static_cast<uint64_t>(i));
    }
  }
  // Best-effort epoch write: a failed write is counted
  // (ckpt.write_failures) but never fails the run — losing resumability
  // must not lose the result.
  auto write_checkpoint = [&](bool done) {
    EnumSnapshot snapshot;
    snapshot.fingerprint = ckpt_store->fingerprint();
    snapshot.done = done ? 1 : 0;
    snapshot.stop_reason = static_cast<uint64_t>(result.stop_reason);
    snapshot.configurations_explored = result.configurations_explored;
    snapshot.initial_cost_bits = DoubleBits(result.initial_cost);
    snapshot.total_cost_bits = DoubleBits(total_cost);
    snapshot.winners.assign(winner_ids.begin(), winner_ids.end());
    snapshot.costs = current_cost;
    snapshot.cache = what_if.ExportCache(query_ids);
    CheckpointWriter writer;
    EncodeEnumSnapshot(snapshot, &writer);
    const uint64_t epoch = ckpt_store->next_epoch();
    if (!ckpt_store->WriteEpoch(writer).ok()) return;
    ckpt_written_rounds = winner_ids.size();
    obs::Journal::Global().CkptWrite("enum", epoch, winner_ids.size(),
                                     ckpt_store->last_write_bytes());
  };

  while (!restored_done &&
         static_cast<int>(result.configuration.size()) < max_indexes) {
    const Status round_check = budget.CheckCancelled();
    if (!round_check.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round_check);
      break;  // anytime: keep what we have
    }
    const Status round_fault = ISUM_FAULT_POINT("advisor.enumerate");
    if (!round_fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round_fault);
      break;
    }
    // Candidates eligible this round (unused + fitting the budget).
    std::vector<size_t> eligible;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      if (storage_budget_bytes > 0 &&
          used_storage + pool[i].SizeBytes(catalog) > storage_budget_bytes) {
        continue;
      }
      eligible.push_back(i);
    }
    if (eligible.empty()) break;
    rounds_counter->Add(1);
    explored_counter->Add(eligible.size());
    result.configurations_explored += eligible.size();
    const uint64_t round_calls_before = whatif_calls_counter->Value();
    const uint64_t round_hits_before = whatif_hits_counter->Value();

    // When a budget is attached, candidate evaluations run under a per-round
    // child token: the first worker to observe expiry/cancellation fires it,
    // so the rest of the batch is skipped instead of costed pointlessly.
    // With no budget the round token stays null (zero-cost path).
    CancellationToken round_cancel;
    if (budget.limited()) round_cancel = budget.token().Child();
    const TimeBudget round_budget(budget.deadline(), round_cancel);

    std::vector<CandidateEvaluation> evaluations(eligible.size());
    auto evaluate = [&](size_t e) {
      evaluations[e] =
          EvaluateCandidate(what_if, queries, result.configuration,
                            pool[eligible[e]], current_cost, round_budget);
      const Status& st = evaluations[e].status;
      if (!st.ok() && st.code() != StatusCode::kUnavailable &&
          round_cancel.cancellable()) {
        round_cancel.Cancel();
      }
    };
    if (pool_threads != nullptr) {
      pool_threads->ParallelFor(eligible.size(), evaluate, round_cancel);
    } else {
      for (size_t e = 0; e < eligible.size(); ++e) {
        evaluate(e);
        if (round_cancel.cancelled()) break;
      }
    }

    // A deadline/cancellation mid-round invalidates the round: which
    // candidates finished depends on timing, so applying a winner here would
    // make the output nondeterministic. Keep the configuration from the
    // completed rounds instead.
    Status stop_status;
    size_t faulted = 0;
    for (size_t e = 0; e < eligible.size(); ++e) {
      const Status& st = evaluations[e].status;
      if (st.ok()) continue;
      if (st.code() == StatusCode::kUnavailable) {
        ++faulted;
      } else if (stop_status.ok()) {
        stop_status = st;
      }
    }
    if (!stop_status.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(stop_status);
      break;
    }
    if (faulted == eligible.size()) {
      // Every candidate failed persistently: nothing left to cost.
      result.stop_reason = StopReason::kFault;
      break;
    }

    // Deterministic reduction: best improvement, ties to the lowest index.
    // Candidates whose costing failed are treated as non-improving.
    size_t best_e = eligible.size();
    double best_improvement = 0.0;
    for (size_t e = 0; e < eligible.size(); ++e) {
      if (!evaluations[e].status.ok()) continue;
      if (evaluations[e].improvement > best_improvement) {
        best_improvement = evaluations[e].improvement;
        best_e = e;
      }
    }
    if (best_e == eligible.size()) break;

    const size_t best_i = eligible[best_e];
    if (obs::Journal::Global().enabled()) {
      obs::Journal::Global().EnumRound(
          round_index, eligible.size(), best_i, best_improvement,
          whatif_hits_counter->Value() - round_hits_before,
          whatif_calls_counter->Value() - round_calls_before);
    }
    ++round_index;
    used[best_i] = true;
    used_storage += pool[best_i].SizeBytes(catalog);
    result.configuration.Add(pool[best_i]);
    current_cost = std::move(evaluations[best_e].new_costs);
    total_cost -= best_improvement;
    if (ckpt_store != nullptr) {
      winner_ids.push_back(best_i);
      if (winner_ids.size() >= ckpt_written_rounds + ckpt_every) {
        write_checkpoint(/*done=*/false);
      }
    }
  }

  result.final_cost = total_cost;
  if (ckpt_store != nullptr && !restored_done) {
    write_checkpoint(result.stop_reason == StopReason::kComplete);
  }
  NoteStopReason(result.stop_reason);
  if (obs::Journal::Global().enabled()) {
    obs::Journal::Global().EnumEnd(result.configuration.size(),
                                   result.initial_cost, result.final_cost,
                                   StopReasonToString(result.stop_reason));
  }
  return result;
}

}  // namespace isum::advisor
