#include "advisor/enumerator.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::advisor {

namespace {

/// Evaluation of one candidate against the current per-query costs. When
/// `status` is non-OK the evaluation is incomplete and must not be applied.
struct CandidateEvaluation {
  double improvement = 0.0;
  std::vector<double> new_costs;
  Status status;
};

CandidateEvaluation EvaluateCandidate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const engine::Configuration& base_config, const engine::Index& candidate,
    const std::vector<double>& current_cost, const TimeBudget& budget) {
  engine::Configuration trial = base_config;
  trial.Add(candidate);
  CandidateEvaluation out;
  out.new_costs.reserve(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    if (!queries[qi].query->ReferencesTable(candidate.table())) {
      out.new_costs.push_back(current_cost[qi]);
      continue;
    }
    const StatusOr<double> c = what_if.TryCost(*queries[qi].query, trial, budget);
    if (!c.ok()) {
      out.status = c.status();
      return out;
    }
    out.new_costs.push_back(*c);
    out.improvement += queries[qi].weight * (current_cost[qi] - *c);
  }
  return out;
}

}  // namespace

EnumerationResult GreedyEnumerate(
    engine::WhatIfOptimizer& what_if,
    const std::vector<WeightedQuery>& queries,
    const std::vector<engine::Index>& pool, int max_indexes,
    uint64_t storage_budget_bytes, const catalog::Catalog& catalog,
    const TimeBudget& budget, int num_threads) {
  ISUM_TRACE_SPAN_VAR(span, "advisor/enumerate");
  span.Arg("pool", static_cast<uint64_t>(pool.size()))
      .Arg("max_indexes", max_indexes)
      .Arg("queries", static_cast<uint64_t>(queries.size()));
  static obs::Counter* const rounds_counter =
      obs::MetricsRegistry::Global().GetCounter("advisor.enumeration_rounds");
  static obs::Counter* const explored_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "advisor.configurations_explored");
  // Process-wide what-if counters, sampled per round so journal enum_round
  // events can attribute this round's cache hits and optimizer calls.
  static obs::Counter* const whatif_calls_counter =
      obs::MetricsRegistry::Global().GetCounter("whatif.optimizer_calls");
  static obs::Counter* const whatif_hits_counter =
      obs::MetricsRegistry::Global().GetCounter("whatif.cache_hits");
  EnumerationResult result;

  // Per-query current cost under the growing (initially empty) configuration.
  // Initial costing is exempt from the deadline (bounded work, and without
  // it a truncated result would report meaningless zero costs); it still
  // honors cancellation and fault handling.
  const TimeBudget initial_budget(Deadline(), budget.token());
  std::vector<double> current_cost(queries.size());
  double total_cost = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const StatusOr<double> c =
        what_if.TryCost(*queries[i].query, result.configuration, initial_budget);
    if (!c.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(c.status());
      result.initial_cost = total_cost;
      result.final_cost = total_cost;
      if (obs::Journal::Global().enabled()) {
        obs::Journal::Global().EnumEnd(
            result.configuration.size(), result.initial_cost,
            result.final_cost, StopReasonToString(result.stop_reason));
      }
      return result;
    }
    current_cost[i] = *c;
    total_cost += queries[i].weight * current_cost[i];
  }
  result.initial_cost = total_cost;

  std::unique_ptr<ThreadPool> pool_threads;
  if (num_threads > 1) {
    pool_threads = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads));
  }

  std::vector<bool> used(pool.size(), false);
  uint64_t used_storage = 0;
  uint64_t round_index = 0;

  while (static_cast<int>(result.configuration.size()) < max_indexes) {
    const Status round_check = budget.CheckCancelled();
    if (!round_check.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round_check);
      break;  // anytime: keep what we have
    }
    const Status round_fault = ISUM_FAULT_POINT("advisor.enumerate");
    if (!round_fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round_fault);
      break;
    }
    // Candidates eligible this round (unused + fitting the budget).
    std::vector<size_t> eligible;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      if (storage_budget_bytes > 0 &&
          used_storage + pool[i].SizeBytes(catalog) > storage_budget_bytes) {
        continue;
      }
      eligible.push_back(i);
    }
    if (eligible.empty()) break;
    rounds_counter->Add(1);
    explored_counter->Add(eligible.size());
    result.configurations_explored += eligible.size();
    const uint64_t round_calls_before = whatif_calls_counter->Value();
    const uint64_t round_hits_before = whatif_hits_counter->Value();

    // When a budget is attached, candidate evaluations run under a per-round
    // child token: the first worker to observe expiry/cancellation fires it,
    // so the rest of the batch is skipped instead of costed pointlessly.
    // With no budget the round token stays null (zero-cost path).
    CancellationToken round_cancel;
    if (budget.limited()) round_cancel = budget.token().Child();
    const TimeBudget round_budget(budget.deadline(), round_cancel);

    std::vector<CandidateEvaluation> evaluations(eligible.size());
    auto evaluate = [&](size_t e) {
      evaluations[e] =
          EvaluateCandidate(what_if, queries, result.configuration,
                            pool[eligible[e]], current_cost, round_budget);
      const Status& st = evaluations[e].status;
      if (!st.ok() && st.code() != StatusCode::kUnavailable &&
          round_cancel.cancellable()) {
        round_cancel.Cancel();
      }
    };
    if (pool_threads != nullptr) {
      pool_threads->ParallelFor(eligible.size(), evaluate, round_cancel);
    } else {
      for (size_t e = 0; e < eligible.size(); ++e) {
        evaluate(e);
        if (round_cancel.cancelled()) break;
      }
    }

    // A deadline/cancellation mid-round invalidates the round: which
    // candidates finished depends on timing, so applying a winner here would
    // make the output nondeterministic. Keep the configuration from the
    // completed rounds instead.
    Status stop_status;
    size_t faulted = 0;
    for (size_t e = 0; e < eligible.size(); ++e) {
      const Status& st = evaluations[e].status;
      if (st.ok()) continue;
      if (st.code() == StatusCode::kUnavailable) {
        ++faulted;
      } else if (stop_status.ok()) {
        stop_status = st;
      }
    }
    if (!stop_status.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(stop_status);
      break;
    }
    if (faulted == eligible.size()) {
      // Every candidate failed persistently: nothing left to cost.
      result.stop_reason = StopReason::kFault;
      break;
    }

    // Deterministic reduction: best improvement, ties to the lowest index.
    // Candidates whose costing failed are treated as non-improving.
    size_t best_e = eligible.size();
    double best_improvement = 0.0;
    for (size_t e = 0; e < eligible.size(); ++e) {
      if (!evaluations[e].status.ok()) continue;
      if (evaluations[e].improvement > best_improvement) {
        best_improvement = evaluations[e].improvement;
        best_e = e;
      }
    }
    if (best_e == eligible.size()) break;

    const size_t best_i = eligible[best_e];
    if (obs::Journal::Global().enabled()) {
      obs::Journal::Global().EnumRound(
          round_index, eligible.size(), best_i, best_improvement,
          whatif_hits_counter->Value() - round_hits_before,
          whatif_calls_counter->Value() - round_calls_before);
    }
    ++round_index;
    used[best_i] = true;
    used_storage += pool[best_i].SizeBytes(catalog);
    result.configuration.Add(pool[best_i]);
    current_cost = std::move(evaluations[best_e].new_costs);
    total_cost -= best_improvement;
  }

  result.final_cost = total_cost;
  if (obs::Journal::Global().enabled()) {
    obs::Journal::Global().EnumEnd(result.configuration.size(),
                                   result.initial_cost, result.final_cost,
                                   StopReasonToString(result.stop_reason));
  }
  return result;
}

}  // namespace isum::advisor
