#ifndef ISUM_ADVISOR_ADVISOR_H_
#define ISUM_ADVISOR_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "advisor/candidate_generation.h"
#include "common/checkpoint.h"
#include "common/deadline.h"
#include "engine/what_if.h"

namespace isum::advisor {

/// One query handed to an advisor, with its compressed-workload weight.
struct WeightedQuery {
  const sql::BoundQuery* query = nullptr;
  double weight = 1.0;
};

/// Advisor knobs (mirroring the constraints varied in the paper's §8:
/// configuration size, storage budget).
struct TuningOptions {
  /// Maximum number of recommended indexes (configuration size m).
  int max_indexes = 20;
  /// Storage budget as a multiple of the total base-data size. DTA's
  /// default is 3x the database size (paper §8.1).
  double storage_budget_multiplier = 3.0;
  /// Explicit storage budget in bytes; overrides the multiplier when > 0.
  uint64_t storage_budget_bytes = 0;
  /// Per-query candidates kept after candidate selection.
  int max_candidates_per_query = 12;
  /// Keep a candidate only if it improves its query by this fraction.
  double min_improvement = 0.0;
  /// Anytime tuning (DTA's time-budget mode, paper §1/§10): stop candidate
  /// selection and enumeration once this many seconds have elapsed and
  /// return the best configuration found so far. 0 = no budget.
  double time_budget_seconds = 0.0;
  /// Deadline/cancellation for the whole run. Combined with
  /// time_budget_seconds (whichever expires first wins); when unlimited the
  /// ambient process budget applies (common/deadline.h). Candidate selection
  /// gets at most half the remaining time so enumeration always runs.
  TimeBudget budget;
  /// Worker threads for candidate evaluation during enumeration (what-if
  /// calls are independent). Results are identical for any thread count —
  /// except when combined with time_budget_seconds, where the anytime
  /// cutoff lands on whatever work finished first.
  int num_threads = 1;
  CandidateGenOptions candidate_options;
  /// Crash-safe checkpoint/resume for the enumeration phase (the dominant
  /// cost of a tuning run). Disabled when path is empty; falls back to the
  /// ambient config installed by bench drivers via --checkpoint=
  /// (common/checkpoint.h, docs/ROBUSTNESS.md).
  CheckpointConfig checkpoint;
};

/// Outcome of one tuning run, with the call accounting the scalability
/// experiments (Figure 2) report.
struct TuningResult {
  engine::Configuration configuration;
  uint64_t optimizer_calls = 0;
  /// What-if calls answered from the memo cache (no optimizer invocation).
  uint64_t cache_hits = 0;
  uint64_t configurations_explored = 0;
  /// Seconds spent in real optimizer invocations (Figure 2a series).
  double optimizer_seconds = 0.0;
  /// Weighted cost of the tuned workload before/after recommendation.
  double initial_cost = 0.0;
  double final_cost = 0.0;
  double elapsed_seconds = 0.0;
  /// What-if retries performed under fault injection (retry.attempts).
  uint64_t retry_attempts = 0;
  /// kComplete, or why tuning stopped early — the configuration is then the
  /// best found before the cutoff and always valid (docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;
};

/// A DTA-style index advisor (Figure 1 of the paper): syntactic candidate
/// generation -> per-query candidate selection via what-if calls -> greedy
/// configuration enumeration under count and storage constraints, honoring
/// query weights.
class DtaStyleAdvisor {
 public:
  explicit DtaStyleAdvisor(const engine::CostModel* cost_model)
      : cost_model_(cost_model) {}

  /// Recommends a configuration for the weighted workload.
  TuningResult Tune(const std::vector<WeightedQuery>& queries,
                    const TuningOptions& options = {}) const;

 private:
  const engine::CostModel* cost_model_;
};

}  // namespace isum::advisor

#endif  // ISUM_ADVISOR_ADVISOR_H_
