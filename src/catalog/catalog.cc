#include "catalog/catalog.h"


#include "common/string_util.h"

namespace isum::catalog {

namespace {
// Fixed page size used throughout the engine's cost model.
constexpr uint64_t kPageBytes = 8192;
// Per-row storage overhead (header, null bitmap, slot entry).
constexpr int32_t kRowOverheadBytes = 16;
}  // namespace

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kBigInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kDecimal:
      return "DECIMAL";
    case ColumnType::kVarchar:
      return "VARCHAR";
    case ColumnType::kChar:
      return "CHAR";
    case ColumnType::kDate:
      return "DATE";
    case ColumnType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

int32_t DefaultWidthBytes(ColumnType type, int32_t declared_length) {
  switch (type) {
    case ColumnType::kInt:
      return 4;
    case ColumnType::kBigInt:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kDecimal:
      return 9;
    case ColumnType::kVarchar:
      // Assume half-full variable-length strings.
      return declared_length > 0 ? (declared_length + 1) / 2 + 2 : 16;
    case ColumnType::kChar:
      return declared_length > 0 ? declared_length : 1;
    case ColumnType::kDate:
      return 4;
    case ColumnType::kBool:
      return 1;
  }
  return 8;
}

StatusOr<int32_t> Table::AddColumn(Column column) {
  const std::string key = ToLower(column.name);
  if (by_name_.contains(key)) {
    return Status::AlreadyExists("column '" + column.name + "' already in table '" +
                                 name_ + "'");
  }
  column.ordinal = static_cast<int32_t>(columns_.size());
  by_name_.emplace(key, column.ordinal);
  columns_.push_back(std::move(column));
  return columns_.back().ordinal;
}

int32_t Table::FindColumn(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? -1 : it->second;
}

int32_t Table::row_width_bytes() const {
  int32_t w = kRowOverheadBytes;
  for (const Column& c : columns_) w += c.width_bytes;
  return w;
}

uint64_t Table::data_pages() const {
  const uint64_t bytes = row_count_ * static_cast<uint64_t>(row_width_bytes());
  return bytes / kPageBytes + 1;
}

StatusOr<Table*> Catalog::CreateTable(const std::string& name,
                                      uint64_t row_count) {
  const std::string key = ToLower(name);
  if (by_name_.contains(key)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, name, row_count));
  by_name_.emplace(key, id);
  return tables_.back().get();
}

const Table* Catalog::FindTable(const std::string& name) const {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

Table* Catalog::FindMutableTable(const std::string& name) {
  auto it = by_name_.find(ToLower(name));
  return it == by_name_.end() ? nullptr : tables_[it->second].get();
}

ColumnId Catalog::ResolveColumn(const std::string& table_name,
                                const std::string& column_name) const {
  if (!table_name.empty()) {
    const Table* t = FindTable(table_name);
    if (t == nullptr) return ColumnId{};
    const int32_t ord = t->FindColumn(column_name);
    if (ord < 0) return ColumnId{};
    return ColumnId{t->id(), ord};
  }
  // Unqualified: search all tables; must be unambiguous.
  ColumnId found{};
  for (const auto& t : tables_) {
    const int32_t ord = t->FindColumn(column_name);
    if (ord >= 0) {
      if (found.valid()) return ColumnId{};  // ambiguous
      found = ColumnId{t->id(), ord};
    }
  }
  return found;
}

uint64_t Catalog::total_data_bytes() const {
  uint64_t total = 0;
  for (const auto& t : tables_) {
    total += t->row_count() * static_cast<uint64_t>(t->row_width_bytes());
  }
  return total;
}

std::string Catalog::ColumnDebugName(ColumnId id) const {
  if (!id.valid() || static_cast<size_t>(id.table) >= tables_.size()) {
    return "<invalid>";
  }
  const Table& t = *tables_[id.table];
  if (id.column < 0 || static_cast<size_t>(id.column) >= t.columns().size()) {
    return t.name() + ".<invalid>";
  }
  return t.name() + "." + t.column(id.column).name;
}

}  // namespace isum::catalog
