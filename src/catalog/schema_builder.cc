#include "catalog/schema_builder.h"

#include "common/check.h"

namespace isum::catalog {

SchemaBuilder::TableBuilder SchemaBuilder::Table(const std::string& name,
                                                 uint64_t row_count) {
  auto result = catalog_->CreateTable(name, row_count);
  ISUM_CHECK_MSG(result.ok(), "duplicate table in SchemaBuilder: " + name);
  return TableBuilder(result.value());
}

SchemaBuilder::TableBuilder& SchemaBuilder::TableBuilder::Add(
    const std::string& name, ColumnType type, int32_t declared_length,
    bool is_key) {
  Column c;
  c.name = name;
  c.type = type;
  c.width_bytes = DefaultWidthBytes(type, declared_length);
  c.is_key = is_key;
  auto result = table_->AddColumn(std::move(c));
  ISUM_CHECK_MSG(result.ok(), "duplicate column in SchemaBuilder: " + name);
  return *this;
}

SchemaBuilder::TableBuilder& SchemaBuilder::TableBuilder::Col(
    const std::string& name, ColumnType type, int32_t declared_length) {
  return Add(name, type, declared_length, /*is_key=*/false);
}

SchemaBuilder::TableBuilder& SchemaBuilder::TableBuilder::Key(
    const std::string& name, ColumnType type, int32_t declared_length) {
  return Add(name, type, declared_length, /*is_key=*/true);
}

}  // namespace isum::catalog
