#ifndef ISUM_CATALOG_SCHEMA_BUILDER_H_
#define ISUM_CATALOG_SCHEMA_BUILDER_H_

#include <string>

#include "catalog/catalog.h"

namespace isum::catalog {

/// Fluent helper for declaring schemas in generators and tests:
///
///   SchemaBuilder b(&catalog);
///   b.Table("orders", 15'000'000)
///       .Key("o_orderkey", ColumnType::kInt)
///       .Col("o_custkey", ColumnType::kInt)
///       .Col("o_comment", ColumnType::kVarchar, 79);
///
/// Errors (duplicate names) terminate the process via ISUM_CHECK — in every
/// build type, including NDEBUG; builders are only used with programmatic
/// schemas where duplicates are bugs.
class SchemaBuilder {
 public:
  class TableBuilder {
   public:
    explicit TableBuilder(Table* table) : table_(table) {}

    /// Adds a regular column; `declared_length` sizes VARCHAR/CHAR.
    TableBuilder& Col(const std::string& name, ColumnType type,
                      int32_t declared_length = 0);

    /// Adds a key (unique) column.
    TableBuilder& Key(const std::string& name, ColumnType type,
                      int32_t declared_length = 0);

    Table* table() { return table_; }

   private:
    TableBuilder& Add(const std::string& name, ColumnType type,
                      int32_t declared_length, bool is_key);
    Table* table_;
  };

  explicit SchemaBuilder(Catalog* catalog) : catalog_(catalog) {}

  /// Creates a table with `row_count` rows and returns a column builder.
  TableBuilder Table(const std::string& name, uint64_t row_count);

 private:
  Catalog* catalog_;
};

}  // namespace isum::catalog

#endif  // ISUM_CATALOG_SCHEMA_BUILDER_H_
