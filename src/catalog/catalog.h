#ifndef ISUM_CATALOG_CATALOG_H_
#define ISUM_CATALOG_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"

namespace isum::catalog {

/// Logical column types supported by the SQL subset and the cost model.
enum class ColumnType {
  kInt,
  kBigInt,
  kDouble,
  kDecimal,
  kVarchar,
  kChar,
  kDate,
  kBool,
};

/// Returns the SQL-ish spelling of a type ("INT", "VARCHAR", ...).
const char* ColumnTypeToString(ColumnType type);

/// Average stored width in bytes for a column of `type` with the given
/// declared length (used for VARCHAR/CHAR; ignored otherwise).
int32_t DefaultWidthBytes(ColumnType type, int32_t declared_length);

/// Identifies a table within a Catalog.
using TableId = int32_t;
inline constexpr TableId kInvalidTableId = -1;

/// Identifies a column as (table, ordinal) within a Catalog.
struct ColumnId {
  TableId table = kInvalidTableId;
  int32_t column = -1;

  bool valid() const { return table >= 0 && column >= 0; }
  friend bool operator==(const ColumnId&, const ColumnId&) = default;
  friend auto operator<=>(const ColumnId&, const ColumnId&) = default;
};

/// Schema metadata for one column.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt;
  int32_t ordinal = -1;
  /// Average width in bytes; drives row-size and index-size estimation.
  int32_t width_bytes = 4;
  /// True for primary-key-like columns (unique, used as join targets).
  bool is_key = false;
};

/// Schema metadata for one table, including its cardinality. The catalog is
/// statistics-only: the engine costs plans from metadata, never from rows
/// (see DESIGN.md §1 — the paper's metrics are optimizer-estimated too).
class Table {
 public:
  Table(TableId id, std::string name, uint64_t row_count)
      : id_(id), name_(std::move(name)), row_count_(row_count) {}

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t n) { row_count_ = n; }

  const std::vector<Column>& columns() const { return columns_; }
  const Column& column(int32_t ordinal) const { return columns_[ordinal]; }

  /// Adds a column; returns its ordinal. Fails on duplicate names.
  StatusOr<int32_t> AddColumn(Column column);

  /// Finds a column ordinal by case-insensitive name; -1 if absent.
  int32_t FindColumn(const std::string& name) const;

  /// Sum of column widths plus per-row overhead, in bytes.
  int32_t row_width_bytes() const;

  /// Heap size in 8 KiB pages given the current row count.
  uint64_t data_pages() const;

 private:
  TableId id_;
  std::string name_;
  uint64_t row_count_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, int32_t> by_name_;  // lower-cased name
};

/// A named collection of tables. Owns Table objects; TableIds are dense
/// indices assigned in creation order.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Creates a table; fails on duplicate (case-insensitive) names.
  StatusOr<Table*> CreateTable(const std::string& name, uint64_t row_count);

  /// Lookup by id; ISUM_DCHECKs validity (ids come from this catalog, so an
  /// out-of-range id is a caller bug, not an input error).
  const Table& table(TableId id) const {
    ISUM_DCHECK(id >= 0 && static_cast<size_t>(id) < tables_.size());
    return *tables_[id];
  }
  Table& mutable_table(TableId id) {
    ISUM_DCHECK(id >= 0 && static_cast<size_t>(id) < tables_.size());
    return *tables_[id];
  }

  /// Lookup by case-insensitive name; nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// Resolves "table.column" or bare column name (if unambiguous across
  /// `candidate_tables`); returns an invalid id if not resolvable.
  ColumnId ResolveColumn(const std::string& table_name,
                         const std::string& column_name) const;

  size_t num_tables() const { return tables_.size(); }
  /// Total data size of all tables in bytes (used for storage budgets).
  uint64_t total_data_bytes() const;

  /// Stable string identity "table.column" for a ColumnId.
  std::string ColumnDebugName(ColumnId id) const;

  const Column& column(ColumnId id) const {
    return tables_[id.table]->column(id.column);
  }

 private:
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> by_name_;  // lower-cased name
};

}  // namespace isum::catalog

namespace std {
template <>
struct hash<isum::catalog::ColumnId> {
  size_t operator()(const isum::catalog::ColumnId& id) const noexcept {
    return (static_cast<size_t>(id.table) << 20) ^
           static_cast<size_t>(id.column);
  }
};
}  // namespace std

#endif  // ISUM_CATALOG_CATALOG_H_
