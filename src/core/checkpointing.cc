#include "core/checkpointing.h"

#include <cstring>

#include "common/hash.h"
#include "obs/journal.h"

namespace isum::core {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t SelectionFingerprint(const CompressionState& state,
                              uint64_t algorithm, uint64_t update,
                              std::string_view entry) {
  uint64_t h = HashBytes(entry);
  h = HashCombine(h, algorithm);
  h = HashCombine(h, update);
  h = HashCombine(h, state.size());
  h = HashCombine(h, state.feature_space().size());
  for (size_t i = 0; i < state.size(); ++i) {
    h = HashCombine(h, DoubleBits(state.original_utility(i)));
    for (const SparseVector::Entry& e : state.original_features(i).entries()) {
      h = HashCombine(h, static_cast<uint64_t>(e.feature));
      h = HashCombine(h, DoubleBits(e.weight));
    }
  }
  return h;
}

void EncodeSelectionSnapshot(const SelectionSnapshot& snapshot,
                             CheckpointWriter* writer) {
  writer->BeginSection(kSelectionMetaSection);
  writer->AppendU64(snapshot.fingerprint);
  writer->AppendU64(snapshot.done ? 1 : 0);
  writer->AppendU64(static_cast<uint64_t>(snapshot.stop_reason));
  writer->AppendU64(snapshot.selected.size());
  writer->EndSection();
  writer->BeginSection(kSelectionIdsSection);
  std::vector<uint64_t> ids;
  ids.reserve(snapshot.selected.size());
  for (const size_t id : snapshot.selected) ids.push_back(id);
  writer->AppendU64Vector(ids);
  writer->EndSection();
  writer->BeginSection(kSelectionBenefitsSection);
  writer->AppendF64Vector(snapshot.benefits);
  writer->EndSection();
}

StatusOr<SelectionSnapshot> LoadSelectionSnapshot(
    CheckpointStore& store, uint64_t expected_fingerprint) {
  ISUM_ASSIGN_OR_RETURN(const CheckpointReader reader, store.LoadLatest());
  ISUM_ASSIGN_OR_RETURN(CheckpointCursor meta,
                        reader.Section(kSelectionMetaSection));
  SelectionSnapshot snapshot;
  ISUM_ASSIGN_OR_RETURN(snapshot.fingerprint, meta.ReadU64());
  if (snapshot.fingerprint != expected_fingerprint) {
    return Status::NotFound(
        "checkpoint fingerprint does not match this work unit");
  }
  ISUM_ASSIGN_OR_RETURN(const uint64_t done, meta.ReadU64());
  snapshot.done = done != 0;
  ISUM_ASSIGN_OR_RETURN(const uint64_t reason, meta.ReadU64());
  if (reason > static_cast<uint64_t>(StopReason::kFault)) {
    return Status::ParseError("checkpoint: stop_reason out of range");
  }
  snapshot.stop_reason = static_cast<StopReason>(reason);
  ISUM_ASSIGN_OR_RETURN(const uint64_t rounds, meta.ReadU64());
  ISUM_ASSIGN_OR_RETURN(CheckpointCursor ids_cursor,
                        reader.Section(kSelectionIdsSection));
  ISUM_ASSIGN_OR_RETURN(const std::vector<uint64_t> ids,
                        ids_cursor.ReadU64Vector());
  ISUM_ASSIGN_OR_RETURN(CheckpointCursor benefits_cursor,
                        reader.Section(kSelectionBenefitsSection));
  ISUM_ASSIGN_OR_RETURN(snapshot.benefits, benefits_cursor.ReadF64Vector());
  if (ids.size() != rounds || snapshot.benefits.size() != rounds) {
    return Status::ParseError("checkpoint: round count mismatch");
  }
  snapshot.selected.reserve(ids.size());
  for (const uint64_t id : ids) {
    snapshot.selected.push_back(static_cast<size_t>(id));
  }
  return snapshot;
}

SelectionCheckpointer::SelectionCheckpointer(
    std::unique_ptr<CheckpointStore> store, uint64_t fingerprint,
    uint64_t every_rounds, const char* phase)
    : store_(std::move(store)),
      fingerprint_(fingerprint),
      every_rounds_(every_rounds == 0 ? 1 : every_rounds),
      phase_(phase) {}

void SelectionCheckpointer::OnRound(const SelectionResult& result) {
  if (result.selected.size() < written_rounds_ + every_rounds_) return;
  Write(result, /*done=*/false);
}

void SelectionCheckpointer::OnDone(const SelectionResult& result) {
  Write(result, result.stop_reason == StopReason::kComplete);
}

void SelectionCheckpointer::Write(const SelectionResult& result, bool done) {
  SelectionSnapshot snapshot;
  snapshot.fingerprint = fingerprint_;
  snapshot.selected = result.selected;
  snapshot.benefits = result.selection_benefits;
  snapshot.done = done;
  snapshot.stop_reason = result.stop_reason;
  CheckpointWriter writer;
  EncodeSelectionSnapshot(snapshot, &writer);
  // Best-effort: a failed epoch write is counted (ckpt.write_failures) but
  // never fails the run — losing resumability must not lose the result.
  const uint64_t epoch = store_->next_epoch();
  if (!store_->WriteEpoch(writer).ok()) return;
  written_rounds_ = result.selected.size();
  obs::Journal::Global().CkptWrite(phase_, epoch, result.selected.size(),
                                   store_->last_write_bytes());
}

}  // namespace isum::core
