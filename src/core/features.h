#ifndef ISUM_CORE_FEATURES_H_
#define ISUM_CORE_FEATURES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace isum::core {

/// Interns indexable columns ("table.column") into dense feature ids shared
/// across a workload, so query features are small sorted sparse vectors.
class FeatureSpace {
 public:
  /// Returns the feature id for `column`, creating one if needed.
  int GetOrCreate(catalog::ColumnId column);

  /// Returns the feature id or -1 if the column was never interned.
  int Find(catalog::ColumnId column) const;

  /// The column behind feature id `id`.
  catalog::ColumnId column(int id) const { return columns_[id]; }

  size_t size() const { return columns_.size(); }

 private:
  std::unordered_map<catalog::ColumnId, int> ids_;
  std::vector<catalog::ColumnId> columns_;
};

/// A sparse non-negative feature vector: sorted (feature id, weight) pairs.
/// This is the paper's "query features" representation (Definition 6) and
/// also holds workload summary features (Definition 11).
class SparseVector {
 public:
  struct Entry {
    int feature;
    double weight;
  };

  SparseVector() = default;

  /// Builds from unsorted (feature, weight) pairs; duplicate features sum.
  static SparseVector FromPairs(std::vector<Entry> entries);

  /// Sets `feature` to `weight` (inserting or overwriting; 0 removes).
  void Set(int feature, double weight);

  /// Weight for `feature`, 0 if absent.
  double Get(int feature) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if every stored weight is zero (or the vector is empty).
  bool AllZero() const;

  /// Sum of weights.
  double Sum() const;
  /// Largest weight (0 if empty).
  double MaxWeight() const;

  /// this += other * scale (union of supports).
  void AddScaled(const SparseVector& other, double scale);

  /// this -= other * scale, clamping weights at 0.
  void SubtractScaledClamped(const SparseVector& other, double scale);

  /// Multiplies every weight by `scale`.
  void Scale(double scale);

  /// Subtracts `delta` from every *present* weight, clamping at 0
  /// (the paper's "weight subtract" update option, §4.3).
  void SubtractFromAllClamped(double delta);

  /// Zeroes every feature that is present with weight > 0 in `mask`
  /// (the paper's "feature remove/cover" update option, §4.3).
  void ZeroWhere(const SparseVector& mask);

  /// Drops explicit zero entries.
  void Prune();

 private:
  std::vector<Entry> entries_;  // sorted by feature id
};

/// Weighted Jaccard similarity (paper §4.2):
///   sum_c min(a_c, b_c) / sum_c max(a_c, b_c);  0 when both empty.
double WeightedJaccard(const SparseVector& a, const SparseVector& b);

/// Plain (binary) Jaccard over the supports of a and b (zero-weight entries
/// excluded).
double BinaryJaccard(const SparseVector& a, const SparseVector& b);

}  // namespace isum::core

#endif  // ISUM_CORE_FEATURES_H_
