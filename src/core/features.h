#ifndef ISUM_CORE_FEATURES_H_
#define ISUM_CORE_FEATURES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"

namespace isum::core {

/// Interns indexable columns ("table.column") into dense feature ids shared
/// across a workload, so query features are small sorted sparse vectors.
class FeatureSpace {
 public:
  /// Returns the feature id for `column`, creating one if needed.
  int GetOrCreate(catalog::ColumnId column);

  /// Returns the feature id or -1 if the column was never interned.
  int Find(catalog::ColumnId column) const;

  /// The column behind feature id `id`.
  catalog::ColumnId column(int id) const { return columns_[id]; }

  size_t size() const { return columns_.size(); }

 private:
  std::unordered_map<catalog::ColumnId, int> ids_;
  std::vector<catalog::ColumnId> columns_;
};

/// A sparse non-negative feature vector: sorted (feature id, weight) pairs.
/// This is the paper's "query features" representation (Definition 6) and
/// also holds workload summary features (Definition 11).
class SparseVector {
 public:
  struct Entry {
    int feature;
    double weight;
  };

  SparseVector() = default;

  /// Builds from unsorted (feature, weight) pairs; duplicate features sum.
  static SparseVector FromPairs(std::vector<Entry> entries);

  /// Sets `feature` to `weight` (inserting or overwriting; 0 removes).
  void Set(int feature, double weight);

  /// Weight for `feature`, 0 if absent.
  double Get(int feature) const;

  const std::vector<Entry>& entries() const { return entries_; }
  size_t nnz() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if every stored weight is zero (or the vector is empty).
  bool AllZero() const;

  /// Sum of weights.
  double Sum() const;
  /// Largest weight (0 if empty).
  double MaxWeight() const;

  /// this += other * scale (union of supports).
  void AddScaled(const SparseVector& other, double scale);

  /// Same, but merges into `*scratch` instead of a freshly allocated vector
  /// and swaps it in, so a caller that AddScales in a loop reuses one
  /// buffer's capacity across iterations instead of allocating per call.
  /// `scratch` holds this vector's previous entries afterwards.
  void AddScaled(const SparseVector& other, double scale,
                 std::vector<Entry>* scratch);

  /// this -= other * scale, clamping weights at 0.
  void SubtractScaledClamped(const SparseVector& other, double scale);

  /// Multiplies every weight by `scale`.
  void Scale(double scale);

  /// Subtracts `delta` from every *present* weight, clamping at 0
  /// (the paper's "weight subtract" update option, §4.3).
  void SubtractFromAllClamped(double delta);

  /// Zeroes every feature that is present with weight > 0 in `mask`
  /// (the paper's "feature remove/cover" update option, §4.3).
  void ZeroWhere(const SparseVector& mask);

  /// Drops explicit zero entries.
  void Prune();

 private:
  std::vector<Entry> entries_;  // sorted by feature id
};

/// Weighted Jaccard similarity (paper §4.2):
///   sum_c min(a_c, b_c) / sum_c max(a_c, b_c);  0 when both empty.
double WeightedJaccard(const SparseVector& a, const SparseVector& b);

/// Plain (binary) Jaccard over the supports of a and b (zero-weight entries
/// excluded).
double BinaryJaccard(const SparseVector& a, const SparseVector& b);

/// A reusable dense scatter buffer over the feature-id range: scatter one
/// sparse vector, probe any feature at O(1), clear only the touched slots.
/// This is the probe side of the one-vs-many Jaccard kernels — scattering
/// the shared operand once turns each pairwise sorted merge into a linear
/// gather over the other row's nonzeros.
class DenseScratch {
 public:
  /// Ensures slots for feature ids < num_features exist and are zero.
  /// Growing never shrinks, so one scratch serves a whole selection run.
  void Reserve(size_t num_features);

  /// Replaces the scattered vector (clearing the previous one) and caches
  /// its weight sum and positive-support size for the sum-identity kernels.
  void Scatter(const SparseVector& v);

  /// Low-level variant for CSR rows (see FeatureMatrix).
  void Scatter(const int32_t* features, const double* weights, size_t n);

  double Get(int feature) const {
    return static_cast<size_t>(feature) < dense_.size() ? dense_[feature] : 0.0;
  }
  /// Sum of the scattered weights (entry order).
  double sum() const { return sum_; }
  /// Number of scattered entries with weight > 0.
  size_t positive_count() const { return positive_; }

 private:
  std::vector<double> dense_;
  std::vector<int32_t> touched_;
  double sum_ = 0.0;
  size_t positive_ = 0;
};

/// Weighted Jaccard of the scattered query against one sparse row in
/// O(nnz(row)) via the sum identity max(a,b) = a + b - min(a,b):
///   min_sum  = sum_{c in row} min(row_c, q_c)   (gathered in feature order)
///   max_sum  = sum(q) + sum(row) - min_sum.
/// min_sum is bit-identical to the sorted-merge WeightedJaccard; max_sum may
/// differ by a few ulp (different summation order), which every caller
/// tolerates. Requires non-negative weights, as everywhere in this module.
double WeightedJaccardVsDense(const DenseScratch& query,
                              const SparseVector& row);

/// Binary Jaccard counterpart: intersection gathered over the row's positive
/// entries, union by inclusion-exclusion over the positive-support sizes.
double BinaryJaccardVsDense(const DenseScratch& query, const SparseVector& row);

/// An immutable CSR snapshot of many feature vectors in SoA layout
/// (int32 feature ids / double weights), built once so repeated one-vs-many
/// similarity scans stream two flat arrays instead of chasing n vectors.
class FeatureMatrix {
 public:
  /// Snapshots `rows`; feature ids must be < num_features (FeatureSpace
  /// size). Explicit zero-weight entries are kept, like SparseVector.
  static FeatureMatrix FromVectors(const std::vector<SparseVector>& rows,
                                   size_t num_features);

  size_t rows() const { return row_sums_.size(); }
  size_t num_features() const { return num_features_; }
  double RowSum(size_t r) const { return row_sums_[r]; }

  /// Scatters row r into `scratch` (the probe side of a one-vs-many scan).
  void ScatterRow(size_t r, DenseScratch* scratch) const;

  /// out[i - begin] = WeightedJaccard(query, row i) for i in [begin, end),
  /// one O(nnz(row)) gather per row. Same numerics as WeightedJaccardVsDense.
  void WeightedJaccardBatch(const DenseScratch& query, size_t begin, size_t end,
                            double* out) const;

  /// Binary-Jaccard counterpart of WeightedJaccardBatch.
  void BinaryJaccardBatch(const DenseScratch& query, size_t begin, size_t end,
                          double* out) const;

 private:
  std::vector<size_t> offsets_;      // rows() + 1 entries
  std::vector<int32_t> features_;    // concatenated row feature ids
  std::vector<double> weights_;      // parallel to features_
  std::vector<double> row_sums_;     // per-row weight sum (entry order)
  std::vector<int32_t> row_positive_;  // per-row positive-support size
  size_t num_features_ = 0;
};

}  // namespace isum::core

#endif  // ISUM_CORE_FEATURES_H_
