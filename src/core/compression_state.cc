#include "core/compression_state.h"

#include "obs/journal.h"

namespace isum::core {

CompressionState::CompressionState(const workload::Workload& workload,
                                   const FeaturizationOptions& feat_options,
                                   UtilityMode utility_mode) {
  Featurizer featurizer(workload.env().catalog, workload.env().stats, &space_);
  features_.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    features_.push_back(
        featurizer.Featurize(workload.query(i).bound, feat_options));
  }
  original_features_ = features_;
  utilities_ = ComputeUtilities(workload, utility_mode);
  original_utilities_ = utilities_;
  selected_.assign(workload.size(), false);
}

void CompressionState::SelectAndUpdate(size_t s, UpdateStrategy strategy) {
  selected_[s] = true;
  if (strategy == UpdateStrategy::kNone) return;
  // Snapshot the selected query's features: updates below must all observe
  // the same q_s. The dense scatter doubles as the snapshot and makes every
  // similarity below an O(nnz(q_j)) gather instead of a sorted merge.
  const SparseVector qs = features_[s];
  update_scratch_.Reserve(space_.size());
  update_scratch_.Scatter(qs);
  for (size_t j = 0; j < features_.size(); ++j) {
    if (selected_[j]) continue;
    const double sim = WeightedJaccardVsDense(update_scratch_, features_[j]);
    // Utility discount: U(q_j | q_s) = U(q_j) - U(q_j) * S(q_s, q_j).
    utilities_[j] -= utilities_[j] * sim;
    switch (strategy) {
      case UpdateStrategy::kUtilityOnly:
        break;
      case UpdateStrategy::kUtilityAndWeightSubtract:
        features_[j].SubtractFromAllClamped(sim);
        break;
      case UpdateStrategy::kUtilityAndFeatureZero:
        features_[j].ZeroWhere(qs);
        break;
      case UpdateStrategy::kNone:
        break;
    }
  }
}

bool CompressionState::AllUnselectedZeroed() const {
  for (size_t i = 0; i < features_.size(); ++i) {
    if (!selected_[i] && !features_[i].AllZero()) return false;
  }
  return true;
}

void CompressionState::ResetUnselectedFeatures() {
  if (obs::Journal::Global().enabled()) {
    size_t selected_so_far = 0;
    for (const bool s : selected_) selected_so_far += s ? 1 : 0;
    obs::Journal::Global().FeatureReset(selected_so_far);
  }
  for (size_t i = 0; i < features_.size(); ++i) {
    if (!selected_[i]) features_[i] = original_features_[i];
  }
}

void CompressionState::ReplaySelection(const std::vector<size_t>& ids,
                                       UpdateStrategy strategy) {
  for (const size_t id : ids) {
    // Equivalent to the loop-head reset in the greedy selects: `id` is
    // still unselected here, so "no eligible query" collapses to "every
    // unselected query's features are zero".
    if (AllUnselectedZeroed()) ResetUnselectedFeatures();
    SelectAndUpdate(id, strategy);
  }
}

std::vector<size_t> CompressionState::EligibleQueries() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < features_.size(); ++i) {
    if (!selected_[i] && !features_[i].AllZero()) out.push_back(i);
  }
  return out;
}

}  // namespace isum::core
