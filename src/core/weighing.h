#ifndef ISUM_CORE_WEIGHING_H_
#define ISUM_CORE_WEIGHING_H_

#include <vector>

#include "core/allpairs.h"
#include "core/compression_state.h"

namespace isum::core {

/// Weighing strategies compared in Figure 14 of the paper.
enum class WeighingStrategy {
  /// Every selected query gets equal weight.
  kNone,
  /// Reuse the conditional benefits recorded during greedy selection
  /// (§7 notes these overweight early selections).
  kSelectionBenefit,
  /// Re-calibrate benefits with a summary built from unselected queries
  /// only (Algorithm 5 without the template step).
  kRecalibrated,
  /// Template-based utility readjustment (Algorithm 4) + re-calibration
  /// (Algorithm 5). The paper's default.
  kRecalibratedWithTemplates,
};

/// Computes the weight of each selected query (§7, Algorithms 4 and 5).
/// Returned weights are parallel to `selection.selected` and normalized to
/// sum to 1.
std::vector<double> WeighSelectedQueries(const workload::Workload& workload,
                                         const SelectionResult& selection,
                                         const FeaturizationOptions& feat_options,
                                         UtilityMode utility_mode,
                                         WeighingStrategy strategy);

/// Same, but reuses the original (pre-update) features and utilities already
/// computed inside `state` instead of re-featurizing the workload — the
/// signals are identical, so the weights are too. This is the path
/// Isum::Compress takes; the signature above remains for callers that only
/// have a SelectionResult.
std::vector<double> WeighSelectedQueries(const workload::Workload& workload,
                                         const CompressionState& state,
                                         const SelectionResult& selection,
                                         WeighingStrategy strategy);

}  // namespace isum::core

#endif  // ISUM_CORE_WEIGHING_H_
