#include "core/utility.h"

#include <algorithm>

namespace isum::core {

double AverageSelectivity(const sql::BoundQuery& query) {
  double sum = 0.0;
  int count = 0;
  for (const auto& f : query.filters) {
    sum += std::clamp(f.selectivity, 0.0, 1.0);
    ++count;
  }
  for (const auto& j : query.joins) {
    sum += std::clamp(j.selectivity, 0.0, 1.0);
    ++count;
  }
  return count > 0 ? sum / count : 1.0;
}

double EstimatedReduction(const workload::QueryInfo& query, UtilityMode mode) {
  switch (mode) {
    case UtilityMode::kCostOnly:
      return query.base_cost;
    case UtilityMode::kCostTimesSelectivity:
      return (1.0 - AverageSelectivity(query.bound)) * query.base_cost;
  }
  return query.base_cost;
}

std::vector<double> ComputeUtilities(const workload::Workload& workload,
                                     UtilityMode mode) {
  std::vector<double> reductions(workload.size());
  double total = 0.0;
  for (size_t i = 0; i < workload.size(); ++i) {
    reductions[i] = std::max(0.0, EstimatedReduction(workload.query(i), mode));
    total += reductions[i];
  }
  if (total > 0.0) {
    for (double& r : reductions) r /= total;
  }
  return reductions;
}

}  // namespace isum::core
