#ifndef ISUM_CORE_ALLPAIRS_H_
#define ISUM_CORE_ALLPAIRS_H_

#include <vector>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "core/compression_state.h"

namespace isum::core {

class SelectionCheckpointer;  // core/checkpointing.h

/// Result of a greedy selection run: chosen query indices in selection order
/// and the conditional benefit each had at selection time.
struct SelectionResult {
  std::vector<size_t> selected;
  std::vector<double> selection_benefits;
  /// kComplete, or why selection stopped early with a best-so-far prefix
  /// (time budget, cancellation, injected fault — docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;
};

/// Algorithms 1–2 of the paper: in each of k rounds, scan all pairs to find
/// the query with the maximum conditional benefit, select it, and update the
/// remaining queries per `strategy` (resetting features when every
/// unselected query is fully covered). O(k·n²) similarity evaluations.
/// `budget` is observed once per round: on expiry the queries selected so
/// far are returned with stop_reason set (every prefix of a greedy run is a
/// valid compression).
///
/// When `pool` is non-null the per-round argmax is sharded across its
/// workers. Sharding is by fixed-width candidate blocks reduced in block
/// order with a strict comparison (lowest index wins ties), and each
/// candidate's influence sum runs entirely inside one block in ascending j
/// order — so results are bit-identical for every thread count, including
/// the serial pool-less path. If the budget fires mid-round, the round is
/// abandoned (never completed from a partial argmax) and the prefix selected
/// so far is returned.
///
/// `seed` is a checkpoint-restored prefix: the loop continues from it, and
/// the caller must already have replayed it into `state`
/// (CompressionState::ReplaySelection). `ckpt`, when non-null, is notified
/// after every completed round for periodic epoch writes.
SelectionResult AllPairsGreedySelect(CompressionState& state, size_t k,
                                     UpdateStrategy strategy,
                                     const TimeBudget& budget = {},
                                     ThreadPool* pool = nullptr,
                                     SelectionCheckpointer* ckpt = nullptr,
                                     SelectionResult seed = {});

}  // namespace isum::core

#endif  // ISUM_CORE_ALLPAIRS_H_
