#ifndef ISUM_CORE_ALLPAIRS_H_
#define ISUM_CORE_ALLPAIRS_H_

#include <vector>

#include "common/deadline.h"
#include "core/compression_state.h"

namespace isum::core {

/// Result of a greedy selection run: chosen query indices in selection order
/// and the conditional benefit each had at selection time.
struct SelectionResult {
  std::vector<size_t> selected;
  std::vector<double> selection_benefits;
  /// kComplete, or why selection stopped early with a best-so-far prefix
  /// (time budget, cancellation, injected fault — docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;
};

/// Algorithms 1–2 of the paper: in each of k rounds, scan all pairs to find
/// the query with the maximum conditional benefit, select it, and update the
/// remaining queries per `strategy` (resetting features when every
/// unselected query is fully covered). O(k·n²) similarity evaluations.
/// `budget` is observed once per round: on expiry the queries selected so
/// far are returned with stop_reason set (every prefix of a greedy run is a
/// valid compression).
SelectionResult AllPairsGreedySelect(CompressionState& state, size_t k,
                                     UpdateStrategy strategy,
                                     const TimeBudget& budget = {});

}  // namespace isum::core

#endif  // ISUM_CORE_ALLPAIRS_H_
