#ifndef ISUM_CORE_SIMILARITY_H_
#define ISUM_CORE_SIMILARITY_H_

#include <vector>

#include "core/features.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::core {

/// Similarity measures compared in Figure 7 of the paper. The production
/// measure is WeightedJaccard over query features (features.h); the two
/// below are the ablation baselines.

/// Jaccard over the sets of syntactic candidate indexes of the two queries
/// (Figure 7a). Requires candidate generation per call — slow by design.
double CandidateIndexJaccard(const sql::BoundQuery& a, const sql::BoundQuery& b,
                             const stats::StatsManager& stats);

/// Plain Jaccard over unweighted indexable-column sets (Figure 7b).
double IndexableColumnJaccard(const sql::BoundQuery& a,
                              const sql::BoundQuery& b);

/// Memoized pairwise similarity over a fixed set of queries. The free
/// functions above regenerate candidates / indexable columns for BOTH
/// queries on EVERY call, so an n² pairwise loop pays n² candidate
/// generations; this cache runs generation once per query at construction
/// (interning candidate keys into dense ids) and each pairwise call is then
/// a linear merge over two small sorted id sets.
class PairwiseSimilarityCache {
 public:
  /// Precomputes candidate-key and indexable-column sets for every query.
  /// `queries` must outlive nothing — the cache copies what it needs.
  PairwiseSimilarityCache(const std::vector<const sql::BoundQuery*>& queries,
                          const stats::StatsManager& stats);

  size_t size() const { return candidate_keys_.size(); }

  /// CandidateIndexJaccard(queries[a], queries[b], stats), memoized.
  double CandidateIndexJaccard(size_t a, size_t b) const;

  /// IndexableColumnJaccard(queries[a], queries[b]), memoized.
  double IndexableColumnJaccard(size_t a, size_t b) const;

 private:
  /// Per-query sorted interned candidate-key ids. Interning maps equal
  /// canonical key strings to equal ids, which is all Jaccard needs.
  std::vector<std::vector<int>> candidate_keys_;
  std::vector<std::vector<catalog::ColumnId>> indexable_;
};

}  // namespace isum::core

#endif  // ISUM_CORE_SIMILARITY_H_
