#ifndef ISUM_CORE_SIMILARITY_H_
#define ISUM_CORE_SIMILARITY_H_

#include "core/features.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::core {

/// Similarity measures compared in Figure 7 of the paper. The production
/// measure is WeightedJaccard over query features (features.h); the two
/// below are the ablation baselines.

/// Jaccard over the sets of syntactic candidate indexes of the two queries
/// (Figure 7a). Requires candidate generation per call — slow by design.
double CandidateIndexJaccard(const sql::BoundQuery& a, const sql::BoundQuery& b,
                             const stats::StatsManager& stats);

/// Plain Jaccard over unweighted indexable-column sets (Figure 7b).
double IndexableColumnJaccard(const sql::BoundQuery& a,
                              const sql::BoundQuery& b);

}  // namespace isum::core

#endif  // ISUM_CORE_SIMILARITY_H_
