#ifndef ISUM_CORE_ISUM_H_
#define ISUM_CORE_ISUM_H_

#include "common/checkpoint.h"
#include "core/summary.h"
#include "core/weighing.h"

namespace isum::core {

/// Which greedy algorithm drives selection.
enum class SelectionAlgorithm {
  /// Algorithms 1–2: O(k·n²) all-pairs comparisons.
  kAllPairs,
  /// Algorithm 3: O(k·n) via workload summary features. The default.
  kSummaryFeatures,
};

/// Full configuration of the ISUM compressor. The defaults are the paper's
/// default ISUM; `StatsVariant()` returns ISUM-S.
struct IsumOptions {
  FeaturizationOptions featurization;  // rule-based, table weights on
  UtilityMode utility_mode = UtilityMode::kCostOnly;
  SelectionAlgorithm algorithm = SelectionAlgorithm::kSummaryFeatures;
  UpdateStrategy update = UpdateStrategy::kUtilityAndFeatureZero;
  WeighingStrategy weighing = WeighingStrategy::kRecalibratedWithTemplates;
  /// Deadline/cancellation observed once per greedy round; on expiry
  /// Compress returns the queries selected so far with
  /// CompressedWorkload::stop_reason set. Unlimited by default; an
  /// unlimited budget falls back to the ambient one (common/deadline.h).
  TimeBudget budget;
  /// Worker threads for the all-pairs argmax (1 = serial). Results are
  /// bit-identical for every value (see AllPairsGreedySelect); the
  /// summary-features algorithm is O(k·n) and stays serial.
  int num_threads = 1;
  /// Crash-safe checkpoint/resume: when enabled (or when an ambient config
  /// is installed via --checkpoint=), selection writes an epoch every
  /// `checkpoint.every_rounds` rounds and resumes from the newest valid
  /// epoch whose fingerprint matches this workload/options combination. A
  /// resumed run is bit-identical to an uninterrupted one
  /// (core/checkpointing.h, docs/ROBUSTNESS.md).
  CheckpointConfig checkpoint;

  /// ISUM-S: stats-based column weights + selectivity-aware utility.
  static IsumOptions StatsVariant() {
    IsumOptions o;
    o.featurization.scheme = WeightingScheme::kStatsBased;
    o.utility_mode = UtilityMode::kCostTimesSelectivity;
    return o;
  }

  /// ISUM-NoTable (Figure 10): stats-based weights without table sizes.
  static IsumOptions NoTableVariant() {
    IsumOptions o = StatsVariant();
    o.featurization.use_table_weight = false;
    return o;
  }
};

/// The ISUM workload compressor (the paper's contribution): selects k
/// queries maximizing estimated benefit and weighs them for the tuner.
class Isum {
 public:
  explicit Isum(const workload::Workload* workload, IsumOptions options = {})
      : workload_(workload), options_(options) {}

  /// Compresses to (at most) k weighted queries. May return fewer than k
  /// when the remaining queries have no indexable columns at all (nothing
  /// an index tuner could use them for — Algorithm 1 skips zero-feature
  /// queries, and resetting cannot revive a query that never had features),
  /// or when the time budget expires mid-selection — then the result is the
  /// best-so-far prefix with stop_reason set (always a valid compression).
  workload::CompressedWorkload Compress(size_t k) const;

  /// Runs only the selection stage (exposed for ablation benches).
  SelectionResult Select(size_t k) const;

  /// Builds a fresh compression state for this workload/options (exposed for
  /// correlation benches, Figures 5–8).
  CompressionState MakeState() const {
    return CompressionState(*workload_, options_.featurization,
                            options_.utility_mode);
  }

  const IsumOptions& options() const { return options_; }

 private:
  const workload::Workload* workload_;
  IsumOptions options_;
};

}  // namespace isum::core

#endif  // ISUM_CORE_ISUM_H_
