#include "core/incremental.h"

#include <algorithm>

#include "common/check.h"
#include "obs/trace.h"

namespace isum::core {

IncrementalIsum::IncrementalIsum(const workload::Workload* workload, size_t k,
                                 IsumOptions options)
    : workload_(workload),
      k_(k),
      options_(options),
      featurizer_(workload->env().catalog, workload->env().stats, &space_) {}

double IncrementalIsum::Benefit(const Candidate& candidate) const {
  if (total_delta_ <= 0.0) return 0.0;
  const double utility = candidate.delta / total_delta_;
  // V' excludes the candidate's own contribution and renormalizes the
  // remaining utility mass (the incremental analogue of Algorithm 3,
  // lines 9-12, with Δ-weighted sums scaled into utility units). Evaluated
  // in closed form against the dense summary mirror: V'_c =
  // scale · clamp(V_c − Δ·of_c) needs only the candidate's own features,
  // and the Jaccard denominator follows from the sum identity
  // (see WeightedJaccardVsDense). ZeroWhere keeps zeroed entries, so
  // candidate.features and candidate.original_features share one support,
  // walked in lockstep below.
  const double remaining = total_delta_ - candidate.delta;
  const double scale = remaining > 1e-15 ? 1.0 / remaining : 0.0;
  const auto& current = candidate.features.entries();
  const auto& original = candidate.original_features.entries();
  double min_sum = 0.0;
  double current_sum = 0.0;
  double covered = 0.0;    // summary mass on the candidate's support
  double covered_v = 0.0;  // that mass after subtract-clamp and rescale
  size_t i = 0, j = 0;
  while (i < current.size() && j < original.size()) {
    if (current[i].feature < original[j].feature) {
      current_sum += current[i].weight;
      min_sum += std::min(current[i].weight, Dense(current[i].feature) * scale);
      ++i;
      continue;
    }
    if (original[j].feature < current[i].feature) {
      const double v = Dense(original[j].feature);
      const double v_prime =
          std::max(0.0, v + original[j].weight * (-candidate.delta)) * scale;
      covered += v;
      covered_v += v_prime;
      ++j;
      continue;
    }
    const double v = Dense(current[i].feature);
    const double v_prime =
        std::max(0.0, v + original[j].weight * (-candidate.delta)) * scale;
    current_sum += current[i].weight;
    min_sum += std::min(current[i].weight, v_prime);
    covered += v;
    covered_v += v_prime;
    ++i;
    ++j;
  }
  for (; i < current.size(); ++i) {
    current_sum += current[i].weight;
    min_sum += std::min(current[i].weight, Dense(current[i].feature) * scale);
  }
  for (; j < original.size(); ++j) {
    const double v = Dense(original[j].feature);
    covered += v;
    covered_v += std::max(0.0, v + original[j].weight * (-candidate.delta)) *
                 scale;
  }
  const double v_prime_sum = (summary_total_ - covered) * scale + covered_v;
  const double max_sum = current_sum + v_prime_sum - min_sum;
  return utility + (max_sum > 0.0 ? min_sum / max_sum : 0.0);
}

void IncrementalIsum::Reselect(std::vector<Candidate> pool) {
  ISUM_TRACE_SPAN("incremental/reselect");
  // Restore current features before greedy re-runs its conditional updates.
  for (Candidate& c : pool) c.features = c.original_features;

  std::vector<Candidate> chosen;
  std::vector<bool> taken(pool.size(), false);
  while (chosen.size() < k_) {
    double best_benefit = -1.0;
    size_t best = pool.size();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (taken[i] || pool[i].features.AllZero()) continue;
      const double b = Benefit(pool[i]);
      if (b > best_benefit) {
        best_benefit = b;
        best = i;
      }
    }
    if (best == pool.size()) {
      // Every remaining candidate is fully covered: reset features to their
      // originals and retry (Algorithm 2, line 12), unless nothing is left.
      bool any_left = false;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!taken[i]) {
          pool[i].features = pool[i].original_features;
          any_left = any_left || !pool[i].features.AllZero();
        }
      }
      if (!any_left) break;
      continue;
    }
    taken[best] = true;
    Candidate picked = pool[best];
    picked.last_benefit = best_benefit;
    // Conditional update within the pool (feature-zero, §4.3).
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!taken[i]) pool[i].features.ZeroWhere(picked.features);
    }
    chosen.push_back(std::move(picked));
  }
  selected_ = std::move(chosen);
}

void IncrementalIsum::ObserveBatch(size_t begin, size_t end) {
  ISUM_TRACE_SPAN("incremental/observe-batch");
  ISUM_CHECK(end <= workload_->size());
  std::vector<Candidate> pool = selected_;
  for (size_t i = begin; i < end; ++i) {
    const workload::QueryInfo& q = workload_->query(i);
    Candidate c;
    c.query_index = i;
    c.original_features =
        featurizer_.Featurize(q.bound, options_.featurization);
    c.features = c.original_features;
    c.delta = std::max(0.0, EstimatedReduction(q, options_.utility_mode));
    // Global accumulators cover every observed query, selected or not.
    total_delta_ += c.delta;
    summary_.AddScaled(c.original_features, c.delta, &add_scratch_);
    for (const SparseVector::Entry& e : c.original_features.entries()) {
      if (static_cast<size_t>(e.feature) >= summary_dense_.size()) {
        summary_dense_.resize(static_cast<size_t>(e.feature) + 1, 0.0);
      }
      summary_dense_[e.feature] += e.weight * c.delta;
      summary_total_ += e.weight * c.delta;
    }
    pool.push_back(std::move(c));
    ++observed_;
  }
  Reselect(std::move(pool));
}

workload::CompressedWorkload IncrementalIsum::Current() const {
  workload::CompressedWorkload out;
  for (const Candidate& c : selected_) {
    out.entries.push_back({c.query_index, std::max(1e-12, c.last_benefit)});
  }
  out.NormalizeWeights();
  return out;
}

}  // namespace isum::core
