#include "core/weighing.h"

#include <algorithm>
#include <unordered_map>

namespace isum::core {

namespace {

std::vector<double> UniformWeights(size_t k) {
  return std::vector<double>(k, k > 0 ? 1.0 / static_cast<double>(k) : 0.0);
}

std::vector<double> Normalized(std::vector<double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return UniformWeights(weights.size());
  for (double& w : weights) w /= total;
  return weights;
}

/// Shared body of the two public overloads: takes ownership of the original
/// (pre-update) per-query signals; `num_features` bounds the feature ids.
std::vector<double> WeighWithSignals(const workload::Workload& workload,
                                     const SelectionResult& selection,
                                     std::vector<SparseVector> features,
                                     std::vector<double> utilities,
                                     size_t num_features,
                                     WeighingStrategy strategy) {
  const size_t k = selection.selected.size();

  // Wu: the pool the summary is built from. Starts as W minus the selected
  // queries; the template step below removes whole matching templates.
  std::vector<bool> in_wu(workload.size(), true);
  for (size_t s : selection.selected) in_wu[s] = false;

  if (strategy == WeighingStrategy::kRecalibratedWithTemplates) {
    // --- Algorithm 4: template-based utility computation. ---
    struct TemplateAgg {
      double freq_in_wk = 0.0;
      double total_utility = 0.0;
    };
    std::unordered_map<uint64_t, TemplateAgg> agg;
    for (size_t s : selection.selected) {
      agg[workload.query(s).template_hash].freq_in_wk += 1.0;
    }
    for (size_t i = 0; i < workload.size(); ++i) {
      auto it = agg.find(workload.query(i).template_hash);
      if (it == agg.end()) continue;
      it->second.total_utility += utilities[i];
      in_wu[i] = false;  // W' drops all queries matching a selected template
    }
    for (size_t s : selection.selected) {
      const TemplateAgg& a = agg[workload.query(s).template_hash];
      utilities[s] = a.total_utility / std::max(1.0, a.freq_in_wk);
    }
  }

  // --- Algorithm 5: iterative re-calibration against the Wu summary. ---
  // The summary lives in a dense accumulator (rebuilt per round, like the
  // sparse AddScaled chain it replaces and bit-identical to it), and the
  // update loop probes the chosen query through a dense scatter; both turn
  // O(k·n) sorted merges into linear gathers.
  std::vector<size_t> remaining = selection.selected;
  std::unordered_map<size_t, double> raw_weight;
  std::vector<double> summary(num_features, 0.0);
  DenseScratch chosen_scratch;
  chosen_scratch.Reserve(num_features);
  while (!remaining.empty()) {
    // Summary over current Wu signals.
    std::fill(summary.begin(), summary.end(), 0.0);
    for (size_t i = 0; i < workload.size(); ++i) {
      if (!in_wu[i]) continue;
      const double u = utilities[i];
      for (const SparseVector::Entry& e : features[i].entries()) {
        summary[e.feature] += e.weight * u;
      }
    }
    double summary_total = 0.0;
    for (double v : summary) summary_total += v;

    double max_benefit = -1.0;
    size_t arg = 0;
    for (size_t r = 0; r < remaining.size(); ++r) {
      const size_t qi = remaining[r];
      double min_sum = 0.0, query_sum = 0.0;
      for (const SparseVector::Entry& e : features[qi].entries()) {
        query_sum += e.weight;
        min_sum += std::min(e.weight, summary[e.feature]);
      }
      const double max_sum = query_sum + summary_total - min_sum;
      const double benefit =
          utilities[qi] + (max_sum > 0.0 ? min_sum / max_sum : 0.0);
      if (benefit > max_benefit) {
        max_benefit = benefit;
        arg = r;
      }
    }
    const size_t chosen = remaining[arg];
    raw_weight[chosen] = std::max(0.0, max_benefit);
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(arg));

    // UpdateWorkload(Wu, chosen): feature-zero + utility discount.
    chosen_scratch.Scatter(features[chosen]);
    for (size_t i = 0; i < workload.size(); ++i) {
      if (!in_wu[i]) continue;
      const double sim = WeightedJaccardVsDense(chosen_scratch, features[i]);
      utilities[i] -= utilities[i] * sim;
      features[i].ZeroWhere(features[chosen]);
    }
  }

  std::vector<double> weights(k, 0.0);
  for (size_t r = 0; r < k; ++r) {
    weights[r] = raw_weight[selection.selected[r]];
  }
  return Normalized(std::move(weights));
}

}  // namespace

std::vector<double> WeighSelectedQueries(const workload::Workload& workload,
                                         const SelectionResult& selection,
                                         const FeaturizationOptions& feat_options,
                                         UtilityMode utility_mode,
                                         WeighingStrategy strategy) {
  const size_t k = selection.selected.size();
  if (k == 0) return {};
  if (strategy == WeighingStrategy::kNone) return UniformWeights(k);
  if (strategy == WeighingStrategy::kSelectionBenefit) {
    return Normalized(selection.selection_benefits);
  }

  // Fresh signals (original features and utilities).
  FeatureSpace space;
  Featurizer featurizer(workload.env().catalog, workload.env().stats, &space);
  std::vector<SparseVector> features(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    features[i] = featurizer.Featurize(workload.query(i).bound, feat_options);
  }
  std::vector<double> utilities = ComputeUtilities(workload, utility_mode);
  return WeighWithSignals(workload, selection, std::move(features),
                          std::move(utilities), space.size(), strategy);
}

std::vector<double> WeighSelectedQueries(const workload::Workload& workload,
                                         const CompressionState& state,
                                         const SelectionResult& selection,
                                         WeighingStrategy strategy) {
  const size_t k = selection.selected.size();
  if (k == 0) return {};
  if (strategy == WeighingStrategy::kNone) return UniformWeights(k);
  if (strategy == WeighingStrategy::kSelectionBenefit) {
    return Normalized(selection.selection_benefits);
  }

  // Original signals already live in the state; copy them (the recalibration
  // mutates both) instead of re-featurizing the whole workload.
  std::vector<SparseVector> features(workload.size());
  std::vector<double> utilities(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    features[i] = state.original_features(i);
    utilities[i] = state.original_utility(i);
  }
  return WeighWithSignals(workload, selection, std::move(features),
                          std::move(utilities), state.feature_space().size(),
                          strategy);
}

}  // namespace isum::core
