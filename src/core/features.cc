#include "core/features.h"

#include <algorithm>
#include <cmath>

namespace isum::core {

int FeatureSpace::GetOrCreate(catalog::ColumnId column) {
  auto it = ids_.find(column);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(columns_.size());
  ids_.emplace(column, id);
  columns_.push_back(column);
  return id;
}

int FeatureSpace::Find(catalog::ColumnId column) const {
  auto it = ids_.find(column);
  return it == ids_.end() ? -1 : it->second;
}

SparseVector SparseVector::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.feature < b.feature; });
  SparseVector out;
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().feature == e.feature) {
      out.entries_.back().weight += e.weight;
    } else {
      out.entries_.push_back(e);
    }
  }
  return out;
}

void SparseVector::Set(int feature, double weight) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), feature,
      [](const Entry& e, int f) { return e.feature < f; });
  if (it != entries_.end() && it->feature == feature) {
    if (weight == 0.0) {
      entries_.erase(it);
    } else {
      it->weight = weight;
    }
  } else if (weight != 0.0) {
    entries_.insert(it, Entry{feature, weight});
  }
}

double SparseVector::Get(int feature) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), feature,
      [](const Entry& e, int f) { return e.feature < f; });
  return (it != entries_.end() && it->feature == feature) ? it->weight : 0.0;
}

bool SparseVector::AllZero() const {
  for (const Entry& e : entries_) {
    if (e.weight > 0.0) return false;
  }
  return true;
}

double SparseVector::Sum() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.weight;
  return s;
}

double SparseVector::MaxWeight() const {
  double m = 0.0;
  for (const Entry& e : entries_) m = std::max(m, e.weight);
  return m;
}

void SparseVector::AddScaled(const SparseVector& other, double scale) {
  std::vector<Entry> scratch;
  AddScaled(other, scale, &scratch);
}

void SparseVector::AddScaled(const SparseVector& other, double scale,
                             std::vector<Entry>* scratch) {
  std::vector<Entry>& merged = *scratch;
  merged.clear();
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].feature < other.entries_[j].feature)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].feature < entries_[i].feature) {
      merged.push_back(Entry{other.entries_[j].feature,
                             other.entries_[j].weight * scale});
      ++j;
    } else {
      merged.push_back(Entry{entries_[i].feature,
                             entries_[i].weight + other.entries_[j].weight * scale});
      ++i;
      ++j;
    }
  }
  entries_.swap(merged);
}

void SparseVector::SubtractScaledClamped(const SparseVector& other,
                                         double scale) {
  AddScaled(other, -scale);
  for (Entry& e : entries_) e.weight = std::max(0.0, e.weight);
}

void SparseVector::Scale(double scale) {
  for (Entry& e : entries_) e.weight *= scale;
}

void SparseVector::SubtractFromAllClamped(double delta) {
  for (Entry& e : entries_) e.weight = std::max(0.0, e.weight - delta);
}

void SparseVector::ZeroWhere(const SparseVector& mask) {
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < mask.entries_.size()) {
    if (entries_[i].feature < mask.entries_[j].feature) {
      ++i;
    } else if (mask.entries_[j].feature < entries_[i].feature) {
      ++j;
    } else {
      if (mask.entries_[j].weight > 0.0) entries_[i].weight = 0.0;
      ++i;
      ++j;
    }
  }
}

void SparseVector::Prune() {
  std::erase_if(entries_, [](const Entry& e) { return e.weight == 0.0; });
}

double WeightedJaccard(const SparseVector& a, const SparseVector& b) {
  double min_sum = 0.0, max_sum = 0.0;
  const auto& ae = a.entries();
  const auto& be = b.entries();
  size_t i = 0, j = 0;
  while (i < ae.size() || j < be.size()) {
    if (j >= be.size() || (i < ae.size() && ae[i].feature < be[j].feature)) {
      max_sum += ae[i].weight;
      ++i;
    } else if (i >= ae.size() || be[j].feature < ae[i].feature) {
      max_sum += be[j].weight;
      ++j;
    } else {
      min_sum += std::min(ae[i].weight, be[j].weight);
      max_sum += std::max(ae[i].weight, be[j].weight);
      ++i;
      ++j;
    }
  }
  return max_sum > 0.0 ? min_sum / max_sum : 0.0;
}

void DenseScratch::Reserve(size_t num_features) {
  if (dense_.size() < num_features) dense_.resize(num_features, 0.0);
}

void DenseScratch::Scatter(const SparseVector& v) {
  for (int32_t f : touched_) dense_[f] = 0.0;
  touched_.clear();
  sum_ = 0.0;
  positive_ = 0;
  for (const SparseVector::Entry& e : v.entries()) {
    if (static_cast<size_t>(e.feature) >= dense_.size()) {
      dense_.resize(static_cast<size_t>(e.feature) + 1, 0.0);
    }
    dense_[e.feature] = e.weight;
    touched_.push_back(e.feature);
    sum_ += e.weight;
    if (e.weight > 0.0) ++positive_;
  }
}

void DenseScratch::Scatter(const int32_t* features, const double* weights,
                           size_t n) {
  for (int32_t f : touched_) dense_[f] = 0.0;
  touched_.clear();
  sum_ = 0.0;
  positive_ = 0;
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<size_t>(features[i]) >= dense_.size()) {
      dense_.resize(static_cast<size_t>(features[i]) + 1, 0.0);
    }
    dense_[features[i]] = weights[i];
    touched_.push_back(features[i]);
    sum_ += weights[i];
    if (weights[i] > 0.0) ++positive_;
  }
}

double WeightedJaccardVsDense(const DenseScratch& query,
                              const SparseVector& row) {
  double min_sum = 0.0, row_sum = 0.0;
  for (const SparseVector::Entry& e : row.entries()) {
    row_sum += e.weight;
    min_sum += std::min(e.weight, query.Get(e.feature));
  }
  const double max_sum = query.sum() + row_sum - min_sum;
  return max_sum > 0.0 ? min_sum / max_sum : 0.0;
}

double BinaryJaccardVsDense(const DenseScratch& query,
                            const SparseVector& row) {
  size_t inter = 0, row_positive = 0;
  for (const SparseVector::Entry& e : row.entries()) {
    if (e.weight <= 0.0) continue;
    ++row_positive;
    if (query.Get(e.feature) > 0.0) ++inter;
  }
  const size_t uni = query.positive_count() + row_positive - inter;
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

FeatureMatrix FeatureMatrix::FromVectors(const std::vector<SparseVector>& rows,
                                         size_t num_features) {
  FeatureMatrix m;
  m.num_features_ = num_features;
  size_t total = 0;
  for (const SparseVector& v : rows) total += v.nnz();
  m.offsets_.reserve(rows.size() + 1);
  m.features_.reserve(total);
  m.weights_.reserve(total);
  m.row_sums_.reserve(rows.size());
  m.row_positive_.reserve(rows.size());
  m.offsets_.push_back(0);
  for (const SparseVector& v : rows) {
    double sum = 0.0;
    int32_t positive = 0;
    for (const SparseVector::Entry& e : v.entries()) {
      m.features_.push_back(e.feature);
      m.weights_.push_back(e.weight);
      sum += e.weight;
      if (e.weight > 0.0) ++positive;
    }
    m.offsets_.push_back(m.features_.size());
    m.row_sums_.push_back(sum);
    m.row_positive_.push_back(positive);
  }
  return m;
}

void FeatureMatrix::ScatterRow(size_t r, DenseScratch* scratch) const {
  scratch->Reserve(num_features_);
  scratch->Scatter(features_.data() + offsets_[r],
                   weights_.data() + offsets_[r],
                   offsets_[r + 1] - offsets_[r]);
}

void FeatureMatrix::WeightedJaccardBatch(const DenseScratch& query,
                                         size_t begin, size_t end,
                                         double* out) const {
  const double q_sum = query.sum();
  for (size_t r = begin; r < end; ++r) {
    double min_sum = 0.0;
    for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      min_sum += std::min(weights_[i], query.Get(features_[i]));
    }
    const double max_sum = q_sum + row_sums_[r] - min_sum;
    out[r - begin] = max_sum > 0.0 ? min_sum / max_sum : 0.0;
  }
}

void FeatureMatrix::BinaryJaccardBatch(const DenseScratch& query, size_t begin,
                                       size_t end, double* out) const {
  const size_t q_positive = query.positive_count();
  for (size_t r = begin; r < end; ++r) {
    size_t inter = 0;
    for (size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      if (weights_[i] > 0.0 && query.Get(features_[i]) > 0.0) ++inter;
    }
    const size_t uni =
        q_positive + static_cast<size_t>(row_positive_[r]) - inter;
    out[r - begin] =
        uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
  }
}

double BinaryJaccard(const SparseVector& a, const SparseVector& b) {
  const auto& ae = a.entries();
  const auto& be = b.entries();
  size_t i = 0, j = 0;
  double inter = 0.0, uni = 0.0;
  while (i < ae.size() || j < be.size()) {
    const bool a_live = i < ae.size();
    const bool b_live = j < be.size();
    if (b_live && (!a_live || be[j].feature < ae[i].feature)) {
      if (be[j].weight > 0.0) uni += 1.0;
      ++j;
    } else if (a_live && (!b_live || ae[i].feature < be[j].feature)) {
      if (ae[i].weight > 0.0) uni += 1.0;
      ++i;
    } else {
      const bool av = ae[i].weight > 0.0;
      const bool bv = be[j].weight > 0.0;
      if (av || bv) uni += 1.0;
      if (av && bv) inter += 1.0;
      ++i;
      ++j;
    }
  }
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace isum::core
