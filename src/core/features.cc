#include "core/features.h"

#include <algorithm>
#include <cmath>

namespace isum::core {

int FeatureSpace::GetOrCreate(catalog::ColumnId column) {
  auto it = ids_.find(column);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(columns_.size());
  ids_.emplace(column, id);
  columns_.push_back(column);
  return id;
}

int FeatureSpace::Find(catalog::ColumnId column) const {
  auto it = ids_.find(column);
  return it == ids_.end() ? -1 : it->second;
}

SparseVector SparseVector::FromPairs(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.feature < b.feature; });
  SparseVector out;
  for (const Entry& e : entries) {
    if (!out.entries_.empty() && out.entries_.back().feature == e.feature) {
      out.entries_.back().weight += e.weight;
    } else {
      out.entries_.push_back(e);
    }
  }
  return out;
}

void SparseVector::Set(int feature, double weight) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), feature,
      [](const Entry& e, int f) { return e.feature < f; });
  if (it != entries_.end() && it->feature == feature) {
    if (weight == 0.0) {
      entries_.erase(it);
    } else {
      it->weight = weight;
    }
  } else if (weight != 0.0) {
    entries_.insert(it, Entry{feature, weight});
  }
}

double SparseVector::Get(int feature) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), feature,
      [](const Entry& e, int f) { return e.feature < f; });
  return (it != entries_.end() && it->feature == feature) ? it->weight : 0.0;
}

bool SparseVector::AllZero() const {
  for (const Entry& e : entries_) {
    if (e.weight > 0.0) return false;
  }
  return true;
}

double SparseVector::Sum() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.weight;
  return s;
}

double SparseVector::MaxWeight() const {
  double m = 0.0;
  for (const Entry& e : entries_) m = std::max(m, e.weight);
  return m;
}

void SparseVector::AddScaled(const SparseVector& other, double scale) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].feature < other.entries_[j].feature)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].feature < entries_[i].feature) {
      merged.push_back(Entry{other.entries_[j].feature,
                             other.entries_[j].weight * scale});
      ++j;
    } else {
      merged.push_back(Entry{entries_[i].feature,
                             entries_[i].weight + other.entries_[j].weight * scale});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void SparseVector::SubtractScaledClamped(const SparseVector& other,
                                         double scale) {
  AddScaled(other, -scale);
  for (Entry& e : entries_) e.weight = std::max(0.0, e.weight);
}

void SparseVector::Scale(double scale) {
  for (Entry& e : entries_) e.weight *= scale;
}

void SparseVector::SubtractFromAllClamped(double delta) {
  for (Entry& e : entries_) e.weight = std::max(0.0, e.weight - delta);
}

void SparseVector::ZeroWhere(const SparseVector& mask) {
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < mask.entries_.size()) {
    if (entries_[i].feature < mask.entries_[j].feature) {
      ++i;
    } else if (mask.entries_[j].feature < entries_[i].feature) {
      ++j;
    } else {
      if (mask.entries_[j].weight > 0.0) entries_[i].weight = 0.0;
      ++i;
      ++j;
    }
  }
}

void SparseVector::Prune() {
  std::erase_if(entries_, [](const Entry& e) { return e.weight == 0.0; });
}

double WeightedJaccard(const SparseVector& a, const SparseVector& b) {
  double min_sum = 0.0, max_sum = 0.0;
  const auto& ae = a.entries();
  const auto& be = b.entries();
  size_t i = 0, j = 0;
  while (i < ae.size() || j < be.size()) {
    if (j >= be.size() || (i < ae.size() && ae[i].feature < be[j].feature)) {
      max_sum += ae[i].weight;
      ++i;
    } else if (i >= ae.size() || be[j].feature < ae[i].feature) {
      max_sum += be[j].weight;
      ++j;
    } else {
      min_sum += std::min(ae[i].weight, be[j].weight);
      max_sum += std::max(ae[i].weight, be[j].weight);
      ++i;
      ++j;
    }
  }
  return max_sum > 0.0 ? min_sum / max_sum : 0.0;
}

double BinaryJaccard(const SparseVector& a, const SparseVector& b) {
  const auto& ae = a.entries();
  const auto& be = b.entries();
  size_t i = 0, j = 0;
  double inter = 0.0, uni = 0.0;
  while (i < ae.size() || j < be.size()) {
    const bool a_live = i < ae.size();
    const bool b_live = j < be.size();
    if (b_live && (!a_live || be[j].feature < ae[i].feature)) {
      if (be[j].weight > 0.0) uni += 1.0;
      ++j;
    } else if (a_live && (!b_live || ae[i].feature < be[j].feature)) {
      if (ae[i].weight > 0.0) uni += 1.0;
      ++i;
    } else {
      const bool av = ae[i].weight > 0.0;
      const bool bv = be[j].weight > 0.0;
      if (av || bv) uni += 1.0;
      if (av && bv) inter += 1.0;
      ++i;
      ++j;
    }
  }
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace isum::core
