#ifndef ISUM_CORE_BENEFIT_H_
#define ISUM_CORE_BENEFIT_H_

#include <cstddef>

#include "core/compression_state.h"

namespace isum::core {

/// Influence of query i on query j under the current state (Definition 3):
/// F_{q_i}(q_j) = S(q_i, q_j) × U(q_j).
double Influence(const CompressionState& state, size_t i, size_t j);

/// Benefit of a single query (Definition 4 / conditional benefit,
/// Definition 10, under the current state): its (discounted) utility plus
/// its influence over the other unselected queries.
double ConditionalBenefit(const CompressionState& state, size_t i);

/// Influence of query s on the whole workload, F_{q_s}(W): the sum of its
/// influence over all other unselected queries (the quantity the summary
/// features approximate, §6.1).
double InfluenceOnWorkload(const CompressionState& state, size_t s);

}  // namespace isum::core

#endif  // ISUM_CORE_BENEFIT_H_
