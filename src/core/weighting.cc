#include "core/weighting.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "advisor/candidate_generation.h"

namespace isum::core {

namespace {

/// Raw (un-normalized) weight per indexable column of one query.
using RawWeights = std::unordered_map<catalog::ColumnId, double>;

/// w_table(t) = n(t) / sum over the query's tables of n(t').
std::unordered_map<catalog::TableId, double> TableWeights(
    const sql::BoundQuery& query, const catalog::Catalog& catalog,
    bool enabled) {
  std::unordered_map<catalog::TableId, double> out;
  double total = 0.0;
  for (const auto& ref : query.tables) {
    const double n = static_cast<double>(catalog.table(ref.table).row_count());
    out[ref.table] = n;
    total += n;
  }
  for (auto& [t, w] : out) {
    w = enabled && total > 0.0 ? w / total : 1.0;
  }
  return out;
}

/// Rule-based importance: the fraction d(t,c)/d(t) of Table-1 candidate
/// indexes on c's table that contain c, counted over the actual rule
/// generator so weights stay consistent with the advisor.
RawWeights RuleBasedWeights(const sql::BoundQuery& query,
                            const stats::StatsManager& stats) {
  advisor::CandidateGenOptions gen;
  gen.covering_variants = false;  // candidate counting uses key combinations
  const std::vector<engine::Index> candidates =
      advisor::GenerateCandidates(query, stats, gen);

  std::unordered_map<catalog::TableId, double> per_table_total;
  RawWeights contains;
  for (const engine::Index& index : candidates) {
    per_table_total[index.table()] += 1.0;
    for (catalog::ColumnId c : index.key_columns()) contains[c] += 1.0;
  }
  for (auto& [c, cnt] : contains) {
    const double d_t = per_table_total[c.table];
    cnt = d_t > 0.0 ? cnt / d_t : 0.0;
  }
  return contains;
}

/// Stats-based importance: 1 - selectivity for filter/join columns,
/// 1 - density for group-by/order-by columns (smaller statistic = heavier).
RawWeights StatsBasedWeights(const sql::BoundQuery& query,
                             const stats::StatsManager& stats) {
  RawWeights out;
  auto bump = [&out](catalog::ColumnId c, double w) {
    auto [it, inserted] = out.emplace(c, w);
    if (!inserted) it->second = std::max(it->second, w);
  };
  for (const auto& f : query.filters) {
    bump(f.column, 1.0 - std::clamp(f.selectivity, 0.0, 1.0));
  }
  for (const auto& cp : query.complex_predicates) {
    for (catalog::ColumnId c : cp.columns) {
      bump(c, 1.0 - std::clamp(cp.selectivity, 0.0, 1.0));
    }
  }
  for (const auto& j : query.joins) {
    bump(j.left, 1.0 - std::clamp(j.selectivity, 0.0, 1.0));
    bump(j.right, 1.0 - std::clamp(j.selectivity, 0.0, 1.0));
  }
  for (catalog::ColumnId g : query.group_by_columns) {
    bump(g, 1.0 - std::clamp(stats.Density(g), 0.0, 1.0));
  }
  for (const auto& [c, desc] : query.order_by_columns) {
    bump(c, 1.0 - std::clamp(stats.Density(c), 0.0, 1.0));
  }
  return out;
}

}  // namespace

SparseVector Featurizer::Featurize(const sql::BoundQuery& query,
                                   const FeaturizationOptions& options) const {
  RawWeights raw = options.scheme == WeightingScheme::kRuleBased
                       ? RuleBasedWeights(query, *stats_)
                       : StatsBasedWeights(query, *stats_);

  // Ensure every indexable column is represented even if its raw weight came
  // out zero (e.g. a column in no candidate): keep it with a small floor so
  // similarity still sees shared columns.
  const advisor::IndexableColumns indexable =
      advisor::ExtractIndexableColumns(query);
  constexpr double kFloor = 1e-3;
  auto ensure = [&raw, kFloor](const std::vector<catalog::ColumnId>& cols) {
    for (catalog::ColumnId c : cols) {
      auto [it, inserted] = raw.emplace(c, kFloor);
      if (!inserted && it->second <= 0.0) it->second = kFloor;
    }
  };
  ensure(indexable.filter_columns);
  ensure(indexable.join_columns);
  ensure(indexable.group_by_columns);
  ensure(indexable.order_by_columns);

  const auto table_weights =
      TableWeights(query, *catalog_, options.use_table_weight);
  double max_w = 0.0, min_w = std::numeric_limits<double>::infinity();
  for (auto& [c, w] : raw) {
    auto it = table_weights.find(c.table);
    w *= it != table_weights.end() ? it->second : 1.0;
    max_w = std::max(max_w, w);
    min_w = std::min(min_w, w);
  }

  // Min-max normalization as in §4.2: w̄ = w / (max - min); when all weights
  // are equal every feature gets weight 1. Guard: a *nearly* zero range
  // (e.g. two stats-based selectivities differing by 1e-6) would scale the
  // whole query's features by ~1e6, collapsing its weighted-Jaccard
  // similarity to every other query — treat that as the all-equal case.
  const double range = max_w - min_w;
  const bool degenerate = range <= 1e-9 * std::max(max_w, 1e-300);
  std::vector<SparseVector::Entry> entries;
  entries.reserve(raw.size());
  for (const auto& [c, w] : raw) {
    const double norm = degenerate ? 1.0 : w / range;
    entries.push_back({space_->GetOrCreate(c), norm});
  }
  return SparseVector::FromPairs(std::move(entries));
}

}  // namespace isum::core
