#ifndef ISUM_CORE_COMPRESSION_STATE_H_
#define ISUM_CORE_COMPRESSION_STATE_H_

#include <vector>

#include "core/features.h"
#include "core/utility.h"
#include "core/weighting.h"
#include "workload/workload.h"

namespace isum::core {

/// Strategies for updating unselected queries after each greedy selection
/// (§4.3 and Figure 13 of the paper).
enum class UpdateStrategy {
  /// No update (benefit of a set ignores interactions) — worst in Fig 13.
  kNone,
  /// Discount utilities only: U(q_j | q_i) = U(q_j)(1 - S(q_i, q_j)).
  kUtilityOnly,
  /// Utility update + subtract S(q_i, q_j) from q_j's feature weights.
  kUtilityAndWeightSubtract,
  /// Utility update + zero the features q_i covers (the paper's default).
  kUtilityAndFeatureZero,
};

/// Mutable per-query signals shared by the all-pairs and summary-features
/// greedy algorithms: current and original features/utilities, selection
/// flags, and the update/reset machinery of Algorithm 2.
class CompressionState {
 public:
  /// Featurizes every query in `workload` and computes utilities.
  CompressionState(const workload::Workload& workload,
                   const FeaturizationOptions& feat_options,
                   UtilityMode utility_mode);

  size_t size() const { return features_.size(); }
  const SparseVector& features(size_t i) const { return features_[i]; }
  const SparseVector& original_features(size_t i) const {
    return original_features_[i];
  }
  double utility(size_t i) const { return utilities_[i]; }
  double original_utility(size_t i) const { return original_utilities_[i]; }
  bool selected(size_t i) const { return selected_[i]; }
  FeatureSpace& feature_space() { return space_; }
  const FeatureSpace& feature_space() const { return space_; }

  /// Similarity of two queries' *current* features.
  double Similarity(size_t i, size_t j) const {
    return WeightedJaccard(features_[i], features_[j]);
  }

  /// Marks `s` selected and applies `strategy` to every unselected query,
  /// using s's features at selection time (Algorithm 2, lines 9–11).
  void SelectAndUpdate(size_t s, UpdateStrategy strategy);

  /// True if every unselected query's features are all zero.
  bool AllUnselectedZeroed() const;

  /// Resets unselected queries' features to their original weights
  /// (Algorithm 2, line 12). Utilities stay discounted.
  void ResetUnselectedFeatures();

  /// Checkpoint restore: re-applies a recorded selection prefix to a fresh
  /// state. Before each id it reproduces the greedy loop's reset condition
  /// (every unselected query fully covered ⇔ the round saw no eligible
  /// query), then applies `strategy` — so the replayed state is
  /// bit-identical to the state the recording run had after those rounds,
  /// at O(rounds·n) cost and without any argmax scan (core/checkpointing.h).
  void ReplaySelection(const std::vector<size_t>& ids,
                       UpdateStrategy strategy);

  /// Queries eligible for selection: unselected with a non-zero feature.
  std::vector<size_t> EligibleQueries() const;

 private:
  FeatureSpace space_;
  std::vector<SparseVector> features_;
  std::vector<SparseVector> original_features_;
  std::vector<double> utilities_;
  std::vector<double> original_utilities_;
  std::vector<bool> selected_;
  // One-vs-many probe buffer for SelectAndUpdate, reused across rounds.
  DenseScratch update_scratch_;
};

}  // namespace isum::core

#endif  // ISUM_CORE_COMPRESSION_STATE_H_
