#ifndef ISUM_CORE_UTILITY_H_
#define ISUM_CORE_UTILITY_H_

#include <vector>

#include "workload/workload.h"

namespace isum::core {

/// How the estimated cost reduction Δ(q) is computed (§4.1).
enum class UtilityMode {
  /// Δ(q) = C(q): the query's cost proxies its improvement potential
  /// (the paper shows correlation ≈ .97 on TPC-H). ISUM's default.
  kCostOnly,
  /// Δ(q) = (1 - Sel(q)) × C(q) with Sel(q) the average selectivity of the
  /// query's filter and join columns. Used by ISUM-S.
  kCostTimesSelectivity,
};

/// Estimated reduction in cost of one query when indexes are added, Δ(q).
double EstimatedReduction(const workload::QueryInfo& query, UtilityMode mode);

/// Average selectivity of filter and join predicates of a bound query
/// (1.0 when it has none).
double AverageSelectivity(const sql::BoundQuery& query);

/// Utilities U(q_i) = Δ(q_i) / Σ_j Δ(q_j) for the whole workload
/// (Definition 2). Sums to 1 unless all reductions are zero.
std::vector<double> ComputeUtilities(const workload::Workload& workload,
                                     UtilityMode mode);

}  // namespace isum::core

#endif  // ISUM_CORE_UTILITY_H_
