#ifndef ISUM_CORE_WEIGHTING_H_
#define ISUM_CORE_WEIGHTING_H_

#include "core/features.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::core {

/// How indexable-column weights are computed (§4.2 of the paper).
enum class WeightingScheme {
  /// Fraction of rule-generated candidate indexes containing the column,
  /// times the table-size weight. ISUM's default.
  kRuleBased,
  /// (1 - selectivity) for filter/join columns, (1 - density) for
  /// group-by/order-by columns, times the table-size weight. ISUM-S.
  kStatsBased,
};

/// Featurization knobs.
struct FeaturizationOptions {
  WeightingScheme scheme = WeightingScheme::kRuleBased;
  /// Weigh columns by their table's relative size, w_table(t) = n(t)/Σn(t')
  /// over the query's tables. Disabled for the ISUM-NoTable ablation
  /// (Figure 10).
  bool use_table_weight = true;
};

/// Computes the paper's query features: one weight per indexable column,
/// min-max normalized per query (w̄ = w / (max - min), §4.2).
class Featurizer {
 public:
  Featurizer(const catalog::Catalog* catalog, const stats::StatsManager* stats,
             FeatureSpace* space)
      : catalog_(catalog), stats_(stats), space_(space) {}

  SparseVector Featurize(const sql::BoundQuery& query,
                         const FeaturizationOptions& options = {}) const;

 private:
  const catalog::Catalog* catalog_;
  const stats::StatsManager* stats_;
  FeatureSpace* space_;
};

}  // namespace isum::core

#endif  // ISUM_CORE_WEIGHTING_H_
