#include "core/similarity.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "advisor/candidate_generation.h"

namespace isum::core {

namespace {

std::vector<std::string> CandidateKeys(const sql::BoundQuery& q,
                                       const stats::StatsManager& stats) {
  advisor::CandidateGenOptions gen;
  gen.covering_variants = false;
  std::vector<std::string> keys;
  for (const engine::Index& index : advisor::GenerateCandidates(q, stats, gen)) {
    keys.push_back(index.CanonicalKey());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<catalog::ColumnId> AllIndexable(const sql::BoundQuery& q) {
  const advisor::IndexableColumns cols = advisor::ExtractIndexableColumns(q);
  std::vector<catalog::ColumnId> all;
  all.insert(all.end(), cols.filter_columns.begin(), cols.filter_columns.end());
  all.insert(all.end(), cols.join_columns.begin(), cols.join_columns.end());
  all.insert(all.end(), cols.group_by_columns.begin(), cols.group_by_columns.end());
  all.insert(all.end(), cols.order_by_columns.begin(), cols.order_by_columns.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

template <typename T>
double SortedJaccard(const std::vector<T>& a, const std::vector<T>& b) {
  size_t i = 0, j = 0;
  double inter = 0.0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const double uni = static_cast<double>(a.size() + b.size()) - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

}  // namespace

double CandidateIndexJaccard(const sql::BoundQuery& a, const sql::BoundQuery& b,
                             const stats::StatsManager& stats) {
  return SortedJaccard(CandidateKeys(a, stats), CandidateKeys(b, stats));
}

double IndexableColumnJaccard(const sql::BoundQuery& a,
                              const sql::BoundQuery& b) {
  return SortedJaccard(AllIndexable(a), AllIndexable(b));
}

PairwiseSimilarityCache::PairwiseSimilarityCache(
    const std::vector<const sql::BoundQuery*>& queries,
    const stats::StatsManager& stats) {
  candidate_keys_.reserve(queries.size());
  indexable_.reserve(queries.size());
  std::unordered_map<std::string, int> key_ids;
  for (const sql::BoundQuery* q : queries) {
    std::vector<int> ids;
    for (const std::string& key : CandidateKeys(*q, stats)) {
      const auto it = key_ids.emplace(key, static_cast<int>(key_ids.size()));
      ids.push_back(it.first->second);
    }
    std::sort(ids.begin(), ids.end());
    candidate_keys_.push_back(std::move(ids));
    indexable_.push_back(AllIndexable(*q));
  }
}

double PairwiseSimilarityCache::CandidateIndexJaccard(size_t a,
                                                      size_t b) const {
  return SortedJaccard(candidate_keys_[a], candidate_keys_[b]);
}

double PairwiseSimilarityCache::IndexableColumnJaccard(size_t a,
                                                       size_t b) const {
  return SortedJaccard(indexable_[a], indexable_[b]);
}

}  // namespace isum::core
