#include "core/allpairs.h"

#include "core/benefit.h"

namespace isum::core {

SelectionResult AllPairsGreedySelect(CompressionState& state, size_t k,
                                     UpdateStrategy strategy) {
  SelectionResult result;
  while (result.selected.size() < k) {
    // Algorithm 2, line 12: when every remaining query is fully covered,
    // reset features to their original weights and keep going.
    std::vector<size_t> eligible = state.EligibleQueries();
    if (eligible.empty()) {
      state.ResetUnselectedFeatures();
      eligible = state.EligibleQueries();
      if (eligible.empty()) break;  // every query already selected
    }

    // Algorithm 1: argmax over conditional benefit.
    double max_benefit = -1.0;
    size_t best = eligible.front();
    for (size_t i : eligible) {
      const double benefit = ConditionalBenefit(state, i);
      if (benefit > max_benefit) {
        max_benefit = benefit;
        best = i;
      }
    }
    result.selected.push_back(best);
    result.selection_benefits.push_back(max_benefit);
    state.SelectAndUpdate(best, strategy);
  }
  return result;
}

}  // namespace isum::core
