#include "core/allpairs.h"

#include "common/fault.h"
#include "core/benefit.h"

namespace isum::core {

SelectionResult AllPairsGreedySelect(CompressionState& state, size_t k,
                                     UpdateStrategy strategy,
                                     const TimeBudget& budget) {
  SelectionResult result;
  while (result.selected.size() < k) {
    // Cooperative stop: budget expiry or an injected fault ends selection
    // with the (valid) prefix chosen so far.
    const Status round = budget.CheckCancelled();
    if (!round.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round);
      break;
    }
    const Status fault = ISUM_FAULT_POINT("compress.select");
    if (!fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(fault);
      break;
    }
    // Algorithm 2, line 12: when every remaining query is fully covered,
    // reset features to their original weights and keep going.
    std::vector<size_t> eligible = state.EligibleQueries();
    if (eligible.empty()) {
      state.ResetUnselectedFeatures();
      eligible = state.EligibleQueries();
      if (eligible.empty()) break;  // every query already selected
    }

    // Algorithm 1: argmax over conditional benefit.
    double max_benefit = -1.0;
    size_t best = eligible.front();
    for (size_t i : eligible) {
      const double benefit = ConditionalBenefit(state, i);
      if (benefit > max_benefit) {
        max_benefit = benefit;
        best = i;
      }
    }
    result.selected.push_back(best);
    result.selection_benefits.push_back(max_benefit);
    state.SelectAndUpdate(best, strategy);
  }
  return result;
}

}  // namespace isum::core
