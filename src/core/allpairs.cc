#include "core/allpairs.h"

#include <algorithm>

#include "common/fault.h"
#include "core/checkpointing.h"
#include "obs/journal.h"

namespace isum::core {

namespace {

/// Shard width for the per-round argmax. A fixed width (rather than
/// #candidates / #threads) keeps the shard layout — and therefore the
/// reduction — independent of thread count; see AllPairsGreedySelect's
/// contract in the header.
constexpr size_t kArgmaxShardSize = 256;

/// Winner of one shard's scan: the first candidate (in eligible order)
/// attaining the shard's maximum conditional benefit, plus the shard's
/// runner-up benefit so the global reduce can report the winning margin
/// (journal `select` events) without a second scan.
struct ShardBest {
  double benefit = -1.0;
  double second = -1.0;
  size_t query = 0;
  bool filled = false;
};

}  // namespace

SelectionResult AllPairsGreedySelect(CompressionState& state, size_t k,
                                     UpdateStrategy strategy,
                                     const TimeBudget& budget,
                                     ThreadPool* pool,
                                     SelectionCheckpointer* ckpt,
                                     SelectionResult seed) {
  SelectionResult result = std::move(seed);
  result.stop_reason = StopReason::kComplete;
  // Per-shard probe buffers, reused across rounds (ParallelFor hands each
  // shard index to exactly one worker, so slots are never shared).
  std::vector<DenseScratch> scratches;
  std::vector<ShardBest> shard_best;
  while (result.selected.size() < k) {
    // Cooperative stop: budget expiry or an injected fault ends selection
    // with the (valid) prefix chosen so far.
    const Status round = budget.CheckCancelled();
    if (!round.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round);
      break;
    }
    const Status fault = ISUM_FAULT_POINT("compress.select");
    if (!fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(fault);
      break;
    }
    // Algorithm 2, line 12: when every remaining query is fully covered,
    // reset features to their original weights and keep going.
    std::vector<size_t> eligible = state.EligibleQueries();
    if (eligible.empty()) {
      state.ResetUnselectedFeatures();
      eligible = state.EligibleQueries();
      if (eligible.empty()) break;  // every query already selected
    }

    // Algorithm 1: argmax over conditional benefit, sharded over fixed-width
    // candidate blocks. Each candidate i scatters its features once and
    // gathers against every unselected j in ascending order — the same sum,
    // in the same order, no matter which worker runs the shard.
    const size_t num_shards =
        (eligible.size() + kArgmaxShardSize - 1) / kArgmaxShardSize;
    if (scratches.size() < num_shards) scratches.resize(num_shards);
    shard_best.assign(num_shards, ShardBest{});
    const auto run_shard = [&](size_t shard) {
      DenseScratch& scratch = scratches[shard];
      scratch.Reserve(state.feature_space().size());
      const size_t lo = shard * kArgmaxShardSize;
      const size_t hi = std::min(lo + kArgmaxShardSize, eligible.size());
      ShardBest best;
      for (size_t e = lo; e < hi; ++e) {
        const size_t i = eligible[e];
        scratch.Scatter(state.features(i));
        double influence = 0.0;
        for (size_t j = 0; j < state.size(); ++j) {
          if (j == i || state.selected(j)) continue;
          influence +=
              WeightedJaccardVsDense(scratch, state.features(j)) *
              state.utility(j);
        }
        const double benefit = state.utility(i) + influence;
        if (!best.filled || benefit > best.benefit) {
          best.second = best.benefit;
          best.benefit = benefit;
          best.query = i;
          best.filled = true;
        } else if (benefit > best.second) {
          best.second = benefit;
        }
      }
      shard_best[shard] = best;
    };
    if (pool != nullptr && pool->num_threads() > 1 && num_shards > 1) {
      pool->ParallelFor(num_shards, run_shard, budget.token());
    } else {
      for (size_t shard = 0; shard < num_shards; ++shard) run_shard(shard);
    }

    // A cancelled ParallelFor may have skipped shards. Completing the round
    // from a partial argmax could pick a different query than a full scan,
    // so either finish the stragglers serially (spurious skip) or abandon
    // the round and return the prefix (real cancellation).
    bool all_filled = true;
    for (const ShardBest& b : shard_best) all_filled = all_filled && b.filled;
    if (!all_filled) {
      const Status status = budget.CheckCancelled();
      if (!status.ok()) {
        result.stop_reason = TimeBudget::ReasonFor(status);
        break;
      }
      for (size_t shard = 0; shard < num_shards; ++shard) {
        if (!shard_best[shard].filled) run_shard(shard);
      }
    }

    // Reduce in shard order with a strict comparison: identical to the
    // serial first-occurrence argmax for any shard/thread layout. The
    // runner-up benefit rides along for decision provenance; it never
    // influences the pick.
    double max_benefit = -1.0;
    double runner_up = -1.0;
    size_t best = eligible.front();
    size_t best_shard = 0;
    for (size_t shard = 0; shard < shard_best.size(); ++shard) {
      const ShardBest& b = shard_best[shard];
      if (b.benefit > max_benefit) {
        runner_up = std::max(max_benefit, b.second);
        max_benefit = b.benefit;
        best = b.query;
        best_shard = shard;
      } else if (b.benefit > runner_up) {
        runner_up = b.benefit;
      }
    }
    if (obs::Journal::Global().enabled()) {
      obs::Journal::Global().SelectRound(
          result.selected.size(), best, max_benefit,
          runner_up < 0.0 ? -1.0 : max_benefit - runner_up, best_shard,
          eligible.size());
    }
    result.selected.push_back(best);
    result.selection_benefits.push_back(max_benefit);
    state.SelectAndUpdate(best, strategy);
    if (ckpt != nullptr) ckpt->OnRound(result);
  }
  return result;
}

}  // namespace isum::core
