#ifndef ISUM_CORE_CHECKPOINTING_H_
#define ISUM_CORE_CHECKPOINTING_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/checkpoint.h"
#include "core/allpairs.h"

namespace isum::core {

/// Selection-phase checkpointing (docs/ROBUSTNESS.md, "Checkpoint/resume").
///
/// The greedy selection loop is a deterministic function of the
/// CompressionState it starts from, so a checkpoint does not serialize the
/// full mutable state (features, utilities, summary vector): it records
/// only the selected prefix — ids and benefits in selection order — and
/// restore *replays* that prefix through
/// CompressionState::ReplaySelection(), which reproduces every derived
/// structure bit-for-bit at O(rounds·n) cost, a small fraction of the
/// argmax work the resumed run skips. Bit-identity of the resumed run then
/// follows from the determinism rules the selects already guarantee.

/// Section ids inside a selection checkpoint (isum-ckpt-v1 container).
inline constexpr uint32_t kSelectionMetaSection = 1;
inline constexpr uint32_t kSelectionIdsSection = 2;
inline constexpr uint32_t kSelectionBenefitsSection = 3;

/// What a selection checkpoint captures.
struct SelectionSnapshot {
  uint64_t fingerprint = 0;
  std::vector<size_t> selected;      ///< ids in selection order
  std::vector<double> benefits;      ///< raw-bit-preserved benefit per round
  bool done = false;                 ///< the checkpointed run finished
  StopReason stop_reason = StopReason::kComplete;
};

/// Identity of a selection work unit: hashes the state's *original*
/// signals (per-query features and utilities — which already encode the
/// workload, featurization scheme, and utility mode), the algorithm and
/// update strategy, and the caller's entry tag ("select" vs "compress" so
/// a Select-only bench never cross-restores into Compress). k and
/// num_threads are deliberately excluded: greedy prefixes are k-stable and
/// selection is bit-identical across thread counts.
uint64_t SelectionFingerprint(const CompressionState& state,
                              uint64_t algorithm, uint64_t update,
                              std::string_view entry);

/// Serializes `snapshot` into `writer` (sections above).
void EncodeSelectionSnapshot(const SelectionSnapshot& snapshot,
                             CheckpointWriter* writer);

/// Loads the newest valid epoch and decodes it. kNotFound when no epoch
/// exists or the stored fingerprint differs from `expected_fingerprint`;
/// kParseError when the payload is structurally inconsistent.
StatusOr<SelectionSnapshot> LoadSelectionSnapshot(
    CheckpointStore& store, uint64_t expected_fingerprint);

/// Round-boundary hook the greedy selects drive. Owns the epoch store;
/// write failures are best-effort (counted in ckpt.write_failures, never
/// fatal to the run).
class SelectionCheckpointer {
 public:
  SelectionCheckpointer(std::unique_ptr<CheckpointStore> store,
                        uint64_t fingerprint, uint64_t every_rounds,
                        const char* phase);

  /// After each completed round: writes an epoch every `every_rounds`
  /// rounds beyond the last write.
  void OnRound(const SelectionResult& result);

  /// At loop exit: writes the final epoch carrying the stop reason (done
  /// iff the loop ran to completion).
  void OnDone(const SelectionResult& result);

  /// After a restore: aligns the periodic cadence so the first new epoch
  /// lands `every_rounds` past the restored prefix.
  void NoteRestored(size_t rounds) { written_rounds_ = rounds; }

  const CheckpointStore& store() const { return *store_; }

 private:
  void Write(const SelectionResult& result, bool done);

  std::unique_ptr<CheckpointStore> store_;
  uint64_t fingerprint_ = 0;
  uint64_t every_rounds_ = 1;
  const char* phase_ = "compress";
  size_t written_rounds_ = 0;
};

}  // namespace isum::core

#endif  // ISUM_CORE_CHECKPOINTING_H_
