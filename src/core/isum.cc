#include "core/isum.h"

#include <memory>
#include <utility>

#include "core/checkpointing.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::core {

namespace {

const char* AlgorithmName(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kAllPairs:
      return "all-pairs";
    case SelectionAlgorithm::kSummaryFeatures:
      return "summary-features";
  }
  return "unknown";
}

struct CompressMetrics {
  obs::Counter* runs;
  obs::Counter* input_queries;
  obs::Counter* selected_queries;

  static const CompressMetrics& Get() {
    static const CompressMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return CompressMetrics{registry.GetCounter("compress.runs"),
                             registry.GetCounter("compress.input_queries"),
                             registry.GetCounter("compress.selected_queries")};
    }();
    return m;
  }
};

SelectionResult RunSelection(CompressionState& state, size_t k,
                             const IsumOptions& options,
                             const TimeBudget& budget, const char* entry) {
  ISUM_TRACE_SPAN_VAR(span, "compress/greedy-pick");
  span.Arg("k", static_cast<uint64_t>(k))
      .Arg("algorithm", AlgorithmName(options.algorithm))
      .Arg("threads", options.num_threads);
  obs::Journal& journal = obs::Journal::Global();
  if (journal.enabled()) {
    journal.CompressBegin(state.size(), k, AlgorithmName(options.algorithm),
                          static_cast<uint64_t>(options.num_threads));
  }

  // Checkpoint/resume (core/checkpointing.h): restore the newest valid
  // epoch whose fingerprint matches this work unit, replay its prefix into
  // the state, and continue the greedy loop from there. When the restored
  // prefix already covers k, the loop condition is false and the run
  // completes without a single argmax scan.
  SelectionResult seed;
  std::unique_ptr<SelectionCheckpointer> ckpt;
  const CheckpointConfig ckpt_config = EffectiveCheckpoint(options.checkpoint);
  if (ckpt_config.enabled()) {
    const uint64_t fingerprint = SelectionFingerprint(
        state, static_cast<uint64_t>(options.algorithm),
        static_cast<uint64_t>(options.update), entry);
    auto store = std::make_unique<CheckpointStore>(
        ckpt_config.path + ".compress", fingerprint);
    StatusOr<SelectionSnapshot> snapshot =
        LoadSelectionSnapshot(*store, fingerprint);
    if (snapshot.ok()) {
      // Greedy prefixes are k-stable, so a checkpoint from a larger-k run
      // restores a smaller-k run by truncation.
      if (snapshot->selected.size() > k) {
        snapshot->selected.resize(k);
        snapshot->benefits.resize(k);
      }
      bool ids_valid = true;
      for (const size_t id : snapshot->selected) {
        ids_valid = ids_valid && id < state.size();
      }
      if (ids_valid) {
        {
          ISUM_TRACE_SPAN("compress/ckpt-replay");
          state.ReplaySelection(snapshot->selected, options.update);
        }
        seed.selected = std::move(snapshot->selected);
        seed.selection_benefits = std::move(snapshot->benefits);
        journal.CkptRestore(
            "compress", store->loaded_epoch(), seed.selected.size(),
            obs::SelectionOrderHash(seed.selected.data(),
                                    seed.selected.size()),
            snapshot->done && seed.selected.size() >= k ? 1 : 0);
      }
    }
    ckpt = std::make_unique<SelectionCheckpointer>(
        std::move(store), fingerprint, ckpt_config.every_rounds, "compress");
    ckpt->NoteRestored(seed.selected.size());
  }

  SelectionResult result;
  switch (options.algorithm) {
    case SelectionAlgorithm::kAllPairs: {
      if (options.num_threads > 1) {
        ThreadPool pool(static_cast<size_t>(options.num_threads));
        result = AllPairsGreedySelect(state, k, options.update, budget, &pool,
                                      ckpt.get(), std::move(seed));
      } else {
        result = AllPairsGreedySelect(state, k, options.update, budget,
                                      nullptr, ckpt.get(), std::move(seed));
      }
      break;
    }
    case SelectionAlgorithm::kSummaryFeatures:
      result = SummaryGreedySelect(state, k, options.update, budget,
                                   ckpt.get(), std::move(seed));
      break;
  }
  if (ckpt != nullptr) ckpt->OnDone(result);
  NoteStopReason(result.stop_reason);
  if (journal.enabled()) {
    double benefit_sum = 0.0;
    for (const double b : result.selection_benefits) benefit_sum += b;
    journal.CompressEnd(result.selected.size(),
                        obs::SelectionOrderHash(result.selected.data(),
                                                result.selected.size()),
                        benefit_sum, StopReasonToString(result.stop_reason));
  }
  return result;
}

}  // namespace

SelectionResult Isum::Select(size_t k) const {
  const TimeBudget budget = EffectiveBudget(options_.budget);
  CompressionState state = [this] {
    // Featurization (and utility estimation) happens inside the
    // CompressionState constructor; give it its own phase span.
    ISUM_TRACE_SPAN("compress/feature-extraction");
    return MakeState();
  }();
  return RunSelection(state, k, options_, budget, /*entry=*/"select");
}

workload::CompressedWorkload Isum::Compress(size_t k) const {
  ISUM_TRACE_SPAN("compress/total");
  const CompressMetrics& metrics = CompressMetrics::Get();
  metrics.runs->Add(1);
  metrics.input_queries->Add(workload_->size());

  // One state serves both selection and weighing: weighing needs the
  // original (pre-update) signals, which the state retains, so the second
  // featurization pass the old Select+Weigh split paid is gone.
  const TimeBudget budget = EffectiveBudget(options_.budget);
  CompressionState state = [this] {
    ISUM_TRACE_SPAN("compress/feature-extraction");
    return MakeState();
  }();
  const SelectionResult selection =
      RunSelection(state, k, options_, budget, /*entry=*/"compress");
  std::vector<double> weights;
  {
    ISUM_TRACE_SPAN("compress/weighing");
    weights = WeighSelectedQueries(*workload_, state, selection,
                                   options_.weighing);
  }
  workload::CompressedWorkload out;
  out.stop_reason = selection.stop_reason;
  out.entries.reserve(selection.selected.size());
  for (size_t i = 0; i < selection.selected.size(); ++i) {
    out.entries.push_back({selection.selected[i], weights[i],
                           selection.selection_benefits[i]});
  }
  metrics.selected_queries->Add(out.entries.size());
  return out;
}

}  // namespace isum::core
