#include "core/isum.h"

#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace isum::core {

namespace {

const char* AlgorithmName(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kAllPairs:
      return "all-pairs";
    case SelectionAlgorithm::kSummaryFeatures:
      return "summary-features";
  }
  return "unknown";
}

struct CompressMetrics {
  obs::Counter* runs;
  obs::Counter* input_queries;
  obs::Counter* selected_queries;

  static const CompressMetrics& Get() {
    static const CompressMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return CompressMetrics{registry.GetCounter("compress.runs"),
                             registry.GetCounter("compress.input_queries"),
                             registry.GetCounter("compress.selected_queries")};
    }();
    return m;
  }
};

SelectionResult RunSelection(CompressionState& state, size_t k,
                             const IsumOptions& options,
                             const TimeBudget& budget) {
  ISUM_TRACE_SPAN_VAR(span, "compress/greedy-pick");
  span.Arg("k", static_cast<uint64_t>(k))
      .Arg("algorithm", AlgorithmName(options.algorithm))
      .Arg("threads", options.num_threads);
  obs::Journal& journal = obs::Journal::Global();
  if (journal.enabled()) {
    journal.CompressBegin(state.size(), k, AlgorithmName(options.algorithm),
                          static_cast<uint64_t>(options.num_threads));
  }
  SelectionResult result;
  switch (options.algorithm) {
    case SelectionAlgorithm::kAllPairs: {
      if (options.num_threads > 1) {
        ThreadPool pool(static_cast<size_t>(options.num_threads));
        result = AllPairsGreedySelect(state, k, options.update, budget, &pool);
      } else {
        result = AllPairsGreedySelect(state, k, options.update, budget);
      }
      break;
    }
    case SelectionAlgorithm::kSummaryFeatures:
      result = SummaryGreedySelect(state, k, options.update, budget);
      break;
  }
  if (journal.enabled()) {
    double benefit_sum = 0.0;
    for (const double b : result.selection_benefits) benefit_sum += b;
    journal.CompressEnd(result.selected.size(),
                        obs::SelectionOrderHash(result.selected.data(),
                                                result.selected.size()),
                        benefit_sum, StopReasonToString(result.stop_reason));
  }
  return result;
}

}  // namespace

SelectionResult Isum::Select(size_t k) const {
  const TimeBudget budget = EffectiveBudget(options_.budget);
  CompressionState state = [this] {
    // Featurization (and utility estimation) happens inside the
    // CompressionState constructor; give it its own phase span.
    ISUM_TRACE_SPAN("compress/feature-extraction");
    return MakeState();
  }();
  return RunSelection(state, k, options_, budget);
}

workload::CompressedWorkload Isum::Compress(size_t k) const {
  ISUM_TRACE_SPAN("compress/total");
  const CompressMetrics& metrics = CompressMetrics::Get();
  metrics.runs->Add(1);
  metrics.input_queries->Add(workload_->size());

  // One state serves both selection and weighing: weighing needs the
  // original (pre-update) signals, which the state retains, so the second
  // featurization pass the old Select+Weigh split paid is gone.
  const TimeBudget budget = EffectiveBudget(options_.budget);
  CompressionState state = [this] {
    ISUM_TRACE_SPAN("compress/feature-extraction");
    return MakeState();
  }();
  const SelectionResult selection = RunSelection(state, k, options_, budget);
  std::vector<double> weights;
  {
    ISUM_TRACE_SPAN("compress/weighing");
    weights = WeighSelectedQueries(*workload_, state, selection,
                                   options_.weighing);
  }
  workload::CompressedWorkload out;
  out.stop_reason = selection.stop_reason;
  out.entries.reserve(selection.selected.size());
  for (size_t i = 0; i < selection.selected.size(); ++i) {
    out.entries.push_back({selection.selected[i], weights[i],
                           selection.selection_benefits[i]});
  }
  metrics.selected_queries->Add(out.entries.size());
  return out;
}

}  // namespace isum::core
