#include "core/isum.h"

namespace isum::core {

SelectionResult Isum::Select(size_t k) const {
  CompressionState state = MakeState();
  switch (options_.algorithm) {
    case SelectionAlgorithm::kAllPairs:
      return AllPairsGreedySelect(state, k, options_.update);
    case SelectionAlgorithm::kSummaryFeatures:
      return SummaryGreedySelect(state, k, options_.update);
  }
  return {};
}

workload::CompressedWorkload Isum::Compress(size_t k) const {
  const SelectionResult selection = Select(k);
  const std::vector<double> weights =
      WeighSelectedQueries(*workload_, selection, options_.featurization,
                           options_.utility_mode, options_.weighing);
  workload::CompressedWorkload out;
  out.entries.reserve(selection.selected.size());
  for (size_t i = 0; i < selection.selected.size(); ++i) {
    out.entries.push_back({selection.selected[i], weights[i]});
  }
  return out;
}

}  // namespace isum::core
