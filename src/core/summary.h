#ifndef ISUM_CORE_SUMMARY_H_
#define ISUM_CORE_SUMMARY_H_

#include "core/allpairs.h"
#include "core/compression_state.h"

namespace isum::core {

/// Workload summary features (Definition 11): per-column utility-weighted
/// sums over the *unselected* queries, V_c = Σ_i q_ic × U(q_i).
SparseVector ComputeSummaryFeatures(const CompressionState& state);

/// Influence of a query on the workload estimated through summary features
/// (§6.1): F_{q_s}(V) = S(q_s, V). `exclude_utility` must be the query's own
/// utility so its contribution is removed and the remainder rescaled
/// (Algorithm 3, lines 9–11).
double SummaryInfluence(const SparseVector& query_features, double query_utility,
                        double total_utility, const SparseVector& summary);

/// Algorithm 3 + §6.2: the linear-time greedy. Each round recomputes the
/// summary features over the unselected queries, scores every eligible query
/// by utility + S(features, V'), selects the max, and applies `strategy`.
/// O(k·n·f) where f is the average feature count. `budget` is observed once
/// per round (see AllPairsGreedySelect). `ckpt`/`seed` carry checkpoint
/// resume state with the same contract as AllPairsGreedySelect; the summary
/// vector is not checkpointed — each round rebuilds it from the (replayed)
/// state, so a resumed round recomputes it bit-identically.
SelectionResult SummaryGreedySelect(CompressionState& state, size_t k,
                                    UpdateStrategy strategy,
                                    const TimeBudget& budget = {},
                                    SelectionCheckpointer* ckpt = nullptr,
                                    SelectionResult seed = {});

}  // namespace isum::core

#endif  // ISUM_CORE_SUMMARY_H_
