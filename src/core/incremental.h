#ifndef ISUM_CORE_INCREMENTAL_H_
#define ISUM_CORE_INCREMENTAL_H_

#include "core/isum.h"

namespace isum::core {

/// Incremental ("anytime") workload compression — the future-work direction
/// of the paper's §10: index advisors tune with a time budget and consume
/// queries incrementally, while batch ISUM needs the whole workload up
/// front. IncrementalIsum observes the input workload in batches and keeps
/// a current selection of at most k queries at all times, so the tuner can
/// start (or be re-run) after any prefix of the stream.
///
/// Approach: maintain (a) the running total of estimated reductions Δ and
/// (b) delta-weighted workload summary features V over *all* queries seen so
/// far (built incrementally — no second pass). After each batch, re-select k
/// queries from the small pool {current selection} ∪ {batch} by the same
/// benefit measure as Algorithm 3 — utility + similarity to the
/// (self-excluded, renormalized) summary — with feature-zero conditional
/// updates inside the pool. Per-batch work is O((k + B) · f), independent of
/// the stream length.
///
/// Deviation from batch ISUM (documented in DESIGN.md): queries that were
/// never selected cannot be revisited once their batch has passed, and
/// Current() weighs queries by their recorded selection benefits (the full
/// Algorithm 5 recalibration would need the whole workload again). The
/// bench `bench_ext_incremental` quantifies the quality gap.
class IncrementalIsum {
 public:
  /// Observes queries from `workload` (which also supplies catalog/stats).
  /// Only featurization options and the utility mode of `options` are used;
  /// the algorithm is the summary-features greedy by construction.
  IncrementalIsum(const workload::Workload* workload, size_t k,
                  IsumOptions options = {});

  /// Consumes workload queries with indices in [begin, end). Batches must
  /// be disjoint and observed in order.
  void ObserveBatch(size_t begin, size_t end);

  /// Number of queries observed so far.
  size_t observed() const { return observed_; }

  /// The current compressed workload (selection + normalized weights).
  /// Valid after every ObserveBatch call.
  workload::CompressedWorkload Current() const;

 private:
  struct Candidate {
    size_t query_index;
    SparseVector features;       ///< current (possibly feature-zeroed)
    SparseVector original_features;
    double delta = 0.0;          ///< estimated reduction Δ(q)
    double last_benefit = 0.0;   ///< benefit at the last re-selection
  };

  /// Benefit of `candidate` against the global summary (Algorithm 3 form).
  double Benefit(const Candidate& candidate) const;

  /// Summary weight at feature id `f` (0 for never-seen features).
  double Dense(int f) const {
    return static_cast<size_t>(f) < summary_dense_.size() ? summary_dense_[f]
                                                          : 0.0;
  }

  /// Re-selects k from `pool` (greedy, feature-zero updates inside pool).
  void Reselect(std::vector<Candidate> pool);

  const workload::Workload* workload_;
  size_t k_;
  IsumOptions options_;
  FeatureSpace space_;
  Featurizer featurizer_;

  double total_delta_ = 0.0;
  SparseVector summary_;  ///< Σ features(q) · Δ(q) over ALL observed queries
  /// Dense mirror of summary_ (indexed by feature id) plus its running
  /// weight sum, so Benefit() is an O(nnz) gather instead of copying and
  /// rescaling the whole summary per candidate.
  std::vector<double> summary_dense_;
  double summary_total_ = 0.0;
  /// Merge buffer reused by the summary_ updates in ObserveBatch.
  std::vector<SparseVector::Entry> add_scratch_;
  size_t observed_ = 0;
  std::vector<Candidate> selected_;
};

}  // namespace isum::core

#endif  // ISUM_CORE_INCREMENTAL_H_
