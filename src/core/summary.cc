#include "core/summary.h"

#include <algorithm>

#include "common/fault.h"
#include "core/checkpointing.h"
#include "obs/journal.h"

namespace isum::core {

namespace {

/// SummaryInfluence against a dense summary in O(nnz(query)) instead of
/// O(|summary|): expands V' = scale · clamp(V - u·q) through the weighted
/// Jaccard. min_sum accumulates in feature order with the exact per-feature
/// expressions of the sparse path, so it is bit-identical to
/// SummaryInfluence; max_sum uses the sum identity (see
/// WeightedJaccardVsDense) and may differ by ulps.
double DenseSummaryInfluence(const SparseVector& query_features,
                             double query_utility, double total_utility,
                             const std::vector<double>& summary,
                             double summary_total) {
  const double remaining = total_utility - query_utility;
  const double scale =
      remaining > 1e-15 ? total_utility / remaining : 1.0;
  double min_sum = 0.0;
  double query_sum = 0.0;
  double covered = 0.0;    // summary mass on the query's support
  double covered_v = 0.0;  // that mass after subtract-clamp
  for (const SparseVector::Entry& e : query_features.entries()) {
    const double v = summary[e.feature];
    const double v_prime =
        std::max(0.0, v + e.weight * (-query_utility)) * scale;
    min_sum += std::min(e.weight, v_prime);
    query_sum += e.weight;
    covered += v;
    covered_v += v_prime;
  }
  const double v_prime_sum = (summary_total - covered) * scale + covered_v;
  const double max_sum = query_sum + v_prime_sum - min_sum;
  return max_sum > 0.0 ? min_sum / max_sum : 0.0;
}

}  // namespace

SparseVector ComputeSummaryFeatures(const CompressionState& state) {
  SparseVector v;
  for (size_t i = 0; i < state.size(); ++i) {
    if (state.selected(i)) continue;
    v.AddScaled(state.features(i), state.utility(i));
  }
  return v;
}

double SummaryInfluence(const SparseVector& query_features, double query_utility,
                        double total_utility, const SparseVector& summary) {
  // V' = (V - q_i × U(q_i)) × total / (total - U(q_i)): remove the query's
  // own contribution and renormalize the remaining mass (Algorithm 3).
  SparseVector v_prime = summary;
  v_prime.SubtractScaledClamped(query_features, query_utility);
  const double remaining = total_utility - query_utility;
  if (remaining > 1e-15) {
    v_prime.Scale(total_utility / remaining);
  }
  return WeightedJaccard(query_features, v_prime);
}

SelectionResult SummaryGreedySelect(CompressionState& state, size_t k,
                                    UpdateStrategy strategy,
                                    const TimeBudget& budget,
                                    SelectionCheckpointer* ckpt,
                                    SelectionResult seed) {
  SelectionResult result = std::move(seed);
  result.stop_reason = StopReason::kComplete;
  // Dense summary accumulator, reused across rounds. Accumulating per
  // feature in ascending query order reproduces the AddScaled chain of
  // ComputeSummaryFeatures bit-for-bit.
  std::vector<double> summary(state.feature_space().size(), 0.0);
  while (result.selected.size() < k) {
    // Cooperative stop: budget expiry or an injected fault ends selection
    // with the (valid) prefix chosen so far.
    const Status round = budget.CheckCancelled();
    if (!round.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round);
      break;
    }
    const Status fault = ISUM_FAULT_POINT("compress.select");
    if (!fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(fault);
      break;
    }
    // Per-round (k total), not per-pair: EligibleQueries() returns by value
    // and the round's O(n) summary rebuild dwarfs one allocation.
    // NOLINTNEXTLINE(isum-no-perpair-alloc)
    std::vector<size_t> eligible = state.EligibleQueries();
    if (eligible.empty()) {
      state.ResetUnselectedFeatures();
      eligible = state.EligibleQueries();
      if (eligible.empty()) break;
    }

    // Regenerate the summary over unselected queries (§6.2: updating V
    // in place for conditional influence is too lossy).
    std::fill(summary.begin(), summary.end(), 0.0);
    summary.resize(state.feature_space().size(), 0.0);
    double total_utility = 0.0;
    for (size_t i = 0; i < state.size(); ++i) {
      if (state.selected(i)) continue;
      total_utility += state.utility(i);
      const double u = state.utility(i);
      for (const SparseVector::Entry& e : state.features(i).entries()) {
        summary[e.feature] += e.weight * u;
      }
    }
    double summary_total = 0.0;
    for (double v : summary) summary_total += v;

    // The runner-up benefit rides along for the journal's winning-margin
    // field; it never influences the pick.
    double max_benefit = -1.0;
    double runner_up = -1.0;
    size_t best = eligible.front();
    for (size_t i : eligible) {
      const double benefit =
          state.utility(i) + DenseSummaryInfluence(state.features(i),
                                                   state.utility(i),
                                                   total_utility, summary,
                                                   summary_total);
      if (benefit > max_benefit) {
        runner_up = max_benefit;
        max_benefit = benefit;
        best = i;
      } else if (benefit > runner_up) {
        runner_up = benefit;
      }
    }
    if (obs::Journal::Global().enabled()) {
      // Serial argmax: no shards, so the shard field is always 0.
      obs::Journal::Global().SelectRound(
          result.selected.size(), best, max_benefit,
          runner_up < 0.0 ? -1.0 : max_benefit - runner_up, /*shard=*/0,
          eligible.size());
    }
    result.selected.push_back(best);
    result.selection_benefits.push_back(max_benefit);
    state.SelectAndUpdate(best, strategy);
    if (ckpt != nullptr) ckpt->OnRound(result);
  }
  return result;
}

}  // namespace isum::core
