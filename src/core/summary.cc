#include "core/summary.h"

#include "common/fault.h"

namespace isum::core {

SparseVector ComputeSummaryFeatures(const CompressionState& state) {
  SparseVector v;
  for (size_t i = 0; i < state.size(); ++i) {
    if (state.selected(i)) continue;
    v.AddScaled(state.features(i), state.utility(i));
  }
  return v;
}

double SummaryInfluence(const SparseVector& query_features, double query_utility,
                        double total_utility, const SparseVector& summary) {
  // V' = (V - q_i × U(q_i)) × total / (total - U(q_i)): remove the query's
  // own contribution and renormalize the remaining mass (Algorithm 3).
  SparseVector v_prime = summary;
  v_prime.SubtractScaledClamped(query_features, query_utility);
  const double remaining = total_utility - query_utility;
  if (remaining > 1e-15) {
    v_prime.Scale(total_utility / remaining);
  }
  return WeightedJaccard(query_features, v_prime);
}

SelectionResult SummaryGreedySelect(CompressionState& state, size_t k,
                                    UpdateStrategy strategy,
                                    const TimeBudget& budget) {
  SelectionResult result;
  while (result.selected.size() < k) {
    // Cooperative stop: budget expiry or an injected fault ends selection
    // with the (valid) prefix chosen so far.
    const Status round = budget.CheckCancelled();
    if (!round.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(round);
      break;
    }
    const Status fault = ISUM_FAULT_POINT("compress.select");
    if (!fault.ok()) {
      result.stop_reason = TimeBudget::ReasonFor(fault);
      break;
    }
    std::vector<size_t> eligible = state.EligibleQueries();
    if (eligible.empty()) {
      state.ResetUnselectedFeatures();
      eligible = state.EligibleQueries();
      if (eligible.empty()) break;
    }

    // Regenerate the summary over unselected queries (§6.2: updating V
    // in place for conditional influence is too lossy).
    const SparseVector summary = ComputeSummaryFeatures(state);
    double total_utility = 0.0;
    for (size_t i = 0; i < state.size(); ++i) {
      if (!state.selected(i)) total_utility += state.utility(i);
    }

    double max_benefit = -1.0;
    size_t best = eligible.front();
    for (size_t i : eligible) {
      const double benefit =
          state.utility(i) + SummaryInfluence(state.features(i),
                                              state.utility(i), total_utility,
                                              summary);
      if (benefit > max_benefit) {
        max_benefit = benefit;
        best = i;
      }
    }
    result.selected.push_back(best);
    result.selection_benefits.push_back(max_benefit);
    state.SelectAndUpdate(best, strategy);
  }
  return result;
}

}  // namespace isum::core
