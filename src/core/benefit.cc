#include "core/benefit.h"

namespace isum::core {

double Influence(const CompressionState& state, size_t i, size_t j) {
  if (i == j) return 0.0;
  return state.Similarity(i, j) * state.utility(j);
}

double InfluenceOnWorkload(const CompressionState& state, size_t s) {
  double total = 0.0;
  for (size_t j = 0; j < state.size(); ++j) {
    if (j == s || state.selected(j)) continue;
    total += Influence(state, s, j);
  }
  return total;
}

double ConditionalBenefit(const CompressionState& state, size_t i) {
  return state.utility(i) + InfluenceOnWorkload(state, i);
}

}  // namespace isum::core
