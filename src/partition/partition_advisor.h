#ifndef ISUM_PARTITION_PARTITION_ADVISOR_H_
#define ISUM_PARTITION_PARTITION_ADVISOR_H_

#include <unordered_map>
#include <vector>

#include "advisor/advisor.h"

namespace isum::partition {

/// A horizontal partitioning scheme: at most one partitioning column per
/// table. The second "other physical design structures" problem named in
/// the paper's §10 (next to materialized views). A query whose sargable
/// filter hits a table's partitioning column scans only the matching
/// partitions: its scan cost for that table shrinks by the filter's
/// selectivity (partition pruning), clamped below by one partition.
struct PartitioningScheme {
  /// table -> partitioning column (on that table).
  std::unordered_map<catalog::TableId, catalog::ColumnId> columns;
  /// Number of partitions per partitioned table.
  int partitions_per_table = 64;
};

/// Cost of `query` under `scheme` (no indexes): the base plan cost with
/// each pruned table's access discounted by the matched filter selectivity.
double CostWithPartitioning(const sql::BoundQuery& query,
                            const PartitioningScheme& scheme,
                            const engine::CostModel& cost_model);

struct PartitionTuningOptions {
  /// Maximum number of tables that may be partitioned.
  int max_partitioned_tables = 8;
};

struct PartitionTuningResult {
  PartitioningScheme scheme;
  double initial_cost = 0.0;
  double final_cost = 0.0;
};

/// Greedy partitioning advisor: each round picks the (table, column) pair
/// with the maximum weighted cost improvement over the tuned queries.
/// Candidate columns are the queries' sargable filter columns — exactly the
/// features ISUM weighs, which is why compression transfers well here
/// (bench_ext_partitioning), in contrast to view selection.
class PartitionAdvisor {
 public:
  explicit PartitionAdvisor(const engine::CostModel* cost_model)
      : cost_model_(cost_model) {}

  PartitionTuningResult Tune(const std::vector<advisor::WeightedQuery>& queries,
                             const PartitionTuningOptions& options = {}) const;

 private:
  const engine::CostModel* cost_model_;
};

}  // namespace isum::partition

#endif  // ISUM_PARTITION_PARTITION_ADVISOR_H_
