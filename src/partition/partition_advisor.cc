#include "partition/partition_advisor.h"

#include <algorithm>
#include <set>

#include "engine/optimizer.h"

namespace isum::partition {

namespace {

/// Combined selectivity of the query's sargable filters on `column`
/// (1.0 if none — no pruning).
double PruningSelectivity(const sql::BoundQuery& query,
                          catalog::ColumnId column) {
  double sel = 1.0;
  bool any = false;
  for (const auto& f : query.filters) {
    if (f.column == column && f.sargable) {
      sel *= f.selectivity;
      any = true;
    }
  }
  return any ? sel : 1.0;
}

}  // namespace

double CostWithPartitioning(const sql::BoundQuery& query,
                            const PartitioningScheme& scheme,
                            const engine::CostModel& cost_model) {
  engine::Optimizer optimizer(&cost_model);
  const engine::PlanSummary plan =
      optimizer.Optimize(query, engine::Configuration());
  double cost = plan.total_cost;
  const double min_fraction =
      1.0 / std::max(1, scheme.partitions_per_table);
  for (const engine::PlannedTable& pt : plan.tables) {
    auto it = scheme.columns.find(pt.table);
    if (it == scheme.columns.end()) continue;
    const double sel = PruningSelectivity(query, it->second);
    if (sel >= 1.0) continue;
    // Partition pruning: only matching partitions are read.
    const double fraction = std::max(sel, min_fraction);
    cost -= pt.access.cost * (1.0 - fraction);
  }
  return std::max(0.0, cost);
}

PartitionTuningResult PartitionAdvisor::Tune(
    const std::vector<advisor::WeightedQuery>& queries,
    const PartitionTuningOptions& options) const {
  PartitionTuningResult result;

  // Candidate (table, column) pairs: every sargable filter column.
  std::set<catalog::ColumnId> candidates;
  for (const advisor::WeightedQuery& wq : queries) {
    for (const auto& f : wq.query->filters) {
      if (f.sargable) candidates.insert(f.column);
    }
  }

  auto weighted_cost = [&](const PartitioningScheme& scheme) {
    double total = 0.0;
    for (const advisor::WeightedQuery& wq : queries) {
      total += wq.weight * CostWithPartitioning(*wq.query, scheme, *cost_model_);
    }
    return total;
  };

  double current = weighted_cost(result.scheme);
  result.initial_cost = current;

  while (static_cast<int>(result.scheme.columns.size()) <
         options.max_partitioned_tables) {
    double best_cost = current;
    std::optional<catalog::ColumnId> best;
    for (catalog::ColumnId c : candidates) {
      if (result.scheme.columns.contains(c.table)) continue;  // one per table
      PartitioningScheme trial = result.scheme;
      trial.columns[c.table] = c;
      const double cost = weighted_cost(trial);
      if (cost < best_cost) {
        best_cost = cost;
        best = c;
      }
    }
    if (!best.has_value()) break;
    result.scheme.columns[best->table] = *best;
    current = best_cost;
  }
  result.final_cost = current;
  return result;
}

}  // namespace isum::partition
