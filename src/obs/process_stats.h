#ifndef ISUM_OBS_PROCESS_STATS_H_
#define ISUM_OBS_PROCESS_STATS_H_

#include <cstdint>

namespace isum::obs {

/// Process-level resource readings shared by bench/bench_util.h (bench
/// records), the MetricsExporter (isum_process_* gauges on /metrics), and
/// the profiler docs' memory workflow. Hoisted here so the
/// ru_maxrss unit quirk — KiB on Linux, bytes on macOS — lives in exactly
/// one place. All readers are cheap enough for once-per-run-phase or
/// once-per-exporter-tick use; none allocate beyond a small stack buffer.

/// Peak resident set size in bytes via getrusage (0 where unsupported).
uint64_t ProcessPeakRssBytes();

/// Current resident set size in bytes from /proc/self/status VmRSS. Where
/// procfs is unavailable (macOS), falls back to the peak — monotone but
/// still a valid upper bound — and returns 0 on other platforms.
uint64_t ProcessCurrentRssBytes();

/// User + system CPU seconds consumed so far via getrusage (0.0 where
/// unsupported).
double ProcessCpuSeconds();

/// Live thread count from /proc/self/status Threads: (0 where
/// unavailable).
uint64_t ProcessThreadCount();

}  // namespace isum::obs

#endif  // ISUM_OBS_PROCESS_STATS_H_
