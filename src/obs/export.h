#ifndef ISUM_OBS_EXPORT_H_
#define ISUM_OBS_EXPORT_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace isum::obs {

/// Serialization of traces and metric snapshots. Two formats:
///
///  - Chrome trace JSON (`trace.json`): loads directly in Perfetto
///    (https://ui.perfetto.dev) or chrome://tracing. One complete event
///    ("ph":"X") per span, preceded by thread_name metadata events. The
///    file is a JSON array with one event per line, so line-oriented tools
///    (tools/tracecat, grep) can process it without a full JSON parser.
///
///  - JSONL: one flat JSON object per line for spans
///    ({"type":"span",...}) and metrics ({"type":"counter"|"gauge"|
///    "histogram",...}), matching the common/jsonl.h helpers.
///
/// Timestamps/durations are microseconds with nanosecond precision
/// (Chrome's native unit).

/// Renders `dump` as Chrome trace JSON.
std::string ChromeTraceJson(const TraceDump& dump);

/// Renders `dump` as span JSONL.
std::string SpansJsonl(const TraceDump& dump);

/// Renders `snapshot` as metrics JSONL.
std::string MetricsJsonl(const MetricsSnapshot& snapshot);

/// Renders `snapshot` in Prometheus/OpenMetrics text exposition format:
/// counters and gauges as `isum_<name> <value>` samples, histograms as
/// summaries (quantile-labelled samples plus _sum/_count). Metric names are
/// sanitized (`.` and other non-identifier bytes become `_`) and prefixed
/// `isum_`. Served by MetricsExporter (obs/exporter.h) and written as
/// air-gapped snapshot files; parsed back by tracecat watch.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Run metadata stamped into an isum-profile-v1 record, mirroring the
/// isum-bench-v1 header fields so the two artifacts of one run correlate.
struct ProfileMeta {
  std::string label;
  std::string bench;
  std::string git_rev;
  double wall_seconds = 0.0;
};

/// Renders `dump` in the collapsed-stack format flamegraph.pl consumes:
/// one `phase;outer;...;leaf count` line per unique stack, so the phase is
/// the flame root and frames fan out under it. Samples outside any span
/// root at "(unattributed)"; semicolons inside frame names become ':'.
/// ObsScope writes this next to --profile= as `<path>.collapsed`.
std::string CollapsedStacks(const ProfileDump& dump);

/// Renders `dump` as a structured isum-profile-v1 record: one JSON object,
/// line-disciplined like isum-bench-v1 (one scalar or object per line), with
/// per-phase sample totals, top frames by self/total samples, and the
/// allocation hot-list. Read back by `tracecat profile`; schema documented
/// in docs/OBSERVABILITY.md.
std::string ProfileJson(const ProfileDump& dump, const ProfileMeta& meta);

/// Writes `content` to `path` (helper shared by the bench drivers).
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace isum::obs

#endif  // ISUM_OBS_EXPORT_H_
