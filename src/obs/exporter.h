#ifndef ISUM_OBS_EXPORTER_H_
#define ISUM_OBS_EXPORTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace isum::obs {

/// Live telemetry export: a background thread that publishes periodic
/// MetricsRegistry snapshots in Prometheus/OpenMetrics text format
/// (obs/export.h PrometheusText) through two surfaces:
///
///  - a minimal HTTP listener on 127.0.0.1 serving `GET /metrics` (the
///    exposition payload) and `GET /healthz` ("ok"), enough for a
///    Prometheus scrape config, curl, or `tracecat watch --url=`;
///  - a snapshot file rewritten once per period, for air-gapped CI and
///    `tracecat watch <file>`.
///
/// Lifecycle: construct, Start(), Stop() (the destructor stops too). The
/// worker owns all I/O; no library hot path ever blocks on the exporter —
/// registry snapshots are lock-free reads of the sharded instruments.
///
/// Budget awareness: every period the worker publishes the ambient budget's
/// remaining time as the "budget.remaining_seconds" gauge (-1 when
/// unlimited), and once that budget expires it writes one final snapshot
/// and shuts the surfaces down — a deadline-killed run still leaves its
/// last state on disk, and the listener does not outlive the run's budget.
struct MetricsExporterOptions {
  /// Port for the HTTP listener on 127.0.0.1; 0 picks an ephemeral port
  /// (read it back via port()), negative disables HTTP entirely.
  int http_port = -1;
  /// When non-empty, the Prometheus-text snapshot is rewritten here every
  /// period and once more on shutdown.
  std::string snapshot_path;
  /// Snapshot/refresh period.
  uint64_t period_nanos = 1'000'000'000;  // 1s
};

class MetricsExporter {
 public:
  /// `registry` must outlive the exporter (pass MetricsRegistry::Global()).
  explicit MetricsExporter(MetricsRegistry* registry,
                           MetricsExporterOptions options);
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Binds the listener (when enabled) and launches the worker thread.
  /// Fails without side effects when the port cannot be bound.
  Status Start();

  /// Stops the worker: wakes it, joins, writes the final snapshot, closes
  /// the listener. Idempotent.
  void Stop();

  /// The bound HTTP port (after a successful Start() with http_port >= 0;
  /// 0 otherwise). With http_port = 0 this is the ephemeral port the OS
  /// assigned.
  int port() const { return port_; }

  /// Snapshot files written so far (tests; includes the shutdown write).
  uint64_t snapshots_written() const {
    return snapshots_written_.load(std::memory_order_relaxed);
  }
  /// HTTP requests answered so far (tests).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// One periodic beat: budget gauge refresh + snapshot file write.
  /// Returns false once the ambient budget has expired (worker exits).
  bool Tick();
  void WriteSnapshotFile();
  /// Accepts and answers one HTTP connection (bounded read, one response).
  void ServeOne();

  MetricsRegistry* const registry_;
  const MetricsExporterOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: Stop() wakes the poll()
  std::thread worker_;
  std::atomic<uint64_t> snapshots_written_{0};
  std::atomic<uint64_t> requests_served_{0};
  Mutex mu_;
  bool stop_ ISUM_GUARDED_BY(mu_) = false;
  bool started_ ISUM_GUARDED_BY(mu_) = false;
  CondVar stop_cv_;
};

}  // namespace isum::obs

#endif  // ISUM_OBS_EXPORTER_H_
