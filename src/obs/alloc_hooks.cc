// Interposing operator new/delete hooks for the allocation half of the
// profiler (obs/profiler.h). This translation unit is only added to
// isum_obs_core when the tree is configured with -DISUM_OBS_PROFILING=ON —
// the OFF build contains no replacement operators at all, mirroring the
// tracer's compile-time elision. Because `operator new` is an undefined
// symbol in every object that allocates, the archive member is linked in
// ahead of libstdc++'s definition whenever the define is active.
//
// Cost model: disarmed (the default even when compiled in), every
// allocation pays one relaxed atomic load. Armed, an allocation charges
// its usable size to the calling thread's innermost active span
// (internal::CurrentPhase) in a fixed lock-free phase table and maintains
// process-wide live/peak accumulators. The hooks never allocate, lock, or
// touch stdio — they are on every allocation path in the process,
// including inside signal-unsafe contexts.
//
// Accounting is deliberately approximate at the edges: memory allocated
// before arming but freed during the session drives live_bytes negative
// (consumers clamp), and frees are not phase-attributed (the owning phase
// is unknowable without a per-pointer table, which would need allocation).
#ifdef ISUM_OBS_PROFILING

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__GLIBC__) || defined(__APPLE__)
#define ISUM_ALLOC_HAVE_USABLE_SIZE 1
#if defined(__APPLE__)
#include <malloc/malloc.h>
#else
#include <malloc.h>
#endif
#endif

#include "obs/profiler.h"

namespace isum::obs::internal {

namespace {

/// Fixed phase table: span names are static strings, so identity-compare
/// and CAS-insert keep the hot path lock-free. 64 slots comfortably holds
/// the repo's span taxonomy; overflow falls back to the unattributed
/// accumulators (and is counted, so the dump can report it).
constexpr size_t kAllocPhaseSlots = 64;

struct AllocPhaseSlot {
  std::atomic<const char*> phase{nullptr};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> count{0};
};

AllocPhaseSlot g_phase_slots[kAllocPhaseSlots];
std::atomic<bool> g_armed{false};
std::atomic<uint64_t> g_total_bytes{0};
std::atomic<uint64_t> g_total_count{0};
std::atomic<int64_t> g_live_bytes{0};
std::atomic<uint64_t> g_peak_bytes{0};
std::atomic<uint64_t> g_unattributed_bytes{0};
std::atomic<uint64_t> g_unattributed_count{0};

size_t UsableSize(void* ptr, size_t requested) {
#ifdef ISUM_ALLOC_HAVE_USABLE_SIZE
#if defined(__APPLE__)
  return ::malloc_size(ptr);
#else
  return ::malloc_usable_size(ptr);
#endif
#else
  (void)ptr;
  return requested;
#endif
}

void RecordAlloc(void* ptr, size_t requested) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const uint64_t bytes = UsableSize(ptr, requested);
  g_total_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_total_count.fetch_add(1, std::memory_order_relaxed);
  const int64_t live =
      g_live_bytes.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed) +
      static_cast<int64_t>(bytes);
  if (live > 0) {
    uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (static_cast<uint64_t>(live) > peak &&
           !g_peak_bytes.compare_exchange_weak(
               peak, static_cast<uint64_t>(live),
               std::memory_order_relaxed)) {
    }
  }
  const char* phase = CurrentPhase();
  if (phase == nullptr) {
    g_unattributed_bytes.fetch_add(bytes, std::memory_order_relaxed);
    g_unattributed_count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (AllocPhaseSlot& slot : g_phase_slots) {
    const char* occupant = slot.phase.load(std::memory_order_acquire);
    if (occupant == nullptr) {
      if (!slot.phase.compare_exchange_strong(occupant, phase,
                                              std::memory_order_acq_rel)) {
        if (occupant != phase) continue;  // lost the race to another phase
      }
    } else if (occupant != phase) {
      continue;
    }
    slot.bytes.fetch_add(bytes, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Table full: keep the totals honest via the unattributed bucket.
  g_unattributed_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_unattributed_count.fetch_add(1, std::memory_order_relaxed);
}

void RecordFree(void* ptr) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const uint64_t bytes = UsableSize(ptr, 0);
  g_live_bytes.fetch_sub(static_cast<int64_t>(bytes),
                         std::memory_order_relaxed);
}

}  // namespace

void ArmAllocHooks() { g_armed.store(true, std::memory_order_release); }

AllocSnapshot DisarmAllocHooks() {
  g_armed.store(false, std::memory_order_release);
  AllocSnapshot snapshot;
  snapshot.total_bytes = g_total_bytes.exchange(0, std::memory_order_relaxed);
  snapshot.total_count = g_total_count.exchange(0, std::memory_order_relaxed);
  snapshot.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  // Live bytes carry over between sessions; peak restarts from them.
  snapshot.peak_bytes = g_peak_bytes.exchange(
      snapshot.live_bytes > 0 ? static_cast<uint64_t>(snapshot.live_bytes) : 0,
      std::memory_order_relaxed);
  for (AllocPhaseSlot& slot : g_phase_slots) {
    const char* phase = slot.phase.load(std::memory_order_acquire);
    if (phase == nullptr) continue;
    const uint64_t bytes = slot.bytes.exchange(0, std::memory_order_relaxed);
    const uint64_t count = slot.count.exchange(0, std::memory_order_relaxed);
    if (bytes != 0 || count != 0) {
      snapshot.phases.push_back(AllocPhaseTotals{phase, bytes, count});
    }
  }
  const uint64_t stray_bytes =
      g_unattributed_bytes.exchange(0, std::memory_order_relaxed);
  const uint64_t stray_count =
      g_unattributed_count.exchange(0, std::memory_order_relaxed);
  if (stray_bytes != 0 || stray_count != 0) {
    snapshot.phases.push_back(
        AllocPhaseTotals{nullptr, stray_bytes, stray_count});
  }
  return snapshot;
}

}  // namespace isum::obs::internal

// ---- global replacement operators ----
//
// Every variant funnels through malloc/posix_memalign and free, so mixing
// with the (also malloc-backed) default operators of libstdc++ — e.g. for
// allocations made before this archive member was linked — stays safe.

namespace {

void* TrackedAlloc(std::size_t size) {
  void* ptr = std::malloc(size != 0 ? size : 1);
  if (ptr != nullptr) isum::obs::internal::RecordAlloc(ptr, size);
  return ptr;
}

void* TrackedAlignedAlloc(std::size_t size, std::align_val_t alignment) {
  std::size_t align = static_cast<std::size_t>(alignment);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* ptr = nullptr;
  if (::posix_memalign(&ptr, align, size != 0 ? size : 1) != 0) {
    return nullptr;
  }
  isum::obs::internal::RecordAlloc(ptr, size);
  return ptr;
}

void TrackedFree(void* ptr) {
  if (ptr == nullptr) return;
  isum::obs::internal::RecordFree(ptr);
  std::free(ptr);
}

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = TrackedAlloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = TrackedAlignedAlloc(size, alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = TrackedAlignedAlloc(size, alignment);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, alignment);
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return TrackedAlignedAlloc(size, alignment);
}

void operator delete(void* ptr) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { TrackedFree(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  TrackedFree(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  TrackedFree(ptr);
}

#endif  // ISUM_OBS_PROFILING
