#include "obs/process_stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define ISUM_PROCESS_STATS_HAVE_RUSAGE 1
#include <sys/resource.h>
#endif

namespace isum::obs {

namespace {

/// Scans /proc/self/status for `key` (e.g. "VmRSS:") and returns its
/// numeric field, or ~0 when the file or key is unavailable. Values with a
/// "kB" suffix are what the callers expect; scaling is theirs.
constexpr uint64_t kStatusUnavailable = ~uint64_t{0};

uint64_t ProcSelfStatusField(const char* key) {
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/status", "re");
  if (file == nullptr) return kStatusUnavailable;
  const size_t key_len = std::strlen(key);
  char line[256];
  uint64_t value = kStatusUnavailable;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      value = std::strtoull(line + key_len, nullptr, 10);
      break;
    }
  }
  std::fclose(file);
  return value;
#else
  (void)key;
  return kStatusUnavailable;
#endif
}

}  // namespace

uint64_t ProcessPeakRssBytes() {
#ifdef ISUM_PROCESS_STATS_HAVE_RUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

uint64_t ProcessCurrentRssBytes() {
  const uint64_t kib = ProcSelfStatusField("VmRSS:");
  if (kib != kStatusUnavailable) return kib * 1024;
#if defined(__APPLE__)
  return ProcessPeakRssBytes();
#else
  return 0;
#endif
}

double ProcessCpuSeconds() {
#ifdef ISUM_PROCESS_STATS_HAVE_RUSAGE
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  auto seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return seconds(usage.ru_utime) + seconds(usage.ru_stime);
#else
  return 0.0;
#endif
}

uint64_t ProcessThreadCount() {
  const uint64_t threads = ProcSelfStatusField("Threads:");
  return threads != kStatusUnavailable ? threads : 0;
}

}  // namespace isum::obs
