#ifndef ISUM_OBS_METRICS_H_
#define ISUM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isum::obs {

/// Process-wide metrics for the compress -> tune -> evaluate pipeline.
///
/// Three instrument kinds, all thread-safe and lock-free on the hot path:
///  - Counter:   monotonic, sharded across cache lines so concurrent
///               writers (e.g. parallel what-if evaluation) don't contend;
///  - Gauge:     last-written double (worker counts, pool sizes);
///  - Histogram: log-scale latency histogram with p50/p95/p99.
///
/// Instruments are owned by a MetricsRegistry (usually the process-wide
/// MetricsRegistry::Global()). Registration takes a mutex; callers on hot
/// paths cache the returned pointer (instruments are never deallocated
/// while the registry lives). Instruments can also be value members of any
/// object (e.g. WhatIfOptimizer's per-instance call counters) — the classes
/// have no dependency on the registry.
///
/// Determinism note: metric *values* are either event counts (deterministic
/// for a fixed workload and thread count) or wall-time-derived (histogram
/// latencies, gauges). Tests must only assert on the former; see
/// docs/OBSERVABILITY.md.

/// Monotonic counter. Add() is a relaxed fetch_add on a per-thread shard;
/// Value() sums the shards (monotone but not a linearizable snapshot while
/// writers are active).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    cells_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Atomically stores zero into every shard. Concurrent Add()s are not
  /// lost-update-unsafe (each shard reset is a single atomic store), but a
  /// reset that races with writers leaves the counter in a mixed state, so
  /// callers must quiesce writers first (see WhatIfOptimizer::ResetCounters).
  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  static size_t ShardIndex();

  std::array<Cell, kShards> cells_;
};

/// Last-written double value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram for latency-like values (non-negative integers,
/// typically nanoseconds). Buckets are power-of-two ranges subdivided into
/// 8 sub-buckets, giving <= ~12.5% relative bucket width; quantiles are
/// answered from the bucket midpoints, so they carry that relative error.
/// Observe() is two relaxed fetch_adds.
class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 3;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Value at quantile q in [0, 1] (0.5 = median), from bucket midpoints.
  /// Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// Non-empty (index, count) bucket pairs, by ascending index.
  std::vector<std::pair<uint32_t, uint64_t>> NonZeroBuckets() const;

  void Reset();

  /// Maps a value to its bucket index (exposed for the exporter/tests).
  static size_t BucketIndex(uint64_t value);
  /// Representative (midpoint) value of a bucket.
  static double BucketMidpoint(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// One histogram in a snapshot: totals plus its non-empty buckets, so
/// snapshots can be subtracted (MetricsSnapshot::Delta) and re-quantiled.
struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
};

/// Point-in-time copy of every instrument in a registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by name; 0 if absent.
  uint64_t CounterValue(const std::string& name) const;
  /// Histogram sample count by name; 0 if absent.
  uint64_t HistogramCount(const std::string& name) const;

  /// Per-name difference `after - before`: counters and histogram
  /// counts/sums/buckets subtract (clamped at 0); gauges keep the `after`
  /// value; histogram quantiles are recomputed from the subtracted buckets.
  /// Names missing from `before` are treated as zero.
  static MetricsSnapshot Delta(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);
};

/// Named-instrument owner. Get*() registers on first use and returns a
/// pointer that stays valid for the registry's lifetime; hot paths should
/// call once and cache it.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every library layer reports into.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (test isolation; instruments stay
  /// registered so cached pointers remain valid).
  void ResetAll();

 private:
  mutable Mutex mu_;
  // The maps are guarded; the instruments they own are internally
  // thread-safe and are read/written lock-free through cached pointers.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ISUM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ISUM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ISUM_GUARDED_BY(mu_);
};

}  // namespace isum::obs

#endif  // ISUM_OBS_METRICS_H_
