#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "obs/profiler.h"

namespace isum::obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowNanos() const {
  const ClockFn fn = clock_.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::ThreadState* Tracer::CurrentThreadState() {
  // One registration per thread; the pointer stays valid for the tracer's
  // lifetime (the Tracer singleton is never destroyed).
  static thread_local ThreadState* tls_state = nullptr;
  if (tls_state == nullptr) {
    auto state = std::make_unique<ThreadState>();
    MutexLock lock(mu_);
    state->tid = static_cast<uint32_t>(threads_.size());
    tls_state = state.get();
    threads_.push_back(std::move(state));
  }
  return tls_state;
}

void Tracer::Enable() {
  MutexLock lock(mu_);
  for (auto& thread : threads_) {
    MutexLock thread_lock(thread->mu);
    thread->spans.clear();
    thread->depth = 0;
    thread->root_count = 0;
    thread->skip_depth = 0;
  }
  session_start_nanos_.store(NowNanos(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

TraceDump Tracer::Drain() {
  TraceDump dump;
  MutexLock lock(mu_);
  dump.thread_names.resize(threads_.size());
  for (auto& thread : threads_) {
    dump.thread_names[thread->tid] = thread->name;
    MutexLock thread_lock(thread->mu);
    dump.spans.insert(dump.spans.end(), thread->spans.begin(),
                      thread->spans.end());
    thread->spans.clear();
  }
  std::sort(dump.spans.begin(), dump.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.depth < b.depth;
            });
  return dump;
}

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadState* state = CurrentThreadState();
  MutexLock lock(mu_);
  state->name = std::move(name);
}

void TraceSpan::Begin(Tracer& tracer, const char* name) {
  state_ = tracer.CurrentThreadState();
  // Sampling: while inside a skipped root span only track nesting so the
  // skip ends with the root (name_ stays null -> End() just unwinds).
  if (state_->skip_depth > 0) {
    ++state_->skip_depth;
    return;
  }
  if (state_->depth == 0) {
    const uint64_t every = tracer.sample_every();
    if (every > 1 && (state_->root_count++ % every) != 0) {
      state_->skip_depth = 1;
      return;
    }
  }
  name_ = name;
  depth_ = state_->depth++;
  // Publish this span as the thread's innermost phase for the sampling
  // profiler (obs/profiler.h); sampled-out spans (the skip path above)
  // deliberately stay invisible to it.
  internal::PushPhase(name_);
  start_raw_nanos_ = tracer.NowNanos();
  const uint64_t session_start =
      tracer.session_start_nanos_.load(std::memory_order_relaxed);
  start_nanos_ =
      start_raw_nanos_ >= session_start ? start_raw_nanos_ - session_start : 0;
}

void TraceSpan::End() {
  if (name_ == nullptr) {
    --state_->skip_depth;
    return;
  }
  internal::PopPhase();
  Tracer& tracer = Tracer::Global();
  const uint64_t end = tracer.NowNanos();
  SpanRecord record;
  record.name = name_;
  record.tid = state_->tid;
  record.depth = depth_;
  record.start_nanos = start_nanos_;
  record.dur_nanos = end >= start_raw_nanos_ ? end - start_raw_nanos_ : 0;
  record.num_args = num_args_;
  record.args = args_;
  state_->depth--;
  MutexLock lock(state_->mu);
  state_->spans.push_back(record);
}

}  // namespace isum::obs
