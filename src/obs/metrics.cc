#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace isum::obs {

namespace {

/// Quantile from (index, count) buckets via midpoint interpolation: walks
/// the cumulative distribution to rank q*(n-1) and returns that bucket's
/// midpoint. Shared by Histogram::Quantile and snapshot deltas.
double QuantileFromBuckets(
    const std::vector<std::pair<uint32_t, uint64_t>>& buckets, uint64_t count,
    double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count - 1);
  uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets) {
    cumulative += bucket_count;
    if (static_cast<double>(cumulative - 1) >= target ||
        cumulative == count) {
      return Histogram::BucketMidpoint(index);
    }
  }
  return Histogram::BucketMidpoint(buckets.back().first);
}

void FillQuantiles(HistogramSample* sample) {
  sample->p50 = QuantileFromBuckets(sample->buckets, sample->count, 0.50);
  sample->p95 = QuantileFromBuckets(sample->buckets, sample->count, 0.95);
  sample->p99 = QuantileFromBuckets(sample->buckets, sample->count, 0.99);
}

}  // namespace

size_t Counter::ShardIndex() {
  // Dense per-thread slot, assigned once: threads cycle through the shards
  // so a fixed-size pool spreads evenly.
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int exponent = std::bit_width(value) - 1;  // floor(log2(value))
  const size_t sub =
      (value >> (exponent - kSubBucketBits)) & (kSubBuckets - 1);
  return static_cast<size_t>(exponent) * kSubBuckets + sub;
}

double Histogram::BucketMidpoint(size_t index) {
  if (index < kSubBuckets) return static_cast<double>(index);
  const size_t exponent = index / kSubBuckets;
  const size_t sub = index % kSubBuckets;
  // Bucket [lo, lo + width): lo = 2^e + sub * 2^(e - kSubBucketBits).
  const double lo =
      std::ldexp(1.0, static_cast<int>(exponent)) +
      static_cast<double>(sub) *
          std::ldexp(1.0, static_cast<int>(exponent - kSubBucketBits));
  const double width = std::ldexp(1.0, static_cast<int>(exponent - kSubBucketBits));
  return lo + width / 2.0;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Quantile(double q) const {
  const auto buckets = NonZeroBuckets();
  uint64_t count = 0;
  for (const auto& [index, c] : buckets) count += c;
  return QuantileFromBuckets(buckets, count, q);
}

std::vector<std::pair<uint32_t, uint64_t>> Histogram::NonZeroBuckets() const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(static_cast<uint32_t>(i), c);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

uint64_t MetricsSnapshot::HistogramCount(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return h.count;
  }
  return 0;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  MetricsSnapshot out;
  for (const auto& [name, value] : after.counters) {
    const uint64_t prior = before.CounterValue(name);
    out.counters.emplace_back(name, value >= prior ? value - prior : 0);
  }
  out.gauges = after.gauges;
  for (const auto& h : after.histograms) {
    const HistogramSample* prior = nullptr;
    for (const auto& b : before.histograms) {
      if (b.name == h.name) {
        prior = &b;
        break;
      }
    }
    HistogramSample d;
    d.name = h.name;
    if (prior == nullptr) {
      d = h;
    } else {
      d.sum = h.sum >= prior->sum ? h.sum - prior->sum : 0;
      for (const auto& [index, count] : h.buckets) {
        uint64_t prior_count = 0;
        for (const auto& [pi, pc] : prior->buckets) {
          if (pi == index) {
            prior_count = pc;
            break;
          }
        }
        if (count > prior_count) d.buckets.emplace_back(index, count - prior_count);
      }
      for (const auto& [index, count] : d.buckets) d.count += count;
      FillQuantiles(&d);
    }
    out.histograms.push_back(std::move(d));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.buckets = histogram->NonZeroBuckets();
    for (const auto& [index, count] : sample.buckets) sample.count += count;
    sample.sum = histogram->Sum();
    FillQuantiles(&sample);
    out.histograms.push_back(std::move(sample));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace isum::obs
