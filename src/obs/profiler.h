#ifndef ISUM_OBS_PROFILER_H_
#define ISUM_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/signal_safe.h"
#include "common/thread_annotations.h"

namespace isum::obs {

/// Sampling profiler: the third pillar of the obs layer beside metrics
/// (obs/metrics.h) and tracing (obs/trace.h).
///
/// Two instruments, one Start/Stop session:
///
///  - CPU sampling: a POSIX interval timer (ITIMER_PROF) delivers SIGPROF
///    at `sample_hz` of consumed CPU time; the handler captures a backtrace
///    plus the innermost active TraceSpan name on the interrupted thread
///    into a preallocated lock-free sample buffer. Samples therefore
///    aggregate *per phase* ("compress/feature-extraction" -> its hot
///    frames). Symbolization (dladdr + demangling) happens at Stop() —
///    the handler itself is async-signal-safe (common/signal_safe.h).
///
///  - Allocation accounting (only when the tree is built with
///    -DISUM_OBS_PROFILING=ON): interposing operator new/delete hooks
///    (obs/alloc_hooks.cc) charge bytes/counts to the current phase and
///    maintain live/peak gauges. Disarmed, the hooks cost one relaxed
///    atomic load per allocation; with the option OFF they are not
///    compiled (or linked) at all, mirroring the tracer's
///    ISUM_OBS_DISABLE_TRACING elision.
///
/// Determinism: like the tracer, the profiler observes and never steers —
/// no algorithm reads sample or allocation state, so profiled runs keep
/// byte-identical selections (asserted by the profile-smoke CI job).
///
/// Bench drivers get all of this through bench_util.h ObsScope as
/// --profile= / --profile-hz= / --profile-alloc=; the resulting
/// isum-profile-v1 record and collapsed-stack file are rendered by
/// obs/export.h and read back by `tracecat profile`.

struct ProfilerOptions {
  /// SIGPROF frequency in Hz of *CPU time* (so an idle process samples
  /// rarely and a saturated one at ~hz x utilized cores). Clamped to
  /// [1, 10000]. 100 Hz adds well under 5% overhead (CI-asserted).
  int sample_hz = 100;
  /// Arm the operator new/delete accounting for the session. Ignored (with
  /// a false return from armed_allocations()) unless built with
  /// ISUM_OBS_PROFILING=ON.
  bool track_allocations = false;
  /// Sample-buffer capacity, preallocated at Start() so the signal handler
  /// never allocates. Samples past the capacity are counted as dropped.
  size_t max_samples = 1 << 15;
};

/// One aggregated unique (phase, call stack): `frames` is symbolized,
/// outermost first; `phase` is "" for samples taken outside any span.
struct ProfileStack {
  std::string phase;
  std::vector<std::string> frames;
  uint64_t count = 0;
};

/// Per-phase allocation totals for the session ("" = outside any span).
struct ProfileAllocPhase {
  std::string phase;
  uint64_t bytes = 0;
  uint64_t count = 0;
};

/// Result of Profiler::Stop(): aggregated samples plus allocation totals.
struct ProfileDump {
  int sample_hz = 0;
  uint64_t samples = 0;     ///< captured (post-aggregation sum of counts)
  uint64_t dropped = 0;     ///< lost to a full sample buffer
  uint64_t attributed = 0;  ///< samples carrying a non-empty phase
  /// Unique stacks, descending count (ties by phase then frames).
  std::vector<ProfileStack> stacks;

  bool alloc_enabled = false;
  uint64_t alloc_total_bytes = 0;
  uint64_t alloc_total_count = 0;
  /// Live bytes can go negative when memory allocated before arming is
  /// freed during the session; consumers clamp for display.
  int64_t alloc_live_bytes = 0;
  uint64_t alloc_peak_bytes = 0;
  /// Descending bytes (ties by phase name).
  std::vector<ProfileAllocPhase> alloc_phases;
};

class Profiler {
 public:
  /// The process-wide profiler ObsScope drives. Only one session can run
  /// at a time (ITIMER_PROF is per-process).
  static Profiler& Global();

  /// Starts a sampling session. Returns false if a session is already
  /// running or the platform has no ITIMER_PROF. The SIGPROF handler is
  /// installed on first use and stays installed (as a no-op between
  /// sessions) so a racing late signal can never hit SIG_DFL and kill the
  /// process.
  bool Start(const ProfilerOptions& options) ISUM_EXCLUDES(mu_);

  /// Disarms the timer, symbolizes and aggregates the captured samples,
  /// publishes allocation totals into MetricsRegistry::Global()
  /// (alloc.live_bytes / alloc.peak_bytes gauges, alloc.* phase counters),
  /// and returns the dump. Returns a default dump when not running.
  ProfileDump Stop() ISUM_EXCLUDES(mu_);

  bool running() const ISUM_EXCLUDES(mu_);

  /// Samples captured so far in the running session (0 when idle).
  /// Approximate (the buffer fills concurrently); intended for tests and
  /// progress reporting.
  uint64_t samples_captured() const;

  /// True when the allocation hooks were compiled in
  /// (-DISUM_OBS_PROFILING=ON).
  static bool alloc_hooks_compiled();

 private:
  Profiler() = default;

  mutable Mutex mu_;
  bool running_ ISUM_GUARDED_BY(mu_) = false;
  ProfilerOptions options_ ISUM_GUARDED_BY(mu_);
};

namespace internal {

/// Per-thread phase stack maintained by TraceSpan::Begin/End for recording
/// spans. The stack lives in constinit thread_local storage so the SIGPROF
/// handler — which runs on the interrupted thread — can read it without
/// locks or allocation; atomic_signal_fences order the slot write against
/// the depth publication. Deeper nesting than the fixed capacity keeps
/// counting but attributes to the deepest stored span.
void PushPhase(const char* name);
void PopPhase();
/// Innermost active span name on the calling thread (nullptr if none).
ISUM_SIGNAL_SAFE const char* CurrentPhase();

#ifdef ISUM_OBS_PROFILING
/// Allocation-hook control (obs/alloc_hooks.cc; only linked when
/// ISUM_OBS_PROFILING=ON). Arm/Disarm bracket a profiling session.
struct AllocPhaseTotals {
  const char* phase;  ///< static span name (nullptr = outside any span)
  uint64_t bytes;
  uint64_t count;
};
struct AllocSnapshot {
  uint64_t total_bytes = 0;
  uint64_t total_count = 0;
  int64_t live_bytes = 0;
  uint64_t peak_bytes = 0;
  std::vector<AllocPhaseTotals> phases;
};
void ArmAllocHooks();
/// Disarms and returns the session's totals, resetting the per-session
/// accumulators (live bytes carry over: they are genuinely still live).
AllocSnapshot DisarmAllocHooks();
#endif  // ISUM_OBS_PROFILING

}  // namespace internal

}  // namespace isum::obs

#endif  // ISUM_OBS_PROFILER_H_
