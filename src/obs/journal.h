#ifndef ISUM_OBS_JOURNAL_H_
#define ISUM_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isum::obs {

/// Decision-provenance journal: the `isum-events-v1` JSONL stream.
///
/// Where metrics answer "how much" and traces answer "how long", the journal
/// answers *why*: which query won each greedy round and by what margin,
/// which index each enumeration round added, what the budget machinery did
/// to the result, and how estimated benefit compared to evaluated benefit.
/// Bench drivers open it with --journal=<path>; `tracecat explain`
/// reconstructs the run from it (docs/OBSERVABILITY.md documents the full
/// schema and a worked walkthrough).
///
/// Format: one flat JSON object per line. Every line carries
///   "event" — the record type (see the typed emitters below),
///   "seq"   — a dense 0-based sequence number (gap = truncated file),
///   "t_us"  — microseconds since Open(), from an injectable clock.
/// The first line is always `journal_begin` (which carries the schema tag)
/// and a cleanly closed journal ends with `journal_end`.
///
/// Cost model: journaling is off by default; every emitter starts with one
/// relaxed atomic load and returns immediately when no journal is open.
/// Events are buffered stdio writes under a mutex — emitters sit at
/// per-round/per-decision frequency (k events per compression, one per
/// enumeration round), never inside the O(n²) inner loops. Events whose
/// stop_reason is not "complete" flush the stream eagerly so truncated
/// runs leave complete artifacts on disk (docs/ROBUSTNESS.md).
///
/// Determinism: journaling must never influence control flow — callers may
/// not branch on journal state beyond the enabled() fast path, and tests
/// assert only on event contents that are deterministic for a fixed
/// workload (ids, rounds, hashes), never on timestamps.
class Journal {
 public:
  /// The process-wide journal every library layer emits into.
  static Journal& Global();

  /// Opens (truncates) `path` and emits `journal_begin`. `label` names the
  /// producing run (bench binary, test name). Returns false without
  /// enabling when the file cannot be created. Reopening closes the
  /// previous journal first.
  bool Open(const std::string& path, const std::string& label);

  /// Emits `journal_end`, flushes, and closes. No-op when closed.
  void Close();

  /// One relaxed load: the emitters' fast-path guard. Callers may use it to
  /// skip argument computation, never to change what the library does.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Test hook: replaces the timestamp clock with a deterministic source
  /// (nullptr restores the steady clock). Returns nanoseconds.
  using ClockFn = uint64_t (*)();
  void SetClockForTest(ClockFn fn) {
    clock_.store(fn, std::memory_order_relaxed);
  }

  /// Lines written since Open() (including journal_begin). For tests.
  uint64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }

  /// Flushes buffered events to disk (also done automatically by Close()
  /// and by any event carrying an abnormal stop_reason).
  void Flush();

  // ---- typed emitters (all no-ops while closed) ----

  /// Greedy selection started: `n_queries` inputs, target size `k`.
  void CompressBegin(uint64_t n_queries, uint64_t k, const char* algorithm,
                     uint64_t threads);
  /// Round `round` chose `query` with marginal `benefit`. `gap` is the
  /// margin over the runner-up candidate (-1 when the round had no
  /// runner-up); `shard` is the argmax shard the winner came from (always 0
  /// for the serial summary algorithm); `eligible` the candidate count.
  void SelectRound(uint64_t round, uint64_t query, double benefit, double gap,
                   uint64_t shard, uint64_t eligible);
  /// Algorithm 2, line 12: every remaining query was fully covered, so
  /// unselected features were reset to their original weights.
  void FeatureReset(uint64_t selected_so_far);
  /// Selection finished: `selection_hash` is SelectionOrderHash() over the
  /// chosen ids in order (tracecat explain recomputes and verifies it).
  void CompressEnd(uint64_t selected, uint64_t selection_hash,
                   double benefit_sum, const char* stop_reason);

  /// Enumeration round `round` evaluated `candidates` configurations and
  /// added pool index `best_index` with `best_improvement`. `cache_hits` /
  /// `optimizer_calls` are this round's what-if deltas.
  void EnumRound(uint64_t round, uint64_t candidates, uint64_t best_index,
                 double best_improvement, uint64_t cache_hits,
                 uint64_t optimizer_calls);
  void EnumEnd(uint64_t config_size, double initial_cost, double final_cost,
               const char* stop_reason);

  /// A transient failure at `site` is being retried (attempt is 1-based).
  void Retry(const char* site, uint64_t attempt, uint64_t backoff_nanos);
  /// A failure at `site` was surfaced to the caller (persistent or
  /// non-retryable); `code` is the Status code name.
  void Fault(const char* site, const char* code);

  /// Budget consumption timeline: rate-limited internally to one event per
  /// ~250ms of journal-clock time, so budget polls can call this freely.
  void BudgetTick(double remaining_seconds);
  /// The budget stopped the run. Deduplicated per consecutive `reason`
  /// (identity-compared, so pass StopReasonToString() results).
  void BudgetStop(const char* reason);

  /// A checkpoint epoch was written: `phase` is "compress" or "enum",
  /// `rounds` the rounds captured, `bytes` the serialized image size.
  void CkptWrite(const char* phase, uint64_t epoch, uint64_t rounds,
                 uint64_t bytes);
  /// A run resumed from a checkpoint: `restored` rounds were replayed and
  /// `prefix_hash` is SelectionOrderHash() over the restored prefix (or 0
  /// for enumeration restores). `done` is 1 when the checkpointed run had
  /// already finished. tracecat explain seeds its incremental hash from
  /// this event so resumed journals still verify.
  void CkptRestore(const char* phase, uint64_t epoch, uint64_t restored,
                   uint64_t prefix_hash, uint64_t done);

  /// Post-eval attribution for one selected query: the benefit selection
  /// estimated vs. the cost reduction the recommended configuration
  /// realized on that query.
  void Attribution(uint64_t query, double weight, double estimated_benefit,
                   double realized_benefit);
  void PipelineEnd(const char* algorithm, uint64_t k,
                   double improvement_percent, const char* stop_reason);

 private:
  Journal() = default;
  uint64_t NowNanos() const;
  /// Appends the common prefix + `body` (the comma-led field tail, e.g.
  /// `,"round":3`) as one line; flushes when `flush` is set.
  void EmitLine(const char* event, const char* body, bool flush);
  void CloseLocked() ISUM_REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_{nullptr};
  std::atomic<uint64_t> events_written_{0};
  std::atomic<uint64_t> last_tick_nanos_{0};
  std::atomic<const char*> last_stop_reason_{nullptr};
  mutable Mutex mu_;
  std::FILE* file_ ISUM_GUARDED_BY(mu_) = nullptr;
  uint64_t seq_ ISUM_GUARDED_BY(mu_) = 0;
  uint64_t open_nanos_ ISUM_GUARDED_BY(mu_) = 0;
};

/// FNV-1a over a selection order: equal selections <=> equal hashes. The
/// single definition shared by compress_end events, the bench drivers'
/// recorded `selection_hash`, and tracecat explain's verification.
inline uint64_t SelectionOrderHash(const size_t* selected, size_t count) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < count; ++i) {
    h ^= static_cast<uint64_t>(selected[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace isum::obs

#endif  // ISUM_OBS_JOURNAL_H_
