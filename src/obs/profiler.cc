#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define ISUM_PROFILER_HAVE_SIGPROF 1
#include <sys/time.h>
#endif

#if defined(ISUM_PROFILER_HAVE_SIGPROF) && defined(__has_include)
#if __has_include(<execinfo.h>)
#define ISUM_PROFILER_HAVE_BACKTRACE 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#endif
#endif

#include "obs/metrics.h"

namespace isum::obs {

namespace {

/// Frames captured per sample. 24 covers the repo's deepest pipelines;
/// deeper stacks are truncated at the outer end (the leaf frames — the
/// interesting ones — come first from backtrace()).
constexpr int kMaxFrames = 24;

struct RawSample {
  const char* phase;
  int num_frames;
  void* pcs[kMaxFrames];
};

/// Lock-free sample sink: the handler claims a slot with one fetch_add, so
/// any thread — registered with the tracer or not — can be sampled without
/// allocation or locking. Preallocated in Start(), drained in Stop().
struct SampleBuffer {
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> dropped{0};
  uint64_t capacity = 0;
  RawSample* samples = nullptr;
};

/// The buffer the SIGPROF handler writes into; null between sessions (the
/// handler stays installed but becomes a no-op).
std::atomic<SampleBuffer*> g_active_buffer{nullptr};
bool g_handler_installed = false;

// --- per-thread phase stack (read by the signal handler) ---

constexpr uint32_t kPhaseStackDepth = 64;
constinit thread_local const char* g_phase_stack[kPhaseStackDepth] = {};
constinit thread_local std::atomic<uint32_t> g_phase_depth{0};

/// Best-effort symbol name for one pc: dynamic-symbol lookup plus C++
/// demangling, hex fallback. Executables export their symbols to dladdr
/// via CMAKE_ENABLE_EXPORTS (-rdynamic) in the top-level CMakeLists.
std::string SymbolizePc(void* pc) {
#ifdef ISUM_PROFILER_HAVE_BACKTRACE
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    std::free(demangled);
    return info.dli_sname;
  }
#endif
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<uintptr_t>(pc)));
  return buf;
}

/// Drops the handler's own frames from the innermost end of a symbolized
/// stack. The frame directly above `SigprofHandler` is always the signal
/// trampoline (`__restore_rt`), which often has no dynamic symbol and
/// would otherwise survive as a constant hex leaf on every sample — so it
/// is skipped positionally, not by name. Falls back to trimming the
/// single leading frame (the handler) when neither name resolves.
/// Harmless if the heuristic misses — only the leaf frame is affected.
size_t LeadingHandlerFrames(const std::vector<std::string>& names) {
  const size_t probe = std::min<size_t>(names.size(), 4);
  for (size_t i = 0; i < probe; ++i) {
    if (names[i].find("SigprofHandler") != std::string::npos) {
      return std::min(i + 2, names.size());
    }
    if (names[i].find("__restore_rt") != std::string::npos) {
      return i + 1;
    }
  }
  return names.empty() ? 0 : 1;
}

}  // namespace

namespace internal {

void PushPhase(const char* name) {
  const uint32_t depth = g_phase_depth.load(std::memory_order_relaxed);
  if (depth < kPhaseStackDepth) g_phase_stack[depth] = name;
  // Order the slot write before the depth publication for the handler,
  // which runs on this same thread: a compiler fence is sufficient.
  std::atomic_signal_fence(std::memory_order_release);
  g_phase_depth.store(depth + 1, std::memory_order_relaxed);
}

void PopPhase() {
  const uint32_t depth = g_phase_depth.load(std::memory_order_relaxed);
  if (depth > 0) g_phase_depth.store(depth - 1, std::memory_order_relaxed);
}

ISUM_SIGNAL_SAFE const char* CurrentPhase() {
  const uint32_t depth = g_phase_depth.load(std::memory_order_relaxed);
  std::atomic_signal_fence(std::memory_order_acquire);
  if (depth == 0) return nullptr;
  const uint32_t top = std::min(depth, kPhaseStackDepth) - 1;
  return g_phase_stack[top];
}

// External linkage on purpose (not the anonymous namespace): with
// CMAKE_ENABLE_EXPORTS the handler then has a dynamic symbol, so
// Stop()'s symbolization can recognize it by name and trim the
// handler + trampoline frames off every captured stack.
ISUM_SIGNAL_SAFE void SigprofHandler(int /*sig*/, siginfo_t* /*info*/,
                                     void* /*ucontext*/) {
  const int saved_errno = errno;
  SampleBuffer* buffer = g_active_buffer.load(std::memory_order_acquire);
  if (buffer != nullptr) {
    const uint64_t slot = buffer->next.fetch_add(1, std::memory_order_relaxed);
    if (slot < buffer->capacity) {
      RawSample& sample = buffer->samples[slot];
      sample.phase = CurrentPhase();
#ifdef ISUM_PROFILER_HAVE_BACKTRACE
      // backtrace() is not on the POSIX async-signal-safe list, but its
      // lazy one-time initialization (the only allocating part on glibc)
      // was forced in Start() before the timer was armed; the walk itself
      // is reentrant. This is the standard sampling-profiler pattern.
      sample.num_frames = backtrace(sample.pcs, kMaxFrames);
#else
      sample.num_frames = 0;
#endif
    } else {
      buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

}  // namespace internal

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

bool Profiler::alloc_hooks_compiled() {
#ifdef ISUM_OBS_PROFILING
  return true;
#else
  return false;
#endif
}

bool Profiler::running() const {
  MutexLock lock(mu_);
  return running_;
}

uint64_t Profiler::samples_captured() const {
  SampleBuffer* buffer = g_active_buffer.load(std::memory_order_acquire);
  if (buffer == nullptr) return 0;
  return std::min(buffer->next.load(std::memory_order_relaxed),
                  buffer->capacity);
}

bool Profiler::Start(const ProfilerOptions& options) {
#ifndef ISUM_PROFILER_HAVE_SIGPROF
  (void)options;
  return false;
#else
  MutexLock lock(mu_);
  if (running_) return false;
  options_ = options;
  options_.sample_hz = std::clamp(options_.sample_hz, 1, 10000);
  options_.max_samples = std::max<size_t>(options_.max_samples, 16);

  auto* buffer = new SampleBuffer();
  buffer->capacity = options_.max_samples;
  buffer->samples = new RawSample[buffer->capacity];

#ifdef ISUM_PROFILER_HAVE_BACKTRACE
  // Force glibc's lazy unwinder setup (it dlopens libgcc_s and allocates
  // on the first call) outside signal context, before the timer is armed.
  void* warmup[kMaxFrames];
  (void)backtrace(warmup, kMaxFrames);
#endif

  if (!g_handler_installed) {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = &internal::SigprofHandler;
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGPROF, &action, nullptr) != 0) {
      delete[] buffer->samples;
      delete buffer;
      return false;
    }
    g_handler_installed = true;
  }
  g_active_buffer.store(buffer, std::memory_order_release);

#ifdef ISUM_OBS_PROFILING
  if (options_.track_allocations) internal::ArmAllocHooks();
#endif

  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  const long interval_usec =
      std::max(1L, 1'000'000L / static_cast<long>(options_.sample_hz));
  timer.it_interval.tv_usec = interval_usec;
  timer.it_value.tv_usec = interval_usec;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
#ifdef ISUM_OBS_PROFILING
    if (options_.track_allocations) (void)internal::DisarmAllocHooks();
#endif
    g_active_buffer.store(nullptr, std::memory_order_release);
    delete[] buffer->samples;
    delete buffer;
    return false;
  }
  running_ = true;
  return true;
#endif  // ISUM_PROFILER_HAVE_SIGPROF
}

ProfileDump Profiler::Stop() {
  MutexLock lock(mu_);
  ProfileDump dump;
  if (!running_) return dump;
  running_ = false;
  dump.sample_hz = options_.sample_hz;

#ifdef ISUM_PROFILER_HAVE_SIGPROF
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  (void)setitimer(ITIMER_PROF, &off, nullptr);
#endif
  SampleBuffer* buffer =
      g_active_buffer.exchange(nullptr, std::memory_order_acq_rel);

#ifdef ISUM_OBS_PROFILING
  if (options_.track_allocations) {
    internal::AllocSnapshot alloc = internal::DisarmAllocHooks();
    dump.alloc_enabled = true;
    dump.alloc_total_bytes = alloc.total_bytes;
    dump.alloc_total_count = alloc.total_count;
    dump.alloc_live_bytes = alloc.live_bytes;
    dump.alloc_peak_bytes = alloc.peak_bytes;
    for (const internal::AllocPhaseTotals& phase : alloc.phases) {
      // Merge by content: distinct static strings can spell the same name.
      const std::string name = phase.phase != nullptr ? phase.phase : "";
      ProfileAllocPhase* merged = nullptr;
      for (ProfileAllocPhase& existing : dump.alloc_phases) {
        if (existing.phase == name) {
          merged = &existing;
          break;
        }
      }
      if (merged == nullptr) {
        dump.alloc_phases.push_back(ProfileAllocPhase{name, 0, 0});
        merged = &dump.alloc_phases.back();
      }
      merged->bytes += phase.bytes;
      merged->count += phase.count;
    }
    std::sort(dump.alloc_phases.begin(), dump.alloc_phases.end(),
              [](const ProfileAllocPhase& a, const ProfileAllocPhase& b) {
                if (a.bytes != b.bytes) return a.bytes > b.bytes;
                return a.phase < b.phase;
              });
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetGauge("alloc.live_bytes")
        ->Set(static_cast<double>(dump.alloc_live_bytes));
    registry.GetGauge("alloc.peak_bytes")
        ->Set(static_cast<double>(dump.alloc_peak_bytes));
    registry.GetCounter("alloc.bytes_total")->Add(dump.alloc_total_bytes);
    registry.GetCounter("alloc.count_total")->Add(dump.alloc_total_count);
    for (const ProfileAllocPhase& phase : dump.alloc_phases) {
      if (phase.phase.empty()) continue;
      registry.GetCounter("alloc." + phase.phase + ".bytes")
          ->Add(phase.bytes);
      registry.GetCounter("alloc." + phase.phase + ".count")
          ->Add(phase.count);
    }
  }
#endif  // ISUM_OBS_PROFILING

  if (buffer == nullptr) return dump;
  // One in-flight signal can still be writing the slot it claimed before
  // the exchange above; it bounds-checked the slot and the buffer stays
  // alive until the end of this function, so the worst case is one sample
  // racing into a slot we read below — acceptable for a sampler.
  const uint64_t captured = std::min(
      buffer->next.load(std::memory_order_acquire), buffer->capacity);
  dump.samples = captured;
  dump.dropped = buffer->dropped.load(std::memory_order_relaxed);

  // Symbolize (cached per pc) and aggregate unique (phase, stack) pairs.
  std::unordered_map<void*, std::string> symbol_cache;
  auto symbol = [&symbol_cache](void* pc) -> const std::string& {
    auto it = symbol_cache.find(pc);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(pc, SymbolizePc(pc)).first;
    }
    return it->second;
  };
  std::unordered_map<std::string, size_t> stack_index;
  for (uint64_t i = 0; i < captured; ++i) {
    const RawSample& sample = buffer->samples[i];
    if (sample.phase != nullptr) ++dump.attributed;
    // Innermost-first from backtrace(); trim our handler, then reverse to
    // outermost-first for the collapsed/flamegraph convention.
    std::vector<std::string> names;
    const int num_frames = std::clamp(sample.num_frames, 0, kMaxFrames);
    names.reserve(static_cast<size_t>(num_frames));
    for (int f = 0; f < num_frames; ++f) names.push_back(symbol(sample.pcs[f]));
    names.erase(names.begin(),
                names.begin() + static_cast<ptrdiff_t>(
                                    LeadingHandlerFrames(names)));
    std::reverse(names.begin(), names.end());

    std::string key = sample.phase != nullptr ? sample.phase : "";
    for (const std::string& name : names) {
      key += '\n';
      key += name;
    }
    auto [it, inserted] = stack_index.emplace(key, dump.stacks.size());
    if (inserted) {
      ProfileStack stack;
      stack.phase = sample.phase != nullptr ? sample.phase : "";
      stack.frames = std::move(names);
      dump.stacks.push_back(std::move(stack));
    }
    ++dump.stacks[it->second].count;
  }
  std::sort(dump.stacks.begin(), dump.stacks.end(),
            [](const ProfileStack& a, const ProfileStack& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.frames < b.frames;
            });
  delete[] buffer->samples;
  delete buffer;
  return dump;
}

}  // namespace isum::obs
