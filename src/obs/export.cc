#include "obs/export.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::obs {

namespace {

/// Nanoseconds -> microseconds string with nanosecond precision.
std::string Micros(uint64_t nanos) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(nanos / 1000),
                   static_cast<unsigned long long>(nanos % 1000));
}

std::string ThreadName(const TraceDump& dump, uint32_t tid) {
  if (tid < dump.thread_names.size() && !dump.thread_names[tid].empty()) {
    return dump.thread_names[tid];
  }
  return StrFormat("thread-%u", tid);
}

/// The span's typed args as JSON object fields (",\"k\":50,...") appended
/// after the "depth" field both exporters lead with.
std::string SpanArgsJson(const SpanRecord& span) {
  std::string out;
  const uint32_t n =
      std::min<uint32_t>(span.num_args, SpanRecord::kMaxArgs);
  for (uint32_t i = 0; i < n; ++i) {
    const SpanArg& arg = span.args[i];
    if (arg.key == nullptr) continue;
    switch (arg.kind) {
      case SpanArg::Kind::kInt:
        out += StrFormat(",\"%s\":%lld", JsonEscape(arg.key).c_str(),
                         static_cast<long long>(arg.int_value));
        break;
      case SpanArg::Kind::kDouble:
        out += StrFormat(",\"%s\":%.9g", JsonEscape(arg.key).c_str(),
                         arg.double_value);
        break;
      case SpanArg::Kind::kString:
        out += StrFormat(
            ",\"%s\":\"%s\"", JsonEscape(arg.key).c_str(),
            JsonEscape(arg.string_value != nullptr ? arg.string_value : "")
                .c_str());
        break;
    }
  }
  return out;
}

/// Metric name in the Prometheus exposition alphabet: [a-zA-Z0-9_] with the
/// repo-wide `isum_` prefix ("whatif.cache_hits" -> "isum_whatif_cache_hits").
std::string PrometheusName(const std::string& name) {
  std::string out = "isum_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const TraceDump& dump) {
  std::string out = "[\n";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  for (uint32_t tid = 0; tid < dump.thread_names.size(); ++tid) {
    append(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(ThreadName(dump, tid)).c_str()));
  }
  for (const SpanRecord& span : dump.spans) {
    append(StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
        "\"cat\":\"isum\",\"ts\":%s,\"dur\":%s,\"args\":{\"depth\":%u%s}}",
        span.tid, JsonEscape(span.name).c_str(),
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str(),
        span.depth, SpanArgsJson(span).c_str()));
  }
  out += "\n]\n";
  return out;
}

std::string SpansJsonl(const TraceDump& dump) {
  std::string out;
  for (const SpanRecord& span : dump.spans) {
    // Args render as a nested object only when present, so span lines
    // without args keep their historical shape.
    const std::string args = SpanArgsJson(span);
    const std::string args_field =
        args.empty() ? std::string()
                     : StrFormat(",\"args\":{%s}", args.substr(1).c_str());
    out += StrFormat(
        "{\"type\":\"span\",\"name\":\"%s\",\"tid\":%u,\"thread\":\"%s\","
        "\"depth\":%u,\"start_us\":%s,\"dur_us\":%s%s}\n",
        JsonEscape(span.name).c_str(), span.tid,
        JsonEscape(ThreadName(dump, span.tid)).c_str(), span.depth,
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str(),
        args_field.c_str());
  }
  return out;
}

std::string MetricsJsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}\n",
                     JsonEscape(name).c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    out += StrFormat(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
        "\"sum\":%llu,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}\n",
        JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum), h.p50, h.p95, h.p99);
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n", prom.c_str());
    out += StrFormat("%s %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n", prom.c_str());
    out += StrFormat("%s %.6g\n", prom.c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    // Log-scale histograms export as precomputed-quantile summaries: the
    // native bucket boundaries are not cumulative `le` thresholds, and the
    // registry already answers p50/p95/p99 from them.
    const std::string prom = PrometheusName(h.name);
    out += StrFormat("# TYPE %s summary\n", prom.c_str());
    out += StrFormat("%s{quantile=\"0.5\"} %.6g\n", prom.c_str(), h.p50);
    out += StrFormat("%s{quantile=\"0.95\"} %.6g\n", prom.c_str(), h.p95);
    out += StrFormat("%s{quantile=\"0.99\"} %.6g\n", prom.c_str(), h.p99);
    out += StrFormat("%s_sum %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(h.sum));
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

namespace {

/// Frames kept in the isum-profile-v1 record (the collapsed-stack file is
/// complete; the JSON is the triage view `tracecat profile` renders).
constexpr size_t kMaxProfileFrames = 64;

std::string CollapsedToken(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), ';', ':');
  std::replace(out.begin(), out.end(), '\n', ' ');
  return out;
}

const char* PhaseOrUnattributed(const std::string& phase) {
  return phase.empty() ? "(unattributed)" : phase.c_str();
}

}  // namespace

std::string CollapsedStacks(const ProfileDump& dump) {
  std::string out;
  for (const ProfileStack& stack : dump.stacks) {
    std::string line = CollapsedToken(PhaseOrUnattributed(stack.phase));
    for (const std::string& frame : stack.frames) {
      line += ';';
      line += CollapsedToken(frame);
    }
    out += StrFormat("%s %llu\n", line.c_str(),
                     static_cast<unsigned long long>(stack.count));
  }
  return out;
}

std::string ProfileJson(const ProfileDump& dump, const ProfileMeta& meta) {
  // Per-phase sample totals ("" renders as "(unattributed)").
  struct PhaseRow {
    std::string name;
    uint64_t samples = 0;
  };
  std::vector<PhaseRow> phases;
  for (const ProfileStack& stack : dump.stacks) {
    const std::string name = PhaseOrUnattributed(stack.phase);
    PhaseRow* row = nullptr;
    for (PhaseRow& existing : phases) {
      if (existing.name == name) {
        row = &existing;
        break;
      }
    }
    if (row == nullptr) {
      phases.push_back(PhaseRow{name, 0});
      row = &phases.back();
    }
    row->samples += stack.count;
  }
  std::sort(phases.begin(), phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.name < b.name;
            });

  // Frame self/total: self counts leaf occurrences, total counts stacks
  // containing the frame (once per stack, so recursion doesn't inflate it).
  struct FrameRow {
    std::string name;
    uint64_t self = 0;
    uint64_t total = 0;
  };
  std::vector<FrameRow> frames;
  std::unordered_map<std::string, size_t> frame_index;
  auto frame_row = [&](const std::string& name) -> FrameRow& {
    auto [it, inserted] = frame_index.emplace(name, frames.size());
    if (inserted) frames.push_back(FrameRow{name, 0, 0});
    return frames[it->second];
  };
  for (const ProfileStack& stack : dump.stacks) {
    if (stack.frames.empty()) continue;
    frame_row(stack.frames.back()).self += stack.count;
    std::unordered_set<std::string> seen;
    for (const std::string& frame : stack.frames) {
      if (seen.insert(frame).second) frame_row(frame).total += stack.count;
    }
  }
  std::sort(frames.begin(), frames.end(),
            [](const FrameRow& a, const FrameRow& b) {
              if (a.self != b.self) return a.self > b.self;
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  if (frames.size() > kMaxProfileFrames) frames.resize(kMaxProfileFrames);

  const double attributed_percent =
      dump.samples > 0
          ? 100.0 * static_cast<double>(dump.attributed) /
                static_cast<double>(dump.samples)
          : 0.0;

  std::string out;
  out += "{\n";
  out += "\"schema\": \"isum-profile-v1\",\n";
  out += StrFormat("\"label\": \"%s\",\n", JsonEscape(meta.label).c_str());
  out += StrFormat("\"bench\": \"%s\",\n", JsonEscape(meta.bench).c_str());
  out += StrFormat("\"git_rev\": \"%s\",\n", JsonEscape(meta.git_rev).c_str());
  out += StrFormat("\"sample_hz\": %d,\n", dump.sample_hz);
  out += StrFormat("\"wall_seconds\": %.6f,\n", meta.wall_seconds);
  out += StrFormat("\"samples\": %llu,\n",
                   static_cast<unsigned long long>(dump.samples));
  out += StrFormat("\"dropped\": %llu,\n",
                   static_cast<unsigned long long>(dump.dropped));
  out += StrFormat("\"attributed_samples\": %llu,\n",
                   static_cast<unsigned long long>(dump.attributed));
  out += StrFormat("\"attributed_percent\": %.2f,\n", attributed_percent);
  out += StrFormat("\"alloc_enabled\": %d,\n", dump.alloc_enabled ? 1 : 0);
  out += StrFormat("\"alloc_total_bytes\": %llu,\n",
                   static_cast<unsigned long long>(dump.alloc_total_bytes));
  out += StrFormat("\"alloc_total_count\": %llu,\n",
                   static_cast<unsigned long long>(dump.alloc_total_count));
  out += StrFormat("\"alloc_live_bytes\": %lld,\n",
                   static_cast<long long>(dump.alloc_live_bytes));
  out += StrFormat("\"alloc_peak_bytes\": %llu,\n",
                   static_cast<unsigned long long>(dump.alloc_peak_bytes));
  out += "\"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const double percent =
        dump.samples > 0 ? 100.0 * static_cast<double>(phases[i].samples) /
                               static_cast<double>(dump.samples)
                         : 0.0;
    out += StrFormat(
        "{\"name\": \"%s\", \"samples\": %llu, \"percent\": %.2f}%s\n",
        JsonEscape(phases[i].name).c_str(),
        static_cast<unsigned long long>(phases[i].samples), percent,
        i + 1 < phases.size() ? "," : "");
  }
  out += "],\n";
  out += "\"frames\": [\n";
  for (size_t i = 0; i < frames.size(); ++i) {
    out += StrFormat(
        "{\"name\": \"%s\", \"self\": %llu, \"total\": %llu}%s\n",
        JsonEscape(frames[i].name).c_str(),
        static_cast<unsigned long long>(frames[i].self),
        static_cast<unsigned long long>(frames[i].total),
        i + 1 < frames.size() ? "," : "");
  }
  out += "],\n";
  out += "\"alloc_phases\": [\n";
  for (size_t i = 0; i < dump.alloc_phases.size(); ++i) {
    const ProfileAllocPhase& phase = dump.alloc_phases[i];
    out += StrFormat(
        "{\"name\": \"%s\", \"bytes\": %llu, \"count\": %llu}%s\n",
        JsonEscape(PhaseOrUnattributed(phase.phase)).c_str(),
        static_cast<unsigned long long>(phase.bytes),
        static_cast<unsigned long long>(phase.count),
        i + 1 < dump.alloc_phases.size() ? "," : "");
  }
  out += "]\n";
  out += "}\n";
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace isum::obs
