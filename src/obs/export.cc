#include "obs/export.h"

#include <fstream>

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::obs {

namespace {

/// Nanoseconds -> microseconds string with nanosecond precision.
std::string Micros(uint64_t nanos) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(nanos / 1000),
                   static_cast<unsigned long long>(nanos % 1000));
}

std::string ThreadName(const TraceDump& dump, uint32_t tid) {
  if (tid < dump.thread_names.size() && !dump.thread_names[tid].empty()) {
    return dump.thread_names[tid];
  }
  return StrFormat("thread-%u", tid);
}

/// The span's typed args as JSON object fields (",\"k\":50,...") appended
/// after the "depth" field both exporters lead with.
std::string SpanArgsJson(const SpanRecord& span) {
  std::string out;
  const uint32_t n =
      std::min<uint32_t>(span.num_args, SpanRecord::kMaxArgs);
  for (uint32_t i = 0; i < n; ++i) {
    const SpanArg& arg = span.args[i];
    if (arg.key == nullptr) continue;
    switch (arg.kind) {
      case SpanArg::Kind::kInt:
        out += StrFormat(",\"%s\":%lld", JsonEscape(arg.key).c_str(),
                         static_cast<long long>(arg.int_value));
        break;
      case SpanArg::Kind::kDouble:
        out += StrFormat(",\"%s\":%.9g", JsonEscape(arg.key).c_str(),
                         arg.double_value);
        break;
      case SpanArg::Kind::kString:
        out += StrFormat(
            ",\"%s\":\"%s\"", JsonEscape(arg.key).c_str(),
            JsonEscape(arg.string_value != nullptr ? arg.string_value : "")
                .c_str());
        break;
    }
  }
  return out;
}

/// Metric name in the Prometheus exposition alphabet: [a-zA-Z0-9_] with the
/// repo-wide `isum_` prefix ("whatif.cache_hits" -> "isum_whatif_cache_hits").
std::string PrometheusName(const std::string& name) {
  std::string out = "isum_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const TraceDump& dump) {
  std::string out = "[\n";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  for (uint32_t tid = 0; tid < dump.thread_names.size(); ++tid) {
    append(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(ThreadName(dump, tid)).c_str()));
  }
  for (const SpanRecord& span : dump.spans) {
    append(StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
        "\"cat\":\"isum\",\"ts\":%s,\"dur\":%s,\"args\":{\"depth\":%u%s}}",
        span.tid, JsonEscape(span.name).c_str(),
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str(),
        span.depth, SpanArgsJson(span).c_str()));
  }
  out += "\n]\n";
  return out;
}

std::string SpansJsonl(const TraceDump& dump) {
  std::string out;
  for (const SpanRecord& span : dump.spans) {
    // Args render as a nested object only when present, so span lines
    // without args keep their historical shape.
    const std::string args = SpanArgsJson(span);
    const std::string args_field =
        args.empty() ? std::string()
                     : StrFormat(",\"args\":{%s}", args.substr(1).c_str());
    out += StrFormat(
        "{\"type\":\"span\",\"name\":\"%s\",\"tid\":%u,\"thread\":\"%s\","
        "\"depth\":%u,\"start_us\":%s,\"dur_us\":%s%s}\n",
        JsonEscape(span.name).c_str(), span.tid,
        JsonEscape(ThreadName(dump, span.tid)).c_str(), span.depth,
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str(),
        args_field.c_str());
  }
  return out;
}

std::string MetricsJsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}\n",
                     JsonEscape(name).c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    out += StrFormat(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
        "\"sum\":%llu,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}\n",
        JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum), h.p50, h.p95, h.p99);
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s counter\n", prom.c_str());
    out += StrFormat("%s %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += StrFormat("# TYPE %s gauge\n", prom.c_str());
    out += StrFormat("%s %.6g\n", prom.c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    // Log-scale histograms export as precomputed-quantile summaries: the
    // native bucket boundaries are not cumulative `le` thresholds, and the
    // registry already answers p50/p95/p99 from them.
    const std::string prom = PrometheusName(h.name);
    out += StrFormat("# TYPE %s summary\n", prom.c_str());
    out += StrFormat("%s{quantile=\"0.5\"} %.6g\n", prom.c_str(), h.p50);
    out += StrFormat("%s{quantile=\"0.95\"} %.6g\n", prom.c_str(), h.p95);
    out += StrFormat("%s{quantile=\"0.99\"} %.6g\n", prom.c_str(), h.p99);
    out += StrFormat("%s_sum %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(h.sum));
    out += StrFormat("%s_count %llu\n", prom.c_str(),
                     static_cast<unsigned long long>(h.count));
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace isum::obs
