#include "obs/export.h"

#include <fstream>

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::obs {

namespace {

/// Nanoseconds -> microseconds string with nanosecond precision.
std::string Micros(uint64_t nanos) {
  return StrFormat("%llu.%03llu",
                   static_cast<unsigned long long>(nanos / 1000),
                   static_cast<unsigned long long>(nanos % 1000));
}

std::string ThreadName(const TraceDump& dump, uint32_t tid) {
  if (tid < dump.thread_names.size() && !dump.thread_names[tid].empty()) {
    return dump.thread_names[tid];
  }
  return StrFormat("thread-%u", tid);
}

}  // namespace

std::string ChromeTraceJson(const TraceDump& dump) {
  std::string out = "[\n";
  bool first = true;
  auto append = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };
  for (uint32_t tid = 0; tid < dump.thread_names.size(); ++tid) {
    append(StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%s\"}}",
        tid, JsonEscape(ThreadName(dump, tid)).c_str()));
  }
  for (const SpanRecord& span : dump.spans) {
    append(StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"name\":\"%s\","
        "\"cat\":\"isum\",\"ts\":%s,\"dur\":%s,\"args\":{\"depth\":%u}}",
        span.tid, JsonEscape(span.name).c_str(),
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str(),
        span.depth));
  }
  out += "\n]\n";
  return out;
}

std::string SpansJsonl(const TraceDump& dump) {
  std::string out;
  for (const SpanRecord& span : dump.spans) {
    out += StrFormat(
        "{\"type\":\"span\",\"name\":\"%s\",\"tid\":%u,\"thread\":\"%s\","
        "\"depth\":%u,\"start_us\":%s,\"dur_us\":%s}\n",
        JsonEscape(span.name).c_str(), span.tid,
        JsonEscape(ThreadName(dump, span.tid)).c_str(), span.depth,
        Micros(span.start_nanos).c_str(), Micros(span.dur_nanos).c_str());
  }
  return out;
}

std::string MetricsJsonl(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += StrFormat("{\"type\":\"counter\",\"name\":\"%s\",\"value\":%llu}\n",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += StrFormat("{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.6g}\n",
                     JsonEscape(name).c_str(), value);
  }
  for (const auto& h : snapshot.histograms) {
    out += StrFormat(
        "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%llu,"
        "\"sum\":%llu,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}\n",
        JsonEscape(h.name).c_str(), static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.sum), h.p50, h.p95, h.p99);
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace isum::obs
