#include "obs/journal.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstring>

namespace isum::obs {

namespace {

/// Minimum journal-clock distance between two budget_tick events. Budget
/// polls fire per round *and* per what-if call; the timeline only needs
/// coarse consumption samples.
constexpr uint64_t kBudgetTickPeriodNanos = 250'000'000;  // 250ms

/// Journal lines are bounded: static event names plus numeric fields. The
/// only variable-length field is the Open() label, escaped and truncated
/// into its own bounded buffer.
constexpr size_t kLineCapacity = 512;

/// printf into `buf` at `*len`, saturating at the capacity (a truncated
/// line is still NUL-terminated; callers emit what fits).
void AppendF(char* buf, size_t* len, const char* fmt, ...) {
  if (*len >= kLineCapacity) return;
  va_list args;
  va_start(args, fmt);
  const int n =
      std::vsnprintf(buf + *len, kLineCapacity - *len, fmt, args);
  va_end(args);
  if (n > 0) {
    *len += static_cast<size_t>(n);
    if (*len > kLineCapacity) *len = kLineCapacity;
  }
}

/// JSON string escape into a bounded buffer (quotes, backslash, control
/// bytes). Journal strings are labels and static identifiers; anything
/// exotic is escaped rather than trusted.
void EscapeInto(const std::string& s, char* out, size_t capacity) {
  size_t len = 0;
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    if (len + 8 >= capacity) break;
    if (c == '"' || c == '\\') {
      out[len++] = '\\';
      out[len++] = static_cast<char>(c);
    } else if (c < 0x20) {
      len += static_cast<size_t>(
          std::snprintf(out + len, capacity - len, "\\u%04x", c));
    } else {
      out[len++] = static_cast<char>(c);
    }
  }
  out[len] = '\0';
}

}  // namespace

Journal& Journal::Global() {
  static Journal* journal = new Journal();
  return *journal;
}

uint64_t Journal::NowNanos() const {
  const ClockFn fn = clock_.load(std::memory_order_relaxed);
  if (fn != nullptr) return fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool Journal::Open(const std::string& path, const std::string& label) {
  // fopen before the lock: isum-lock-scope forbids I/O setup in a critical
  // section, and a failed open must leave an already-open journal intact.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  {
    MutexLock lock(mu_);
    if (file_ != nullptr) CloseLocked();
    file_ = file;
    seq_ = 0;
    open_nanos_ = NowNanos();
  }
  events_written_.store(0, std::memory_order_relaxed);
  last_tick_nanos_.store(0, std::memory_order_relaxed);
  last_stop_reason_.store(nullptr, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);

  char escaped[256];
  EscapeInto(label, escaped, sizeof(escaped));
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len, ",\"schema\":\"isum-events-v1\",\"label\":\"%s\"",
          escaped);
  EmitLine("journal_begin", body, /*flush=*/true);
  return true;
}

void Journal::CloseLocked() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

void Journal::Close() {
  if (!enabled()) return;
  EmitLine("journal_end", "", /*flush=*/true);
  enabled_.store(false, std::memory_order_relaxed);
  MutexLock lock(mu_);
  CloseLocked();
}

void Journal::Flush() {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void Journal::EmitLine(const char* event, const char* body, bool flush) {
  if (!enabled()) return;
  const uint64_t now = NowNanos();
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  const uint64_t rel = now >= open_nanos_ ? now - open_nanos_ : 0;
  char line[kLineCapacity + 64];
  size_t len = 0;
  line[0] = '\0';
  // A second bounded printf pass over the (already bounded) body: the
  // prefix fields are common to every event.
  const int n = std::snprintf(
      line, sizeof(line),
      "{\"event\":\"%s\",\"seq\":%" PRIu64 ",\"t_us\":%" PRIu64 ".%03" PRIu64
      "%s}\n",
      event, seq_, rel / 1000, rel % 1000, body);
  if (n > 0) len = static_cast<size_t>(n) < sizeof(line)
                       ? static_cast<size_t>(n)
                       : sizeof(line) - 1;
  std::fwrite(line, 1, len, file_);
  ++seq_;
  events_written_.fetch_add(1, std::memory_order_relaxed);
  if (flush) std::fflush(file_);
}

void Journal::CompressBegin(uint64_t n_queries, uint64_t k,
                            const char* algorithm, uint64_t threads) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"n\":%" PRIu64 ",\"k\":%" PRIu64
          ",\"algorithm\":\"%s\",\"threads\":%" PRIu64,
          n_queries, k, algorithm, threads);
  EmitLine("compress_begin", body, /*flush=*/false);
}

void Journal::SelectRound(uint64_t round, uint64_t query, double benefit,
                          double gap, uint64_t shard, uint64_t eligible) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"round\":%" PRIu64 ",\"query\":%" PRIu64
          ",\"benefit\":%.9g,\"gap\":%.9g,\"shard\":%" PRIu64
          ",\"eligible\":%" PRIu64,
          round, query, benefit, gap, shard, eligible);
  EmitLine("select", body, /*flush=*/false);
}

void Journal::FeatureReset(uint64_t selected_so_far) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len, ",\"selected\":%" PRIu64, selected_so_far);
  EmitLine("feature_reset", body, /*flush=*/false);
}

void Journal::CompressEnd(uint64_t selected, uint64_t selection_hash,
                          double benefit_sum, const char* stop_reason) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"selected\":%" PRIu64
          ",\"selection_hash\":\"%016" PRIx64
          "\",\"benefit_sum\":%.9g,\"stop_reason\":\"%s\"",
          selected, selection_hash, benefit_sum, stop_reason);
  EmitLine("compress_end", body,
           /*flush=*/std::strcmp(stop_reason, "complete") != 0);
}

void Journal::EnumRound(uint64_t round, uint64_t candidates,
                        uint64_t best_index, double best_improvement,
                        uint64_t cache_hits, uint64_t optimizer_calls) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"round\":%" PRIu64 ",\"candidates\":%" PRIu64
          ",\"best_index\":%" PRIu64
          ",\"improvement\":%.9g,\"cache_hits\":%" PRIu64
          ",\"optimizer_calls\":%" PRIu64,
          round, candidates, best_index, best_improvement, cache_hits,
          optimizer_calls);
  EmitLine("enum_round", body, /*flush=*/false);
}

void Journal::EnumEnd(uint64_t config_size, double initial_cost,
                      double final_cost, const char* stop_reason) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"indexes\":%" PRIu64
          ",\"initial_cost\":%.9g,\"final_cost\":%.9g,\"stop_reason\":\"%s\"",
          config_size, initial_cost, final_cost, stop_reason);
  EmitLine("enum_end", body,
           /*flush=*/std::strcmp(stop_reason, "complete") != 0);
}

void Journal::Retry(const char* site, uint64_t attempt,
                    uint64_t backoff_nanos) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"site\":\"%s\",\"attempt\":%" PRIu64 ",\"backoff_us\":%" PRIu64
          ".%03" PRIu64,
          site, attempt, backoff_nanos / 1000, backoff_nanos % 1000);
  EmitLine("retry", body, /*flush=*/false);
}

void Journal::Fault(const char* site, const char* code) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len, ",\"site\":\"%s\",\"code\":\"%s\"", site, code);
  EmitLine("fault", body, /*flush=*/true);
}

void Journal::BudgetTick(double remaining_seconds) {
  if (!enabled()) return;
  // Rate limit: one tick per period, first observer wins. compare_exchange
  // keeps concurrent pollers from double-emitting the same window.
  const uint64_t now = NowNanos();
  uint64_t last = last_tick_nanos_.load(std::memory_order_relaxed);
  if (last != 0 && now - last < kBudgetTickPeriodNanos) return;
  if (!last_tick_nanos_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
    return;
  }
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len, ",\"remaining_s\":%.6f", remaining_seconds);
  EmitLine("budget_tick", body, /*flush=*/false);
}

void Journal::BudgetStop(const char* reason) {
  if (!enabled()) return;
  // Deduplicate consecutive identical reasons: stages keep polling an
  // expired budget, but the *transition* is the event. StopReasonToString
  // returns static strings, so identity comparison suffices.
  const char* last = last_stop_reason_.load(std::memory_order_relaxed);
  if (last == reason) return;
  if (!last_stop_reason_.compare_exchange_strong(last, reason,
                                                 std::memory_order_relaxed)) {
    return;
  }
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len, ",\"reason\":\"%s\"", reason);
  EmitLine("budget_stop", body, /*flush=*/true);
}

void Journal::CkptWrite(const char* phase, uint64_t epoch, uint64_t rounds,
                        uint64_t bytes) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"phase\":\"%s\",\"epoch\":%" PRIu64 ",\"rounds\":%" PRIu64
          ",\"bytes\":%" PRIu64,
          phase, epoch, rounds, bytes);
  // Flushed eagerly: the journal line is the on-disk proof that the epoch
  // it names was durable first.
  EmitLine("ckpt_write", body, /*flush=*/true);
}

void Journal::CkptRestore(const char* phase, uint64_t epoch, uint64_t restored,
                          uint64_t prefix_hash, uint64_t done) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"phase\":\"%s\",\"epoch\":%" PRIu64 ",\"restored\":%" PRIu64
          ",\"prefix_hash\":\"%016" PRIx64 "\",\"done\":%" PRIu64,
          phase, epoch, restored, prefix_hash, done);
  EmitLine("ckpt_restore", body, /*flush=*/true);
}

void Journal::Attribution(uint64_t query, double weight,
                          double estimated_benefit, double realized_benefit) {
  if (!enabled()) return;
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"query\":%" PRIu64
          ",\"weight\":%.9g,\"estimated\":%.9g,\"realized\":%.9g",
          query, weight, estimated_benefit, realized_benefit);
  EmitLine("attribution", body, /*flush=*/false);
}

void Journal::PipelineEnd(const char* algorithm, uint64_t k,
                          double improvement_percent,
                          const char* stop_reason) {
  if (!enabled()) return;
  char escaped[128];
  EscapeInto(algorithm, escaped, sizeof(escaped));
  char body[kLineCapacity];
  size_t len = 0;
  body[0] = '\0';
  AppendF(body, &len,
          ",\"algorithm\":\"%s\",\"k\":%" PRIu64
          ",\"improvement_percent\":%.9g,\"stop_reason\":\"%s\"",
          escaped, k, improvement_percent, stop_reason);
  EmitLine("pipeline_end", body,
           /*flush=*/std::strcmp(stop_reason, "complete") != 0);
}

}  // namespace isum::obs
