#ifndef ISUM_OBS_TRACE_H_
#define ISUM_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace isum::obs {

/// Scoped-span tracer for the compress -> tune -> evaluate pipeline.
///
/// Usage: `ISUM_TRACE_SPAN("compress/greedy-pick");` opens a span that
/// closes when the enclosing scope exits. Spans record a *static* name
/// string, the recording thread, nesting depth, and start/duration in
/// nanoseconds relative to the session start. The span taxonomy is
/// documented in docs/OBSERVABILITY.md.
///
/// Cost model: tracing is off by default. A disabled span is a single
/// relaxed atomic load (and compiles away entirely under
/// -DISUM_OBS_DISABLE_TRACING, see the macro below). An enabled span
/// appends to a per-thread buffer guarded by that thread's own
/// (uncontended) mutex, so recording threads never serialize on each other.
///
/// Sessions: Enable() clears prior spans and starts a session; Disable()
/// stops recording; Drain() merges and clears the per-thread buffers.
/// Drain() must not race with in-flight spans — quiesce workers first
/// (bench drivers drain after all work has joined).

/// One typed key/value argument attached to a span (Chrome-trace `args`).
/// Keys and string values must be static strings — the record keeps the
/// pointers, exactly like SpanRecord::name.
struct SpanArg {
  enum class Kind : uint8_t { kInt, kDouble, kString };
  const char* key = nullptr;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  double double_value = 0.0;
  const char* string_value = nullptr;
};

/// One closed span.
struct SpanRecord {
  /// Args beyond the capacity are dropped (spans are fixed-size records so
  /// the per-thread buffers stay allocation-free per span).
  static constexpr size_t kMaxArgs = 4;

  const char* name = nullptr;  ///< static string (never freed)
  uint32_t tid = 0;            ///< tracer-assigned dense thread id
  uint32_t depth = 0;          ///< nesting depth on the recording thread
  uint64_t start_nanos = 0;    ///< relative to session start
  uint64_t dur_nanos = 0;
  uint32_t num_args = 0;
  std::array<SpanArg, kMaxArgs> args{};
};

/// Result of Tracer::Drain(): spans sorted by (start, tid) plus the
/// thread-name table (indexed by SpanRecord::tid; "" = unnamed).
struct TraceDump {
  std::vector<SpanRecord> spans;
  std::vector<std::string> thread_names;
};

class Tracer {
 public:
  /// The process-wide tracer all ISUM_TRACE_SPAN sites record into.
  static Tracer& Global();

  /// Starts a recording session: clears buffered spans, re-zeroes the
  /// session clock, enables recording.
  void Enable();
  /// Stops recording (buffered spans are kept for Drain()).
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Sampling: record only every Nth *top-level* span tree per thread
  /// (0 and 1 record everything). A skipped root also skips its nested
  /// spans, so sampled traces keep their parent/child structure; counters
  /// are unaffected. Exposed to bench drivers as --trace-every=N.
  void SetSampleEvery(uint64_t every) {
    sample_every_.store(every == 0 ? 1 : every, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Merges and clears every thread's buffer. Call after Disable() and
  /// after worker threads have quiesced.
  TraceDump Drain();

  /// Names the calling thread in trace exports ("main", "pool-worker-3").
  /// Sticky across sessions.
  void SetCurrentThreadName(std::string name);

  /// Test hook: replaces the span clock with a deterministic source
  /// (nullptr restores the steady clock). Returns nanoseconds.
  using ClockFn = uint64_t (*)();
  void SetClockForTest(ClockFn fn) {
    clock_.store(fn, std::memory_order_relaxed);
  }

  uint64_t NowNanos() const;

 private:
  friend class TraceSpan;
  struct ThreadState {
    /// tid/depth/sampling state and `name` are owner-thread-private between
    /// registration and Drain; `name` is additionally only mutated under
    /// the Tracer's mu_ (SetCurrentThreadName) and read by Drain under the
    /// same lock.
    uint32_t tid = 0;
    uint32_t depth = 0;
    /// Sampling state: root spans seen, and >0 while inside a skipped tree.
    uint64_t root_count = 0;
    uint32_t skip_depth = 0;
    std::string name;
    Mutex mu;
    /// Owner appends, Drain steals — both under `mu`.
    std::vector<SpanRecord> spans ISUM_GUARDED_BY(mu);
  };

  Tracer() = default;
  ThreadState* CurrentThreadState() ISUM_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> sample_every_{1};
  std::atomic<ClockFn> clock_{nullptr};
  std::atomic<uint64_t> session_start_nanos_{0};
  mutable Mutex mu_;
  /// Thread registry (and the per-thread names, see ThreadState).
  std::vector<std::unique_ptr<ThreadState>> threads_ ISUM_GUARDED_BY(mu_);
};

/// RAII span. Prefer the ISUM_TRACE_SPAN macro (or ISUM_TRACE_SPAN_VAR to
/// attach args); `name` must be a static string (the record keeps the
/// pointer).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    Tracer& tracer = Tracer::Global();
    if (!tracer.enabled()) return;
    Begin(tracer, name);
  }
  ~TraceSpan() {
    if (state_ != nullptr) End();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a typed key/value argument, exported in Chrome-trace `args`
  /// and surfaced by tracecat. No-op on a disabled or sampled-out span, so
  /// `span.Arg("k", k)` is safe (and nearly free) on cold paths; args past
  /// SpanRecord::kMaxArgs are dropped. Keys/string values must be static.
  TraceSpan& Arg(const char* key, int64_t value) {
    if (recording() && num_args_ < SpanRecord::kMaxArgs) {
      args_[num_args_++] = SpanArg{key, SpanArg::Kind::kInt, value, 0.0,
                                   nullptr};
    }
    return *this;
  }
  TraceSpan& Arg(const char* key, double value) {
    if (recording() && num_args_ < SpanRecord::kMaxArgs) {
      args_[num_args_++] = SpanArg{key, SpanArg::Kind::kDouble, 0, value,
                                   nullptr};
    }
    return *this;
  }
  TraceSpan& Arg(const char* key, const char* value) {
    if (recording() && num_args_ < SpanRecord::kMaxArgs) {
      args_[num_args_++] = SpanArg{key, SpanArg::Kind::kString, 0, 0.0,
                                   value};
    }
    return *this;
  }
  /// Integral conveniences (exact-match overloads, so `Arg("k", k)` never
  /// ambiguously converts between int64 and double).
  TraceSpan& Arg(const char* key, int value) {
    return Arg(key, static_cast<int64_t>(value));
  }
  TraceSpan& Arg(const char* key, uint64_t value) {
    return Arg(key, static_cast<int64_t>(value));
  }

 private:
  void Begin(Tracer& tracer, const char* name);
  void End();
  /// True when this span is actually recording (enabled, not sampled out).
  bool recording() const { return state_ != nullptr && name_ != nullptr; }

  const char* name_ = nullptr;
  Tracer::ThreadState* state_ = nullptr;
  uint32_t depth_ = 0;
  uint64_t start_nanos_ = 0;      ///< session-relative
  uint64_t start_raw_nanos_ = 0;  ///< clock-absolute (duration base)
  uint32_t num_args_ = 0;
  std::array<SpanArg, SpanRecord::kMaxArgs> args_{};
};

/// Zero-cost stand-in used when tracing is compiled out: keeps call sites
/// that attach args (ISUM_TRACE_SPAN_VAR) compiling to nothing.
class NoopTraceSpan {
 public:
  explicit NoopTraceSpan(const char* /*name*/) {}
  template <typename T>
  NoopTraceSpan& Arg(const char* /*key*/, T /*value*/) {
    return *this;
  }
};

}  // namespace isum::obs

// Compile-time switch: building with -DISUM_OBS_TRACING=OFF (which defines
// ISUM_OBS_DISABLE_TRACING) turns every span site into a no-op expression.
#ifdef ISUM_OBS_DISABLE_TRACING
#define ISUM_TRACE_SPAN(name) static_cast<void>(0)
#define ISUM_TRACE_SPAN_VAR(var, name) \
  ::isum::obs::NoopTraceSpan var { name }
#else
#define ISUM_OBS_CONCAT_INNER(a, b) a##b
#define ISUM_OBS_CONCAT(a, b) ISUM_OBS_CONCAT_INNER(a, b)
#define ISUM_TRACE_SPAN(name) \
  ::isum::obs::TraceSpan ISUM_OBS_CONCAT(isum_trace_span_, __LINE__) { name }
/// Named span handle so the scope can attach args:
///   ISUM_TRACE_SPAN_VAR(span, "compress/greedy-pick");
///   span.Arg("k", k).Arg("algorithm", "summary");
#define ISUM_TRACE_SPAN_VAR(var, name) \
  ::isum::obs::TraceSpan var { name }
#endif

#endif  // ISUM_OBS_TRACE_H_
