#include "obs/exporter.h"

#include <algorithm>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define ISUM_EXPORTER_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "common/deadline.h"
#include "common/string_util.h"
#include "obs/export.h"
#include "obs/process_stats.h"

namespace isum::obs {

namespace {

/// Requests are one GET line plus headers; anything beyond this is not a
/// scrape and gets dropped.
constexpr size_t kMaxRequestBytes = 4096;

/// Cap on the poll timeout so the worker notices Stop() and budget expiry
/// promptly even with long snapshot periods.
constexpr uint64_t kMaxPollNanos = 200'000'000;  // 200ms

}  // namespace

MetricsExporter::MetricsExporter(MetricsRegistry* registry,
                                 MetricsExporterOptions options)
    : registry_(registry), options_(std::move(options)) {}

MetricsExporter::~MetricsExporter() { Stop(); }

Status MetricsExporter::Start() {
  {
    MutexLock lock(mu_);
    if (started_) return Status::InvalidArgument("exporter already started");
  }
#if ISUM_EXPORTER_HAVE_SOCKETS
  if (options_.http_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::Internal("exporter: socket() failed");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.http_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument(
          StrFormat("exporter: cannot listen on 127.0.0.1:%d",
                    options_.http_port));
    }
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
    if (::pipe(wake_pipe_) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::Internal("exporter: pipe() failed");
    }
  }
#else
  if (options_.http_port >= 0) {
    return Status::InvalidArgument(
        "exporter: HTTP listener unsupported on this platform");
  }
#endif
  {
    MutexLock lock(mu_);
    stop_ = false;
    started_ = true;
  }
  worker_ = std::thread([this] { Run(); });
  return Status::OK();
}

void MetricsExporter::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    stop_ = true;
  }
  stop_cv_.NotifyAll();
#if ISUM_EXPORTER_HAVE_SOCKETS
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    // Best-effort wake; the 200ms poll cap bounds the join either way.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
#endif
  if (worker_.joinable()) worker_.join();
#if ISUM_EXPORTER_HAVE_SOCKETS
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
#endif
  // Final snapshot after the worker quiesced, through Tick() so the budget
  // gauge is fresh in the file even when the worker never got a tick in
  // (Stop() can beat the worker's first iteration).
  (void)Tick();
}

void MetricsExporter::WriteSnapshotFile() {
  if (options_.snapshot_path.empty()) return;
  const Status status =
      WriteFile(options_.snapshot_path, PrometheusText(registry_->Snapshot()));
  if (status.ok()) {
    snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool MetricsExporter::Tick() {
  const TimeBudget budget = AmbientBudget();
  double remaining = -1.0;
  if (!budget.deadline().unlimited()) {
    remaining =
        static_cast<double>(budget.deadline().remaining_nanos()) * 1e-9;
  }
  registry_->GetGauge("budget.remaining_seconds")->Set(remaining);
  // Process-level health next to the registry metrics, so /metrics answers
  // "is this run leaking / spinning / fanning out" without a second tool
  // (obs/process_stats.h; published as isum_process_*).
  registry_->GetGauge("process.peak_rss_bytes")
      ->Set(static_cast<double>(ProcessPeakRssBytes()));
  registry_->GetGauge("process.cpu_seconds_total")->Set(ProcessCpuSeconds());
  registry_->GetGauge("process.threads")
      ->Set(static_cast<double>(ProcessThreadCount()));
  WriteSnapshotFile();
  // Budget-aware shutdown: once the run's ambient budget is gone, the last
  // snapshot above is final and the surfaces go away with the run.
  return !(budget.limited() && budget.Expired());
}

void MetricsExporter::Run() {
#if ISUM_EXPORTER_HAVE_SOCKETS
  if (listen_fd_ >= 0) {
    uint64_t next_tick = MonotonicNanos();
    for (;;) {
      {
        MutexLock lock(mu_);
        if (stop_) return;
      }
      const uint64_t now = MonotonicNanos();
      if (now >= next_tick) {
        if (!Tick()) return;
        next_tick = now + options_.period_nanos;
      }
      const uint64_t wait =
          std::min(next_tick > now ? next_tick - now : 0, kMaxPollNanos);
      pollfd fds[2];
      fds[0] = {listen_fd_, POLLIN, 0};
      fds[1] = {wake_pipe_[0], POLLIN, 0};
      const int ready =
          ::poll(fds, 2, static_cast<int>(wait / 1'000'000) + 1);
      if (ready <= 0) continue;
      if ((fds[1].revents & POLLIN) != 0) {
        char drain[16];
        (void)!::read(wake_pipe_[0], drain, sizeof(drain));
      }
      if ((fds[0].revents & POLLIN) != 0) ServeOne();
    }
  }
#endif
  // Snapshot-only mode: timed waits on the stop flag, one Tick per period.
  // Tick() does file I/O, so it runs outside the critical section.
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
    }
    if (!Tick()) return;
    MutexLock lock(mu_);
    if (stop_) return;
    stop_cv_.WaitForNanos(mu_, options_.period_nanos);
  }
}

void MetricsExporter::ServeOne() {
#if ISUM_EXPORTER_HAVE_SOCKETS
  const int conn = ::accept(listen_fd_, nullptr, nullptr);
  if (conn < 0) return;
  char request[kMaxRequestBytes];
  const ssize_t n = ::read(conn, request, sizeof(request) - 1);
  std::string body;
  const char* status_line = "HTTP/1.1 404 Not Found";
  const char* content_type = "text/plain; charset=utf-8";
  if (n > 0) {
    request[n] = '\0';
    const char* line = request;
    if (std::strncmp(line, "GET /metrics", 12) == 0) {
      status_line = "HTTP/1.1 200 OK";
      content_type = "text/plain; version=0.0.4; charset=utf-8";
      body = PrometheusText(registry_->Snapshot());
    } else if (std::strncmp(line, "GET /healthz", 12) == 0) {
      status_line = "HTTP/1.1 200 OK";
      body = "ok\n";
    } else {
      body = "not found\n";
    }
  }
  const std::string response = StrFormat(
      "%s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n%s",
      status_line, content_type, body.size(), body.c_str());
  size_t written = 0;
  while (written < response.size()) {
    const ssize_t w =
        ::write(conn, response.data() + written, response.size() - written);
    if (w <= 0) break;
    written += static_cast<size_t>(w);
  }
  ::close(conn);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
#endif
}

}  // namespace isum::obs
