#include "baselines/gsum.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "advisor/candidate_generation.h"
#include "common/deadline.h"
#include "core/features.h"

namespace isum::baselines {

namespace {

using core::FeatureSpace;

/// Binary column-set footprint of each query.
std::vector<std::vector<int>> QueryFootprints(
    const workload::Workload& workload, FeatureSpace* space) {
  std::vector<std::vector<int>> out(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    // GSUM featurizes on all referenced columns (indexing-agnostic).
    for (catalog::ColumnId c : workload.query(i).bound.ReferencedColumns()) {
      out[i].push_back(space->GetOrCreate(c));
    }
    std::sort(out[i].begin(), out[i].end());
    out[i].erase(std::unique(out[i].begin(), out[i].end()), out[i].end());
  }
  return out;
}

double OverlapCount(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  double n = 0.0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

workload::CompressedWorkload GsumCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  workload::CompressedWorkload out;
  const size_t n = workload.size();
  if (n == 0) return out;

  FeatureSpace space;
  const std::vector<std::vector<int>> footprint =
      QueryFootprints(workload, &space);

  // Workload feature frequencies (the distribution representativity targets).
  std::vector<double> freq(space.size(), 0.0);
  double total_freq = 0.0;
  for (const auto& f : footprint) {
    for (int c : f) {
      freq[static_cast<size_t>(c)] += 1.0;
      total_freq += 1.0;
    }
  }

  // Greedy: maximize alpha * coverage + (1 - alpha) * representativity.
  std::vector<bool> selected(n, false);
  std::vector<bool> covered(space.size(), false);
  std::vector<double> summary_count(space.size(), 0.0);
  double summary_total = 0.0;
  double coverage = 0.0;  // frequency-weighted fraction of covered features

  auto representativity = [&](const std::vector<int>& add) {
    // 1 - 0.5 * L1 distance between normalized distributions.
    double l1 = 0.0;
    const double new_total = summary_total + static_cast<double>(add.size());
    if (new_total <= 0.0 || total_freq <= 0.0) return 0.0;
    std::unordered_map<int, double> delta;
    for (int c : add) delta[c] += 1.0;
    for (size_t c = 0; c < space.size(); ++c) {
      double cnt = summary_count[c];
      auto it = delta.find(static_cast<int>(c));
      if (it != delta.end()) cnt += it->second;
      l1 += std::abs(cnt / new_total - freq[c] / total_freq);
    }
    return 1.0 - 0.5 * l1;
  };

  // Anytime under the ambient budget (common/deadline.h): polled at round
  // boundaries so a truncated run returns a valid greedy prefix.
  const TimeBudget budget = EffectiveBudget({});
  for (size_t round = 0; round < k && round < n; ++round) {
    const Status round_check = budget.CheckCancelled();
    if (!round_check.ok()) {
      out.stop_reason = TimeBudget::ReasonFor(round_check);
      break;
    }
    double best_score = -1.0;
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (selected[i]) continue;
      double cov_gain = 0.0;
      for (int c : footprint[i]) {
        if (!covered[static_cast<size_t>(c)]) {
          cov_gain += freq[static_cast<size_t>(c)] / std::max(1.0, total_freq);
        }
      }
      const double score = alpha_ * (coverage + cov_gain) +
                           (1.0 - alpha_) * representativity(footprint[i]);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == n) break;
    selected[best] = true;
    for (int c : footprint[best]) {
      if (!covered[static_cast<size_t>(c)]) {
        covered[static_cast<size_t>(c)] = true;
        coverage += freq[static_cast<size_t>(c)] / std::max(1.0, total_freq);
      }
      summary_count[static_cast<size_t>(c)] += 1.0;
      summary_total += 1.0;
    }
    out.entries.push_back({best, 0.0});
  }

  // Weights: each workload query votes for its most-overlapping selected
  // query (GSUM's representation-based weighting).
  for (size_t i = 0; i < n; ++i) {
    double best_overlap = -1.0;
    size_t rep = 0;
    for (size_t e = 0; e < out.entries.size(); ++e) {
      const double ov =
          OverlapCount(footprint[i], footprint[out.entries[e].query_index]);
      if (ov > best_overlap) {
        best_overlap = ov;
        rep = e;
      }
    }
    if (!out.entries.empty()) out.entries[rep].weight += 1.0;
  }
  out.NormalizeWeights();
  NoteStopReason(out.stop_reason);
  return out;
}

}  // namespace isum::baselines
