#ifndef ISUM_BASELINES_COMPRESSOR_H_
#define ISUM_BASELINES_COMPRESSOR_H_

#include <string>

#include "workload/workload.h"

namespace isum::baselines {

/// Common interface for workload compressors so the evaluation pipeline can
/// sweep algorithms uniformly (ISUM itself is adapted to this interface in
/// eval/pipeline.h).
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Display name used in experiment tables ("Uniform", "GSUM", ...).
  virtual std::string name() const = 0;

  /// Selects (at most) k weighted queries from `workload`.
  virtual workload::CompressedWorkload Compress(
      const workload::Workload& workload, size_t k) = 0;
};

}  // namespace isum::baselines

#endif  // ISUM_BASELINES_COMPRESSOR_H_
