#ifndef ISUM_BASELINES_KMEDOID_H_
#define ISUM_BASELINES_KMEDOID_H_

#include <cstdint>

#include "baselines/compressor.h"

namespace isum::baselines {

/// The clustering-based compressor of Chaudhuri et al. [11], adapted as in
/// the paper's §8: k-medoid clustering with k random seeds. Since [11]'s
/// distance function is undefined across templates, distance here is
/// 1 - weighted Jaccard over ISUM query features (exactly what the paper
/// does for this baseline). Medoids become the compressed workload, weighted
/// by their cluster sizes. Quadratic per iteration — the slow, local-minima-
/// prone baseline of Figure 11.
class KMedoidCompressor : public Compressor {
 public:
  explicit KMedoidCompressor(uint64_t seed = 1, int max_iterations = 20)
      : seed_(seed), max_iterations_(max_iterations) {}
  std::string name() const override { return "k-medoid"; }
  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override;

 private:
  uint64_t seed_;
  int max_iterations_;
};

}  // namespace isum::baselines

#endif  // ISUM_BASELINES_KMEDOID_H_
