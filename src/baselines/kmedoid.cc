#include "baselines/kmedoid.h"

#include <algorithm>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "core/weighting.h"

namespace isum::baselines {

workload::CompressedWorkload KMedoidCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  workload::CompressedWorkload out;
  const size_t n = workload.size();
  if (n == 0) return out;
  k = std::min(k, n);

  // ISUM rule-based features as the similarity substrate. Featurized once
  // into an immutable CSR snapshot: every distance scan below is a
  // medoid-major one-vs-many gather instead of per-pair sorted merges.
  core::FeatureSpace space;
  core::Featurizer featurizer(workload.env().catalog, workload.env().stats,
                              &space);
  std::vector<core::SparseVector> features(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = featurizer.Featurize(workload.query(i).bound);
  }
  const core::FeatureMatrix matrix =
      core::FeatureMatrix::FromVectors(features, space.size());
  core::DenseScratch scratch;
  std::vector<double> sim(n, 0.0);

  // Scans medoids in ascending slot order with a strict comparison, so the
  // lowest medoid slot wins distance ties exactly like the per-pair loop
  // this replaces did.
  const auto assign_all = [&](const std::vector<size_t>& medoids,
                              std::vector<size_t>* assignment) {
    std::vector<double> best(n, 2.0);
    for (size_t m = 0; m < medoids.size(); ++m) {
      matrix.ScatterRow(medoids[m], &scratch);
      matrix.WeightedJaccardBatch(scratch, 0, n, sim.data());
      for (size_t i = 0; i < n; ++i) {
        const double d = 1.0 - sim[i];
        if (d < best[i]) {
          best[i] = d;
          (*assignment)[i] = m;
        }
      }
    }
  };

  Rng rng(seed_);
  std::vector<size_t> medoids = rng.SampleWithoutReplacement(n, k);
  std::vector<size_t> assignment(n, 0);
  std::vector<size_t> members;

  // Anytime under the ambient budget: polled at iteration boundaries. The
  // medoids standing when the budget expires are a valid (just less
  // converged) clustering; the final assignment below still runs so weights
  // are consistent with the returned medoids.
  const TimeBudget budget = EffectiveBudget({});
  for (int iter = 0; iter < max_iterations_; ++iter) {
    const Status iter_check = budget.CheckCancelled();
    if (!iter_check.ok()) {
      out.stop_reason = TimeBudget::ReasonFor(iter_check);
      break;
    }
    // Assign.
    assign_all(medoids, &assignment);
    // Update: medoid = member minimizing intra-cluster distance sum.
    bool changed = false;
    for (size_t m = 0; m < medoids.size(); ++m) {
      members.clear();
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] == m) members.push_back(i);
      }
      if (members.empty()) continue;
      double best_sum = -1.0;
      size_t best_medoid = medoids[m];
      for (size_t cand : members) {
        matrix.ScatterRow(cand, &scratch);
        double sum = 0.0;
        for (size_t other : members) {
          double s = 0.0;
          matrix.WeightedJaccardBatch(scratch, other, other + 1, &s);
          sum += 1.0 - s;
        }
        if (best_sum < 0.0 || sum < best_sum) {
          best_sum = sum;
          best_medoid = cand;
        }
      }
      if (best_medoid != medoids[m]) {
        medoids[m] = best_medoid;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Final assignment for weights.
  std::vector<size_t> final_assignment(n, 0);
  assign_all(medoids, &final_assignment);
  std::vector<double> cluster_size(medoids.size(), 0.0);
  for (size_t i = 0; i < n; ++i) cluster_size[final_assignment[i]] += 1.0;
  for (size_t m = 0; m < medoids.size(); ++m) {
    out.entries.push_back({medoids[m], std::max(1.0, cluster_size[m])});
  }
  out.NormalizeWeights();
  NoteStopReason(out.stop_reason);
  return out;
}

}  // namespace isum::baselines
