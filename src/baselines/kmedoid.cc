#include "baselines/kmedoid.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/weighting.h"

namespace isum::baselines {

workload::CompressedWorkload KMedoidCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  workload::CompressedWorkload out;
  const size_t n = workload.size();
  if (n == 0) return out;
  k = std::min(k, n);

  // ISUM rule-based features as the similarity substrate.
  core::FeatureSpace space;
  core::Featurizer featurizer(workload.env().catalog, workload.env().stats,
                              &space);
  std::vector<core::SparseVector> features(n);
  for (size_t i = 0; i < n; ++i) {
    features[i] = featurizer.Featurize(workload.query(i).bound);
  }
  auto distance = [&features](size_t a, size_t b) {
    return 1.0 - core::WeightedJaccard(features[a], features[b]);
  };

  Rng rng(seed_);
  std::vector<size_t> medoids = rng.SampleWithoutReplacement(n, k);
  std::vector<size_t> assignment(n, 0);

  for (int iter = 0; iter < max_iterations_; ++iter) {
    // Assign.
    for (size_t i = 0; i < n; ++i) {
      double best = 2.0;
      for (size_t m = 0; m < medoids.size(); ++m) {
        const double d = distance(i, medoids[m]);
        if (d < best) {
          best = d;
          assignment[i] = m;
        }
      }
    }
    // Update: medoid = member minimizing intra-cluster distance sum.
    bool changed = false;
    for (size_t m = 0; m < medoids.size(); ++m) {
      std::vector<size_t> members;
      for (size_t i = 0; i < n; ++i) {
        if (assignment[i] == m) members.push_back(i);
      }
      if (members.empty()) continue;
      double best_sum = -1.0;
      size_t best_medoid = medoids[m];
      for (size_t cand : members) {
        double sum = 0.0;
        for (size_t other : members) sum += distance(cand, other);
        if (best_sum < 0.0 || sum < best_sum) {
          best_sum = sum;
          best_medoid = cand;
        }
      }
      if (best_medoid != medoids[m]) {
        medoids[m] = best_medoid;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Final assignment for weights.
  std::vector<double> cluster_size(medoids.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    double best = 2.0;
    size_t arg = 0;
    for (size_t m = 0; m < medoids.size(); ++m) {
      const double d = distance(i, medoids[m]);
      if (d < best) {
        best = d;
        arg = m;
      }
    }
    cluster_size[arg] += 1.0;
  }
  for (size_t m = 0; m < medoids.size(); ++m) {
    out.entries.push_back({medoids[m], std::max(1.0, cluster_size[m])});
  }
  out.NormalizeWeights();
  return out;
}

}  // namespace isum::baselines
