#ifndef ISUM_BASELINES_SIMPLE_H_
#define ISUM_BASELINES_SIMPLE_H_

#include <cstdint>

#include "baselines/compressor.h"
#include "common/rng.h"

namespace isum::baselines {

/// Baseline 1 (§8): uniform random sampling of k queries, equal weights.
class UniformSamplingCompressor : public Compressor {
 public:
  explicit UniformSamplingCompressor(uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "Uniform"; }
  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override;

 private:
  uint64_t seed_;
};

/// Baseline 2 (§8): top-k queries by optimizer-estimated cost, weighted by
/// cost.
class TopCostCompressor : public Compressor {
 public:
  std::string name() const override { return "Cost"; }
  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override;
};

/// Baseline 3 (§8): cluster queries by template, then sample an equal number
/// of instances per cluster (round-robin over templates).
class StratifiedCompressor : public Compressor {
 public:
  explicit StratifiedCompressor(uint64_t seed = 1) : seed_(seed) {}
  std::string name() const override { return "Stratified"; }
  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override;

 private:
  uint64_t seed_;
};

}  // namespace isum::baselines

#endif  // ISUM_BASELINES_SIMPLE_H_
