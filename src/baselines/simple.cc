#include "baselines/simple.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/deadline.h"

namespace isum::baselines {

workload::CompressedWorkload UniformSamplingCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  Rng rng(seed_);
  workload::CompressedWorkload out;
  for (size_t i : rng.SampleWithoutReplacement(workload.size(), k)) {
    out.entries.push_back({i, 1.0});
  }
  out.NormalizeWeights();
  return out;
}

workload::CompressedWorkload TopCostCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  std::vector<size_t> order(workload.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&workload](size_t a, size_t b) {
    return workload.query(a).base_cost > workload.query(b).base_cost;
  });
  workload::CompressedWorkload out;
  for (size_t i = 0; i < std::min(k, order.size()); ++i) {
    out.entries.push_back({order[i], workload.query(order[i]).base_cost});
  }
  out.NormalizeWeights();
  return out;
}

workload::CompressedWorkload StratifiedCompressor::Compress(
    const workload::Workload& workload, size_t k) {
  Rng rng(seed_);
  // Shuffle each template's instances, then round-robin across templates so
  // every cluster contributes equally.
  std::vector<std::vector<size_t>> clusters;
  for (const auto& [hash, members] : workload.templates()) {
    clusters.push_back(members);
  }
  // Deterministic order across unordered_map iteration differences.
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  for (auto& c : clusters) rng.Shuffle(c);

  workload::CompressedWorkload out;
  // Anytime under the ambient budget: each completed round-robin pass is a
  // valid stratified sample, so expiry between passes keeps what we have.
  const TimeBudget budget = EffectiveBudget({});
  size_t round = 0;
  while (out.entries.size() < k) {
    const Status round_check = budget.CheckCancelled();
    if (!round_check.ok()) {
      out.stop_reason = TimeBudget::ReasonFor(round_check);
      break;
    }
    bool any = false;
    for (const auto& c : clusters) {
      if (round < c.size()) {
        any = true;
        // Weight by the cluster's share of the workload.
        out.entries.push_back({c[round], static_cast<double>(c.size())});
        if (out.entries.size() >= k) break;
      }
    }
    if (!any) break;
    ++round;
  }
  out.NormalizeWeights();
  NoteStopReason(out.stop_reason);
  return out;
}

}  // namespace isum::baselines
