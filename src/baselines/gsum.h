#ifndef ISUM_BASELINES_GSUM_H_
#define ISUM_BASELINES_GSUM_H_

#include "baselines/compressor.h"

namespace isum::baselines {

/// GSUM [20] (Deep et al., VLDB 2020), the indexing-agnostic state of the
/// art the paper compares against: a greedy algorithm that maximizes a blend
/// of (a) coverage — the frequency-weighted fraction of workload features
/// (columns) present in the summary — and (b) representativity — similarity
/// between the summary's feature distribution and the workload's.
/// Selected queries are weighted by how many workload queries they represent
/// (nearest-selected assignment by column overlap).
class GsumCompressor : public Compressor {
 public:
  /// `alpha` trades coverage (1.0) against representativity (0.0).
  explicit GsumCompressor(double alpha = 0.5) : alpha_(alpha) {}
  std::string name() const override { return "GSUM"; }
  workload::CompressedWorkload Compress(const workload::Workload& workload,
                                        size_t k) override;

 private:
  double alpha_;
};

}  // namespace isum::baselines

#endif  // ISUM_BASELINES_GSUM_H_
