#ifndef ISUM_WORKLOAD_WORKLOAD_FACTORY_H_
#define ISUM_WORKLOAD_WORKLOAD_FACTORY_H_

#include <memory>
#include <string>

#include "workload/workload.h"

namespace isum::workload {

/// Knobs shared by all workload generators.
struct GeneratorOptions {
  uint64_t seed = 42;
  /// Scales table row counts relative to the paper's configuration (sf=10 or
  /// the Real-M sizes). Row counts only change cost magnitudes, never
  /// algorithm runtimes, so 1.0 is fine even for quick runs.
  double scale = 1.0;
  /// Query instances per template; 0 picks the benchmark's paper default
  /// (TPC-H 100, TPC-DS 100, DSB 10, Real-M ~1).
  int instances_per_template = 0;
  /// Caps the number of templates used (0 = all). Lets benches subsample.
  int max_templates = 0;
  /// Zipf exponent skewing instance counts across templates (0 = every
  /// template gets the same count). With skew > 0 a few templates dominate
  /// the workload — the regime where query weighing matters (§7).
  double instance_skew = 0.0;
};

/// Per-template instance counts averaging `base` per template, zipf-skewed
/// by `skew` (all equal when skew == 0); every template gets at least 1.
std::vector<int> SkewedInstanceCounts(size_t num_templates, int base,
                                      double skew);

/// A self-contained generated benchmark environment: the Workload plus the
/// catalog/statistics/cost-model it is bound against (owned here; the
/// Workload's Environment points into these members).
struct GeneratedWorkload {
  std::unique_ptr<catalog::Catalog> catalog;
  std::unique_ptr<stats::StatsManager> stats;
  std::unique_ptr<engine::CostModel> cost_model;
  std::unique_ptr<Workload> workload;
  std::string name;
};

/// TPC-H-like: 8 tables, 22 hand-written templates matching the TPC-H query
/// shapes (paper row: 2200 queries / 22 templates / 8 tables at sf=10).
GeneratedWorkload MakeTpch(const GeneratorOptions& options = {});

/// TPC-DS-like: 24-table star/snowflake schema, 91 procedurally generated
/// templates (paper row: 9100 / 91 / 24).
GeneratedWorkload MakeTpcds(const GeneratorOptions& options = {});

/// Which DSB query classes to include (Figure 12 filters by class).
enum class DsbClass { kAll, kSpj, kAggregate, kComplex };

/// DSB-like: TPC-DS schema with zipf-skewed data and 52 templates tagged
/// SPJ / Aggregate / Complex (paper row: 520 / 52 / 24).
GeneratedWorkload MakeDsb(const GeneratorOptions& options = {},
                          DsbClass query_class = DsbClass::kAll);

/// Real-M-like: a synthesized enterprise schema of 474 tables with 456
/// nearly unique templates and heavy cost skew (paper row: 473 / 456 / 474).
GeneratedWorkload MakeRealM(const GeneratorOptions& options = {});

/// Dispatch by name ("tpch", "tpcds", "dsb", "realm").
GeneratedWorkload MakeWorkloadByName(const std::string& name,
                                     const GeneratorOptions& options = {});

}  // namespace isum::workload

#endif  // ISUM_WORKLOAD_WORKLOAD_FACTORY_H_
