#include "workload/workload.h"

#include "engine/optimizer.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace isum::workload {

Status Workload::AddQuery(const std::string& sql, std::string tag) {
  ISUM_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
  sql::Binder binder(env_.catalog, env_.stats);
  ISUM_ASSIGN_OR_RETURN(sql::BoundQuery bound, binder.Bind(stmt, sql));
  AddBoundQuery(std::move(bound), sql, /*base_cost=*/-1.0, std::move(tag));
  return Status::OK();
}

void Workload::AddBoundQuery(sql::BoundQuery bound, std::string sql,
                             double base_cost, std::string tag) {
  QueryInfo info;
  info.id = static_cast<int32_t>(queries_.size());
  info.sql = std::move(sql);
  info.template_hash = bound.template_hash;
  info.tag = std::move(tag);
  info.bound = std::move(bound);
  if (base_cost < 0.0) {
    engine::Optimizer optimizer(env_.cost_model);
    base_cost = optimizer.Cost(info.bound, engine::Configuration());
  }
  info.base_cost = base_cost;
  by_template_[info.template_hash].push_back(queries_.size());
  queries_.push_back(std::move(info));
}

double Workload::TotalCost() const {
  double total = 0.0;
  for (const QueryInfo& q : queries_) total += q.base_cost;
  return total;
}

void CompressedWorkload::NormalizeWeights() {
  double total = 0.0;
  for (const Entry& e : entries) total += e.weight;
  if (total <= 0.0) return;
  for (Entry& e : entries) e.weight /= total;
}

}  // namespace isum::workload
