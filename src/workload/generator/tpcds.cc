#include "common/log.h"
#include "obs/trace.h"
#include "workload/generator/star_schema.h"
#include "workload/workload_factory.h"

namespace isum::workload {

namespace {

/// Fills `out` with ~`instances` instances of each recipe (zipf-skewed
/// across templates when `instance_skew` > 0).
void Instantiate(const std::vector<gen::TemplateRecipe>& recipes, int instances,
                 double instance_skew, Rng& rng, GeneratedWorkload* out) {
  const std::vector<int> counts =
      SkewedInstanceCounts(recipes.size(), instances, instance_skew);
  for (size_t ti = 0; ti < recipes.size(); ++ti) {
    Rng template_rng = rng.Fork(1000 + ti);
    for (int i = 0; i < counts[ti]; ++i) {
      const std::string sql = gen::InstantiateSql(recipes[ti], *out->catalog,
                                                  *out->stats, template_rng);
      const Status st = out->workload->AddQuery(sql, recipes[ti].tag);
      if (!st.ok()) {
        LogWarning(out->name + " template " + std::to_string(ti) +
                   " failed: " + st.ToString() + "\nSQL: " + sql);
      }
    }
  }
}

}  // namespace

GeneratedWorkload MakeTpcds(const GeneratorOptions& options) {
  ISUM_TRACE_SPAN("workload/generate");
  GeneratedWorkload out;
  out.name = "TPC-DS";
  out.catalog = std::make_unique<catalog::Catalog>();
  out.stats = std::make_unique<stats::StatsManager>(out.catalog.get());

  Rng rng(options.seed ^ 0x7DC5ull);
  Rng stats_rng = rng.Fork(1);
  const gen::SchemaGraph graph =
      gen::BuildStarSchema(out.catalog.get(), out.stats.get(), options.scale,
                           /*zipf_skew=*/0.0, stats_rng);
  out.cost_model =
      std::make_unique<engine::CostModel>(out.catalog.get(), out.stats.get());
  out.workload = std::make_unique<Workload>(Workload::Environment{
      out.catalog.get(), out.stats.get(), out.cost_model.get()});

  gen::RecipeGenOptions gen_options;
  gen_options.min_joins = 1;
  gen_options.max_joins = 4;
  gen_options.aggregate_probability = 0.6;
  gen_options.tag = "tpcds";
  Rng recipe_rng = rng.Fork(2);
  std::vector<gen::TemplateRecipe> recipes =
      gen::GenerateRecipes(graph, 91, gen_options, recipe_rng);
  if (options.max_templates > 0 &&
      static_cast<size_t>(options.max_templates) < recipes.size()) {
    recipes.resize(static_cast<size_t>(options.max_templates));
  }
  const int instances =
      options.instances_per_template > 0 ? options.instances_per_template : 100;
  Instantiate(recipes, instances, options.instance_skew, rng, &out);
  return out;
}

GeneratedWorkload MakeDsb(const GeneratorOptions& options, DsbClass query_class) {
  ISUM_TRACE_SPAN("workload/generate");
  GeneratedWorkload out;
  out.name = "DSB";
  out.catalog = std::make_unique<catalog::Catalog>();
  out.stats = std::make_unique<stats::StatsManager>(out.catalog.get());

  Rng rng(options.seed ^ 0xD5Bull);
  Rng stats_rng = rng.Fork(1);
  // DSB = TPC-DS schema with skewed data [21].
  const gen::SchemaGraph graph =
      gen::BuildStarSchema(out.catalog.get(), out.stats.get(), options.scale,
                           /*zipf_skew=*/1.2, stats_rng);
  out.cost_model =
      std::make_unique<engine::CostModel>(out.catalog.get(), out.stats.get());
  out.workload = std::make_unique<Workload>(Workload::Environment{
      out.catalog.get(), out.stats.get(), out.cost_model.get()});

  // 52 templates across the three DSB classes (roughly even split).
  Rng recipe_rng = rng.Fork(2);
  std::vector<gen::TemplateRecipe> recipes;
  {
    gen::RecipeGenOptions spj;
    spj.min_joins = 1;
    spj.max_joins = 3;
    spj.aggregate_probability = 0.0;
    spj.order_by_probability = 0.3;
    spj.tag = "SPJ";
    auto batch = gen::GenerateRecipes(graph, 18, spj, recipe_rng);
    recipes.insert(recipes.end(), batch.begin(), batch.end());
  }
  {
    gen::RecipeGenOptions agg;
    agg.min_joins = 0;
    agg.max_joins = 2;
    agg.aggregate_probability = 1.0;
    agg.order_by_probability = 0.3;
    agg.tag = "Aggregate";
    auto batch = gen::GenerateRecipes(graph, 17, agg, recipe_rng);
    recipes.insert(recipes.end(), batch.begin(), batch.end());
  }
  {
    gen::RecipeGenOptions complex;
    complex.min_joins = 3;
    complex.max_joins = 6;
    complex.min_filters = 2;
    complex.max_filters = 4;
    complex.aggregate_probability = 1.0;
    complex.order_by_probability = 0.6;
    complex.tag = "Complex";
    auto batch = gen::GenerateRecipes(graph, 17, complex, recipe_rng);
    recipes.insert(recipes.end(), batch.begin(), batch.end());
  }

  // Class filter (Figure 12b–d).
  if (query_class != DsbClass::kAll) {
    const char* want = query_class == DsbClass::kSpj        ? "SPJ"
                       : query_class == DsbClass::kAggregate ? "Aggregate"
                                                             : "Complex";
    std::erase_if(recipes, [want](const gen::TemplateRecipe& r) {
      return r.tag != want;
    });
  }
  if (options.max_templates > 0 &&
      static_cast<size_t>(options.max_templates) < recipes.size()) {
    recipes.resize(static_cast<size_t>(options.max_templates));
  }
  const int instances =
      options.instances_per_template > 0 ? options.instances_per_template : 10;
  Instantiate(recipes, instances, options.instance_skew, rng, &out);
  return out;
}

}  // namespace isum::workload
