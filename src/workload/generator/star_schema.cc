#include "workload/generator/star_schema.h"

#include <cmath>
#include <string>
#include <vector>

#include "catalog/schema_builder.h"
#include "stats/data_generator.h"

namespace isum::workload::gen {

namespace {

using catalog::ColumnType;
using stats::ColumnDataSpec;
using stats::Distribution;

/// Column roles driving both schema and statistics construction.
enum class Role {
  kKey,      ///< dense unique surrogate key
  kFk,       ///< foreign key into `ref`'s surrogate key
  kAttr,     ///< filterable/groupable categorical or numeric attribute
  kMeasure,  ///< numeric measure (aggregation target)
  kDate,     ///< date-valued attribute (range filters)
};

struct ColSpec {
  const char* name;
  Role role;
  const char* ref = nullptr;  ///< referenced table for kFk
  uint64_t distinct = 100;    ///< for kAttr
  double lo = 0.0;
  double hi = 100.0;
};

struct TableSpec {
  const char* name;
  double base_rows;  ///< at scale 1.0 (≈ TPC-DS sf10 sizes)
  bool fact;
  std::vector<ColSpec> cols;
};

// TPC-DS day-number domain 1998-01-01..2003-12-31.
constexpr double kDsDateLo = 10227.0;
constexpr double kDsDateHi = 12417.0;

std::vector<TableSpec> StarTables() {
  auto attr = [](const char* name, uint64_t distinct, double lo, double hi) {
    return ColSpec{name, Role::kAttr, nullptr, distinct, lo, hi};
  };
  auto measure = [](const char* name, double lo, double hi) {
    return ColSpec{name, Role::kMeasure, nullptr, 10000, lo, hi};
  };
  auto fk = [](const char* name, const char* ref) {
    return ColSpec{name, Role::kFk, ref};
  };
  auto key = [](const char* name) { return ColSpec{name, Role::kKey}; };
  auto date = [](const char* name) {
    return ColSpec{name, Role::kDate, nullptr, 2190, kDsDateLo, kDsDateHi};
  };

  return {
      // --- Dimensions. ---
      {"date_dim", 73'049, false,
       {key("d_date_sk"), date("d_date"), attr("d_year", 6, 1998, 2003),
        attr("d_moy", 12, 1, 12), attr("d_dom", 31, 1, 31),
        attr("d_day_name", 7, 0, 7), attr("d_quarter", 4, 1, 4)}},
      {"time_dim", 86'400, false,
       {key("t_time_sk"), attr("t_hour", 24, 0, 23), attr("t_minute", 60, 0, 59),
        attr("t_shift", 3, 0, 3)}},
      {"item", 102'000, false,
       {key("i_item_sk"), attr("i_category", 10, 0, 10),
        attr("i_class", 100, 0, 100), attr("i_brand", 500, 0, 500),
        attr("i_color", 92, 0, 92), attr("i_size", 7, 0, 7),
        measure("i_current_price", 0.1, 300.0),
        attr("i_manufact", 1000, 0, 1000)}},
      {"customer", 1'000'000, false,
       {key("c_customer_sk"), fk("c_current_addr_sk", "customer_address"),
        fk("c_current_cdemo_sk", "customer_demographics"),
        fk("c_current_hdemo_sk", "household_demographics"),
        attr("c_birth_year", 70, 1930, 2000),
        attr("c_preferred_cust_flag", 2, 0, 1)}},
      {"customer_address", 500'000, false,
       {key("ca_address_sk"), attr("ca_state", 51, 0, 51),
        attr("ca_city", 700, 0, 700), attr("ca_country", 2, 0, 2),
        attr("ca_zip", 10000, 0, 99999), attr("ca_gmt_offset", 6, -10, -5)}},
      {"customer_demographics", 1'920'800, false,
       {key("cd_demo_sk"), attr("cd_gender", 2, 0, 1),
        attr("cd_marital_status", 5, 0, 5),
        attr("cd_education_status", 7, 0, 7),
        attr("cd_credit_rating", 4, 0, 4)}},
      {"household_demographics", 7'200, false,
       {key("hd_demo_sk"), fk("hd_income_band_sk", "income_band"),
        attr("hd_buy_potential", 6, 0, 6), attr("hd_dep_count", 10, 0, 9),
        attr("hd_vehicle_count", 6, 0, 5)}},
      {"income_band", 20, false,
       {key("ib_income_band_sk"), attr("ib_lower_bound", 20, 0, 190000),
        attr("ib_upper_bound", 20, 10000, 200000)}},
      {"store", 1'002, false,
       {key("s_store_sk"), attr("s_state", 30, 0, 30),
        attr("s_city", 200, 0, 200), attr("s_number_employees", 300, 200, 500),
        measure("s_floor_space", 5000000, 10000000),
        attr("s_market_id", 10, 1, 10)}},
      {"warehouse", 20, false,
       {key("w_warehouse_sk"), attr("w_state", 15, 0, 15),
        measure("w_warehouse_sq_ft", 50000, 1000000)}},
      {"ship_mode", 20, false,
       {key("sm_ship_mode_sk"), attr("sm_type", 6, 0, 6),
        attr("sm_carrier", 20, 0, 20)}},
      {"reason", 55, false,
       {key("r_reason_sk"), attr("r_reason_desc", 55, 0, 55)}},
      {"promotion", 1'000, false,
       {key("p_promo_sk"), attr("p_channel_tv", 2, 0, 1),
        attr("p_channel_email", 2, 0, 1), measure("p_cost", 500, 2000)}},
      {"catalog_page", 20'400, false,
       {key("cp_catalog_page_sk"), attr("cp_department", 10, 0, 10),
        attr("cp_type", 3, 0, 3)}},
      {"web_site", 54, false,
       {key("web_site_sk"), attr("web_class", 5, 0, 5),
        measure("web_tax_percentage", 0, 0.12)}},
      {"web_page", 2'040, false,
       {key("wp_web_page_sk"), attr("wp_char_count", 5000, 100, 8000),
        attr("wp_type", 7, 0, 7)}},
      {"call_center", 42, false,
       {key("cc_call_center_sk"), attr("cc_class", 3, 0, 3),
        attr("cc_employees", 40, 10, 700)}},
      // --- Facts. ---
      {"store_sales", 28'800'000, true,
       {fk("ss_sold_date_sk", "date_dim"), fk("ss_sold_time_sk", "time_dim"),
        fk("ss_item_sk", "item"), fk("ss_customer_sk", "customer"),
        fk("ss_cdemo_sk", "customer_demographics"),
        fk("ss_hdemo_sk", "household_demographics"),
        fk("ss_addr_sk", "customer_address"), fk("ss_store_sk", "store"),
        fk("ss_promo_sk", "promotion"), attr("ss_quantity", 100, 1, 100),
        measure("ss_wholesale_cost", 1, 100), measure("ss_list_price", 1, 200),
        measure("ss_sales_price", 0, 200), measure("ss_ext_discount_amt", 0, 1000),
        measure("ss_net_paid", 0, 20000), measure("ss_net_profit", -10000, 10000)}},
      {"catalog_sales", 14'400'000, true,
       {fk("cs_sold_date_sk", "date_dim"), fk("cs_item_sk", "item"),
        fk("cs_bill_customer_sk", "customer"),
        fk("cs_bill_cdemo_sk", "customer_demographics"),
        fk("cs_bill_addr_sk", "customer_address"),
        fk("cs_call_center_sk", "call_center"),
        fk("cs_catalog_page_sk", "catalog_page"),
        fk("cs_ship_mode_sk", "ship_mode"), fk("cs_warehouse_sk", "warehouse"),
        fk("cs_promo_sk", "promotion"), attr("cs_quantity", 100, 1, 100),
        measure("cs_wholesale_cost", 1, 100), measure("cs_list_price", 1, 300),
        measure("cs_sales_price", 0, 300), measure("cs_net_paid", 0, 30000),
        measure("cs_net_profit", -10000, 20000)}},
      {"web_sales", 7'200'000, true,
       {fk("ws_sold_date_sk", "date_dim"), fk("ws_item_sk", "item"),
        fk("ws_bill_customer_sk", "customer"),
        fk("ws_bill_addr_sk", "customer_address"),
        fk("ws_web_page_sk", "web_page"), fk("ws_web_site_sk", "web_site"),
        fk("ws_ship_mode_sk", "ship_mode"), fk("ws_warehouse_sk", "warehouse"),
        fk("ws_promo_sk", "promotion"), attr("ws_quantity", 100, 1, 100),
        measure("ws_wholesale_cost", 1, 100), measure("ws_list_price", 1, 300),
        measure("ws_sales_price", 0, 300), measure("ws_net_paid", 0, 30000),
        measure("ws_net_profit", -10000, 20000)}},
      {"store_returns", 2'880'000, true,
       {fk("sr_returned_date_sk", "date_dim"), fk("sr_item_sk", "item"),
        fk("sr_customer_sk", "customer"), fk("sr_store_sk", "store"),
        fk("sr_reason_sk", "reason"), attr("sr_return_quantity", 100, 1, 100),
        measure("sr_return_amt", 0, 20000), measure("sr_net_loss", 0, 10000)}},
      {"catalog_returns", 1'440'000, true,
       {fk("cr_returned_date_sk", "date_dim"), fk("cr_item_sk", "item"),
        fk("cr_returning_customer_sk", "customer"),
        fk("cr_call_center_sk", "call_center"), fk("cr_reason_sk", "reason"),
        attr("cr_return_quantity", 100, 1, 100),
        measure("cr_return_amount", 0, 30000), measure("cr_net_loss", 0, 15000)}},
      {"web_returns", 720'000, true,
       {fk("wr_returned_date_sk", "date_dim"), fk("wr_item_sk", "item"),
        fk("wr_returning_customer_sk", "customer"),
        fk("wr_web_page_sk", "web_page"), fk("wr_reason_sk", "reason"),
        attr("wr_return_quantity", 100, 1, 100),
        measure("wr_return_amt", 0, 30000), measure("wr_net_loss", 0, 15000)}},
      {"inventory", 11'745'000, true,
       {fk("inv_date_sk", "date_dim"), fk("inv_item_sk", "item"),
        fk("inv_warehouse_sk", "warehouse"),
        attr("inv_quantity_on_hand", 1000, 0, 1000)}},
  };
}

ColumnType TypeForRole(Role role) {
  switch (role) {
    case Role::kKey:
    case Role::kFk:
      return ColumnType::kInt;
    case Role::kAttr:
      return ColumnType::kInt;
    case Role::kMeasure:
      return ColumnType::kDecimal;
    case Role::kDate:
      return ColumnType::kDate;
  }
  return ColumnType::kInt;
}

}  // namespace

SchemaGraph BuildStarSchema(catalog::Catalog* catalog,
                            stats::StatsManager* stats, double scale,
                            double zipf_skew, Rng& rng) {
  const std::vector<TableSpec> tables = StarTables();
  SchemaGraph graph;

  // --- Schema. ---
  for (const TableSpec& ts : tables) {
    // Dimensions keep their size; facts scale.
    const double rows = ts.fact ? ts.base_rows * scale : ts.base_rows;
    catalog::SchemaBuilder b(catalog);
    auto tb = b.Table(ts.name, static_cast<uint64_t>(std::max(1.0, rows)));
    for (const ColSpec& cs : ts.cols) {
      if (cs.role == Role::kKey) {
        tb.Key(cs.name, TypeForRole(cs.role));
      } else {
        tb.Col(cs.name, TypeForRole(cs.role));
      }
    }
    if (ts.fact) graph.fact_tables.push_back(ts.name);
  }

  // --- Statistics + graph metadata. ---
  stats::DataGenerator dg;
  for (const TableSpec& ts : tables) {
    const catalog::Table* t = catalog->FindTable(ts.name);
    for (const ColSpec& cs : ts.cols) {
      const catalog::ColumnId id{t->id(), t->FindColumn(cs.name)};
      ColumnDataSpec spec;
      switch (cs.role) {
        case Role::kKey:
          spec.distribution = Distribution::kKey;
          break;
        case Role::kFk: {
          const uint64_t ref_rows = catalog->FindTable(cs.ref)->row_count();
          spec.distribution = (ts.fact && zipf_skew > 0.0)
                                  ? Distribution::kZipf
                                  : Distribution::kUniform;
          spec.zipf_skew = zipf_skew;
          spec.distinct = ref_rows;
          spec.domain_min = 1.0;
          spec.domain_max = static_cast<double>(ref_rows);
          break;
        }
        case Role::kAttr:
        case Role::kDate:
          spec.distribution = (ts.fact && zipf_skew > 0.0)
                                  ? Distribution::kZipf
                                  : Distribution::kUniform;
          spec.zipf_skew = zipf_skew;
          spec.distinct = cs.distinct;
          spec.domain_min = cs.lo;
          spec.domain_max = cs.hi;
          break;
        case Role::kMeasure:
          spec.distribution = Distribution::kGaussian;
          spec.distinct = cs.distinct;
          spec.domain_min = cs.lo;
          spec.domain_max = cs.hi;
          break;
      }
      stats->SetStats(id, dg.Generate(spec, t->row_count(), rng));

      // Graph roles.
      if (cs.role == Role::kFk) {
        // Edge fact_fk -> referenced key (first column of the ref table).
        const catalog::Table* ref = catalog->FindTable(cs.ref);
        graph.edges.push_back(JoinEdge{ts.name, cs.name, std::string(cs.ref),
                                       ref->column(0).name});
      } else if (cs.role == Role::kAttr) {
        graph.filterable.push_back(
            {ts.name, cs.name,
             cs.distinct <= 100 ? FilterSlot::Kind::kEq
                                : FilterSlot::Kind::kRange});
        if (cs.distinct <= 100) graph.groupable.push_back({ts.name, cs.name});
      } else if (cs.role == Role::kDate) {
        graph.filterable.push_back({ts.name, cs.name, FilterSlot::Kind::kRange});
      } else if (cs.role == Role::kMeasure) {
        graph.measures.push_back({ts.name, cs.name});
        graph.filterable.push_back({ts.name, cs.name, FilterSlot::Kind::kRange});
      }
    }
  }
  return graph;
}

}  // namespace isum::workload::gen
