#include "workload/generator/recipe.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "common/hash.h"
#include "common/string_util.h"

namespace isum::workload::gen {

namespace {

std::string FormatLiteral(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.4f", v);
}

catalog::ColumnId Resolve(const catalog::Catalog& catalog,
                          const std::string& table, const std::string& column) {
  return catalog.ResolveColumn(table, column);
}

}  // namespace

std::string InstantiateSql(const TemplateRecipe& recipe,
                           const catalog::Catalog& catalog,
                           const stats::StatsManager& stats, Rng& rng) {
  std::string sql = "SELECT ";
  std::vector<std::string> select_parts;
  for (const auto& [t, c] : recipe.select_columns) {
    select_parts.push_back(t + "." + c);
  }
  for (const std::string& agg : recipe.aggregates) select_parts.push_back(agg);
  if (select_parts.empty()) select_parts.push_back("COUNT(*)");
  sql += Join(select_parts, ", ");

  sql += " FROM " + Join(recipe.tables, ", ");

  std::vector<std::string> conjuncts;
  for (const JoinEdge& j : recipe.joins) {
    conjuncts.push_back(j.left_table + "." + j.left_column + " = " +
                        j.right_table + "." + j.right_column);
  }
  for (const FilterSlot& f : recipe.filters) {
    const catalog::ColumnId id = Resolve(catalog, f.table, f.column);
    const std::string col = f.table + "." + f.column;
    const double target = rng.NextDouble(f.min_selectivity, f.max_selectivity);
    switch (f.kind) {
      case FilterSlot::Kind::kEq: {
        const double v = stats.ValueAtQuantile(id, rng.NextDouble());
        conjuncts.push_back(col + " = " + FormatLiteral(v));
        break;
      }
      case FilterSlot::Kind::kRange: {
        const double start = rng.NextDouble() * std::max(0.0, 1.0 - target);
        const double lo = stats.ValueAtQuantile(id, start);
        const double hi = stats.ValueAtQuantile(id, start + target);
        conjuncts.push_back(col + " BETWEEN " + FormatLiteral(lo) + " AND " +
                            FormatLiteral(hi));
        break;
      }
      case FilterSlot::Kind::kLessEq: {
        const double hi = stats.ValueAtQuantile(id, target);
        conjuncts.push_back(col + " <= " + FormatLiteral(hi));
        break;
      }
      case FilterSlot::Kind::kGreaterEq: {
        const double lo = stats.ValueAtQuantile(id, 1.0 - target);
        conjuncts.push_back(col + " >= " + FormatLiteral(lo));
        break;
      }
      case FilterSlot::Kind::kIn: {
        std::set<std::string> values;
        for (int i = 0; i < f.in_list_size; ++i) {
          values.insert(
              FormatLiteral(stats.ValueAtQuantile(id, rng.NextDouble())));
        }
        conjuncts.push_back(
            col + " IN (" +
            Join(std::vector<std::string>(values.begin(), values.end()), ", ") +
            ")");
        break;
      }
    }
  }
  if (!conjuncts.empty()) sql += " WHERE " + Join(conjuncts, " AND ");

  if (!recipe.group_by.empty()) {
    std::vector<std::string> parts;
    for (const auto& [t, c] : recipe.group_by) parts.push_back(t + "." + c);
    sql += " GROUP BY " + Join(parts, ", ");
  }
  if (!recipe.order_by.empty()) {
    std::vector<std::string> parts;
    for (const auto& [t, c] : recipe.order_by) parts.push_back(t + "." + c);
    sql += " ORDER BY " + Join(parts, ", ");
    if (recipe.order_desc) sql += " DESC";
  }
  if (recipe.limit > 0) sql += StrFormat(" LIMIT %d", recipe.limit);
  return sql;
}

std::vector<const JoinEdge*> SchemaGraph::EdgesOf(
    const std::string& table) const {
  std::vector<const JoinEdge*> out;
  for (const JoinEdge& e : edges) {
    if (e.left_table == table || e.right_table == table) out.push_back(&e);
  }
  return out;
}

std::vector<TemplateRecipe> GenerateRecipes(const SchemaGraph& graph, int count,
                                            const RecipeGenOptions& options,
                                            Rng& rng) {
  std::vector<TemplateRecipe> out;
  std::unordered_set<uint64_t> shapes;  // avoid duplicate shapes

  auto columns_of = [&graph](const std::string& table) {
    std::vector<SchemaGraph::FilterableColumn> cols;
    for (const auto& fc : graph.filterable) {
      if (fc.table == table) cols.push_back(fc);
    }
    return cols;
  };

  int attempts = 0;
  while (static_cast<int>(out.size()) < count && attempts < count * 50) {
    ++attempts;
    TemplateRecipe recipe;
    recipe.tag = options.tag;

    const std::unordered_set<std::string> facts(graph.fact_tables.begin(),
                                                graph.fact_tables.end());

    // Anchor table.
    std::string anchor;
    if (!graph.fact_tables.empty() &&
        rng.NextBool(options.fact_anchor_probability)) {
      anchor = graph.fact_tables[rng.NextUint64(graph.fact_tables.size())];
    } else if (!graph.edges.empty()) {
      const JoinEdge& e = graph.edges[rng.NextUint64(graph.edges.size())];
      anchor = rng.NextBool() ? e.left_table : e.right_table;
    } else if (!graph.filterable.empty()) {
      anchor = graph.filterable[rng.NextUint64(graph.filterable.size())].table;
    } else {
      break;
    }
    recipe.tables.push_back(anchor);
    int fact_count = facts.contains(anchor) ? 1 : 0;

    // Random join walk.
    const int num_joins = static_cast<int>(
        rng.NextInt(options.min_joins, options.max_joins));
    std::unordered_set<std::string> in_query = {anchor};
    for (int j = 0; j < num_joins; ++j) {
      // Collect edges extending the current set by one new table.
      std::vector<const JoinEdge*> frontier;
      for (const std::string& t : recipe.tables) {
        for (const JoinEdge* e : graph.EdgesOf(t)) {
          const std::string& other =
              e->left_table == t ? e->right_table : e->left_table;
          if (in_query.contains(other)) continue;
          if (!options.allow_multiple_facts && fact_count >= 1 &&
              facts.contains(other)) {
            continue;
          }
          frontier.push_back(e);
        }
      }
      if (frontier.empty()) break;
      const JoinEdge* chosen = frontier[rng.NextUint64(frontier.size())];
      const std::string added = in_query.contains(chosen->left_table)
                                    ? chosen->right_table
                                    : chosen->left_table;
      in_query.insert(added);
      if (facts.contains(added)) ++fact_count;
      recipe.tables.push_back(added);
      recipe.joins.push_back(*chosen);
    }

    // Filters over the participating tables.
    std::vector<SchemaGraph::FilterableColumn> pool;
    for (const std::string& t : recipe.tables) {
      for (const auto& fc : columns_of(t)) pool.push_back(fc);
    }
    if (pool.empty()) continue;
    const int num_filters = static_cast<int>(rng.NextInt(
        options.min_filters,
        std::min<int64_t>(options.max_filters, static_cast<int64_t>(pool.size()))));
    rng.Shuffle(pool);
    for (int f = 0; f < num_filters; ++f) {
      FilterSlot slot;
      slot.table = pool[f].table;
      slot.column = pool[f].column;
      slot.kind = pool[f].kind;
      // Template-specific selectivity band (kept narrow so instances of one
      // template are alike, as with real parameterized queries).
      const double center = std::pow(10.0, rng.NextDouble(-3.0, -0.5));
      slot.min_selectivity = center * 0.5;
      slot.max_selectivity = std::min(0.9, center * 1.5);
      recipe.filters.push_back(slot);
    }

    // Aggregation / projection.
    const bool aggregate = rng.NextBool(options.aggregate_probability);
    if (aggregate) {
      std::vector<std::pair<std::string, std::string>> group_pool;
      for (const auto& [t, c] : graph.groupable) {
        if (in_query.contains(t)) group_pool.push_back({t, c});
      }
      if (!group_pool.empty()) {
        rng.Shuffle(group_pool);
        const int g = static_cast<int>(rng.NextInt(
            1, std::min<int64_t>(2, static_cast<int64_t>(group_pool.size()))));
        for (int i = 0; i < g; ++i) {
          recipe.group_by.push_back(group_pool[i]);
          recipe.select_columns.push_back(group_pool[i]);
        }
      }
      std::vector<std::pair<std::string, std::string>> measure_pool;
      for (const auto& [t, c] : graph.measures) {
        if (in_query.contains(t)) measure_pool.push_back({t, c});
      }
      if (!measure_pool.empty()) {
        const auto& [mt, mc] = measure_pool[rng.NextUint64(measure_pool.size())];
        static constexpr const char* kAggs[] = {"SUM", "AVG", "MIN", "MAX"};
        recipe.aggregates.push_back(std::string(kAggs[rng.NextUint64(4)]) + "(" +
                                    mt + "." + mc + ")");
      } else {
        recipe.aggregates.push_back("COUNT(*)");
      }
      if (recipe.group_by.empty() && recipe.aggregates.empty()) {
        recipe.aggregates.push_back("COUNT(*)");
      }
    } else {
      // Project a few concrete columns.
      std::vector<std::pair<std::string, std::string>> proj_pool;
      for (const auto& [t, c] : graph.measures) {
        if (in_query.contains(t)) proj_pool.push_back({t, c});
      }
      for (const auto& fc : pool) proj_pool.push_back({fc.table, fc.column});
      if (!proj_pool.empty()) {
        rng.Shuffle(proj_pool);
        const int p = static_cast<int>(rng.NextInt(
            1, std::min<int64_t>(4, static_cast<int64_t>(proj_pool.size()))));
        for (int i = 0; i < p; ++i) {
          if (std::find(recipe.select_columns.begin(), recipe.select_columns.end(),
                        proj_pool[i]) == recipe.select_columns.end()) {
            recipe.select_columns.push_back(proj_pool[i]);
          }
        }
      }
    }

    // Order-by: group-by columns (post-agg) or projected columns.
    if (rng.NextBool(options.order_by_probability)) {
      if (!recipe.group_by.empty()) {
        recipe.order_by.push_back(recipe.group_by.front());
      } else if (!recipe.select_columns.empty()) {
        recipe.order_by.push_back(recipe.select_columns.front());
      }
      recipe.order_desc = rng.NextBool();
    }
    if (rng.NextBool(options.limit_probability)) {
      recipe.limit = static_cast<int>(rng.NextInt(10, 100));
    }

    // Shape signature for dedup: tables + filter columns + group/order.
    std::string sig;
    for (const auto& t : recipe.tables) sig += t + "|";
    for (const auto& f : recipe.filters) sig += f.table + "." + f.column + ";";
    for (const auto& [t, c] : recipe.group_by) sig += "g" + t + "." + c;
    for (const auto& [t, c] : recipe.order_by) sig += "o" + t + "." + c;
    for (const auto& a : recipe.aggregates) sig += a;
    if (!shapes.insert(HashBytes(sig)).second) continue;

    recipe.name = StrFormat("%s_t%zu", options.tag.empty() ? "tpl" : options.tag.c_str(),
                            out.size());
    out.push_back(std::move(recipe));
  }
  return out;
}

}  // namespace isum::workload::gen
