#include <cmath>
#include <functional>

#include "catalog/schema_builder.h"
#include "common/log.h"
#include "obs/trace.h"
#include "common/string_util.h"
#include "sql/binder.h"
#include "stats/data_generator.h"
#include "workload/workload_factory.h"

namespace isum::workload {

namespace {

using catalog::ColumnType;
using stats::ColumnDataSpec;
using stats::Distribution;

// Day numbers (since 1970-01-01) for the TPC-H date range 1992-01-01 to
// 1998-12-31.
constexpr double kDateLo = 8035.0;
constexpr double kDateHi = 10591.0;

/// Formats a day number back to an ISO date string (civil_from_days).
std::string FormatDate(double days) {
  int64_t z = static_cast<int64_t>(days) + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint64_t doe = static_cast<uint64_t>(z - era * 146097);
  const uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint64_t mp = (5 * doy + 2) / 153;
  const uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint64_t m = mp + (mp < 10 ? 3 : -9);
  return StrFormat("%04lld-%02llu-%02llu", static_cast<long long>(y + (m <= 2)),
                   static_cast<unsigned long long>(m),
                   static_cast<unsigned long long>(d));
}

struct TpchEnv {
  catalog::Catalog* catalog;
  stats::StatsManager* stats;
};

void BuildSchema(catalog::Catalog* cat, double sf) {
  catalog::SchemaBuilder b(cat);
  auto rows = [sf](double base) {
    return static_cast<uint64_t>(std::max(1.0, base * sf));
  };
  b.Table("region", 5)
      .Key("r_regionkey", ColumnType::kInt)
      .Col("r_name", ColumnType::kChar, 25)
      .Col("r_comment", ColumnType::kVarchar, 152);
  b.Table("nation", 25)
      .Key("n_nationkey", ColumnType::kInt)
      .Col("n_name", ColumnType::kChar, 25)
      .Col("n_regionkey", ColumnType::kInt)
      .Col("n_comment", ColumnType::kVarchar, 152);
  b.Table("supplier", rows(10'000))
      .Key("s_suppkey", ColumnType::kInt)
      .Col("s_name", ColumnType::kChar, 25)
      .Col("s_address", ColumnType::kVarchar, 40)
      .Col("s_nationkey", ColumnType::kInt)
      .Col("s_phone", ColumnType::kChar, 15)
      .Col("s_acctbal", ColumnType::kDecimal)
      .Col("s_comment", ColumnType::kVarchar, 101);
  b.Table("customer", rows(150'000))
      .Key("c_custkey", ColumnType::kInt)
      .Col("c_name", ColumnType::kVarchar, 25)
      .Col("c_address", ColumnType::kVarchar, 40)
      .Col("c_nationkey", ColumnType::kInt)
      .Col("c_phone", ColumnType::kChar, 15)
      .Col("c_acctbal", ColumnType::kDecimal)
      .Col("c_mktsegment", ColumnType::kChar, 10)
      .Col("c_comment", ColumnType::kVarchar, 117);
  b.Table("part", rows(200'000))
      .Key("p_partkey", ColumnType::kInt)
      .Col("p_name", ColumnType::kVarchar, 55)
      .Col("p_mfgr", ColumnType::kChar, 25)
      .Col("p_brand", ColumnType::kChar, 10)
      .Col("p_type", ColumnType::kVarchar, 25)
      .Col("p_size", ColumnType::kInt)
      .Col("p_container", ColumnType::kChar, 10)
      .Col("p_retailprice", ColumnType::kDecimal)
      .Col("p_comment", ColumnType::kVarchar, 23);
  b.Table("partsupp", rows(800'000))
      .Col("ps_partkey", ColumnType::kInt)
      .Col("ps_suppkey", ColumnType::kInt)
      .Col("ps_availqty", ColumnType::kInt)
      .Col("ps_supplycost", ColumnType::kDecimal)
      .Col("ps_comment", ColumnType::kVarchar, 199);
  b.Table("orders", rows(1'500'000))
      .Key("o_orderkey", ColumnType::kInt)
      .Col("o_custkey", ColumnType::kInt)
      .Col("o_orderstatus", ColumnType::kChar, 1)
      .Col("o_totalprice", ColumnType::kDecimal)
      .Col("o_orderdate", ColumnType::kDate)
      .Col("o_orderpriority", ColumnType::kChar, 15)
      .Col("o_clerk", ColumnType::kChar, 15)
      .Col("o_shippriority", ColumnType::kInt)
      .Col("o_comment", ColumnType::kVarchar, 79);
  b.Table("lineitem", rows(6'000'000))
      .Col("l_orderkey", ColumnType::kInt)
      .Col("l_partkey", ColumnType::kInt)
      .Col("l_suppkey", ColumnType::kInt)
      .Col("l_linenumber", ColumnType::kInt)
      .Col("l_quantity", ColumnType::kDecimal)
      .Col("l_extendedprice", ColumnType::kDecimal)
      .Col("l_discount", ColumnType::kDecimal)
      .Col("l_tax", ColumnType::kDecimal)
      .Col("l_returnflag", ColumnType::kChar, 1)
      .Col("l_linestatus", ColumnType::kChar, 1)
      .Col("l_shipdate", ColumnType::kDate)
      .Col("l_commitdate", ColumnType::kDate)
      .Col("l_receiptdate", ColumnType::kDate)
      .Col("l_shipinstruct", ColumnType::kChar, 25)
      .Col("l_shipmode", ColumnType::kChar, 10)
      .Col("l_comment", ColumnType::kVarchar, 44);
}

void BuildStats(const catalog::Catalog& cat, stats::StatsManager* sm, Rng& rng) {
  stats::DataGenerator dg;
  auto set = [&](const char* table, const char* column, Distribution dist,
                 uint64_t distinct, double lo, double hi) {
    const catalog::Table* t = cat.FindTable(table);
    const catalog::ColumnId id{t->id(), t->FindColumn(column)};
    ColumnDataSpec spec;
    spec.distribution = dist;
    spec.distinct = distinct;
    spec.domain_min = lo;
    spec.domain_max = hi;
    sm->SetStats(id, dg.Generate(spec, t->row_count(), rng));
  };
  auto key = [&](const char* table, const char* column) {
    const catalog::Table* t = cat.FindTable(table);
    const catalog::ColumnId id{t->id(), t->FindColumn(column)};
    ColumnDataSpec spec;
    spec.distribution = Distribution::kKey;
    sm->SetStats(id, dg.Generate(spec, t->row_count(), rng));
  };
  auto fk = [&](const char* table, const char* column, const char* ref_table) {
    const uint64_t ref_rows = cat.FindTable(ref_table)->row_count();
    set(table, column, Distribution::kUniform, ref_rows, 1.0,
        static_cast<double>(ref_rows));
  };

  key("region", "r_regionkey");
  set("region", "r_name", Distribution::kUniform, 5, 0, 5);
  key("nation", "n_nationkey");
  set("nation", "n_name", Distribution::kUniform, 25, 0, 25);
  set("nation", "n_regionkey", Distribution::kUniform, 5, 0, 4);
  key("supplier", "s_suppkey");
  set("supplier", "s_nationkey", Distribution::kUniform, 25, 0, 24);
  set("supplier", "s_acctbal", Distribution::kUniform, 10000, -999.99, 9999.99);
  key("customer", "c_custkey");
  set("customer", "c_nationkey", Distribution::kUniform, 25, 0, 24);
  set("customer", "c_acctbal", Distribution::kUniform, 10000, -999.99, 9999.99);
  set("customer", "c_mktsegment", Distribution::kUniform, 5, 0, 5);
  set("customer", "c_phone", Distribution::kUniform, 100000, 0, 99999);
  key("part", "p_partkey");
  set("part", "p_brand", Distribution::kUniform, 25, 0, 25);
  set("part", "p_type", Distribution::kUniform, 150, 0, 150);
  set("part", "p_size", Distribution::kUniform, 50, 1, 50);
  set("part", "p_container", Distribution::kUniform, 40, 0, 40);
  set("part", "p_retailprice", Distribution::kUniform, 20000, 900, 2100);
  fk("partsupp", "ps_partkey", "part");
  fk("partsupp", "ps_suppkey", "supplier");
  set("partsupp", "ps_availqty", Distribution::kUniform, 9999, 1, 9999);
  set("partsupp", "ps_supplycost", Distribution::kUniform, 99900, 1, 1000);
  key("orders", "o_orderkey");
  fk("orders", "o_custkey", "customer");
  set("orders", "o_orderstatus", Distribution::kUniform, 3, 0, 3);
  set("orders", "o_totalprice", Distribution::kGaussian, 100000, 900, 500000);
  set("orders", "o_orderdate", Distribution::kUniform, 2400, kDateLo, kDateHi);
  set("orders", "o_orderpriority", Distribution::kUniform, 5, 0, 5);
  set("orders", "o_shippriority", Distribution::kUniform, 1, 0, 0);
  fk("lineitem", "l_orderkey", "orders");
  fk("lineitem", "l_partkey", "part");
  fk("lineitem", "l_suppkey", "supplier");
  set("lineitem", "l_linenumber", Distribution::kUniform, 7, 1, 7);
  set("lineitem", "l_quantity", Distribution::kUniform, 50, 1, 50);
  set("lineitem", "l_extendedprice", Distribution::kGaussian, 100000, 900, 105000);
  set("lineitem", "l_discount", Distribution::kUniform, 11, 0.0, 0.10);
  set("lineitem", "l_tax", Distribution::kUniform, 9, 0.0, 0.08);
  set("lineitem", "l_returnflag", Distribution::kUniform, 3, 0, 3);
  set("lineitem", "l_linestatus", Distribution::kUniform, 2, 0, 2);
  set("lineitem", "l_shipdate", Distribution::kUniform, 2500, kDateLo, kDateHi);
  set("lineitem", "l_commitdate", Distribution::kUniform, 2450, kDateLo, kDateHi);
  set("lineitem", "l_receiptdate", Distribution::kUniform, 2500, kDateLo, kDateHi);
  set("lineitem", "l_shipmode", Distribution::kUniform, 7, 0, 7);
  set("lineitem", "l_shipinstruct", Distribution::kUniform, 4, 0, 4);
}

/// A template is a function from an Rng to a SQL instance.
using TemplateFn = std::function<std::string(Rng&)>;

std::vector<TemplateFn> BuildTemplates() {
  auto date = [](Rng& rng, double lo_q, double hi_q) {
    return FormatDate(kDateLo + (kDateHi - kDateLo) * rng.NextDouble(lo_q, hi_q));
  };
  auto pick = [](Rng& rng, std::vector<std::string> options) {
    return options[rng.NextUint64(options.size())];
  };
  const std::vector<std::string> kSegments = {"AUTOMOBILE", "BUILDING",
                                              "FURNITURE", "MACHINERY",
                                              "HOUSEHOLD"};
  const std::vector<std::string> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                             "EUROPE", "MIDDLE EAST"};
  const std::vector<std::string> kNations = {
      "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
      "FRANCE",  "GERMANY",   "INDIA",  "JAPAN",  "KENYA", "CHINA"};
  const std::vector<std::string> kModes = {"AIR", "RAIL", "SHIP", "TRUCK",
                                           "MAIL", "FOB", "REG AIR"};
  const std::vector<std::string> kPriorities = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                                "4-NOT SPECIFIED", "5-LOW"};
  const std::vector<std::string> kBrands = {"Brand#11", "Brand#22", "Brand#33",
                                            "Brand#44", "Brand#55"};
  const std::vector<std::string> kContainers = {"SM CASE", "MED BOX", "LG JAR",
                                                "JUMBO PKG", "WRAP BAG"};
  const std::vector<std::string> kTypes = {"ECONOMY ANODIZED STEEL",
                                           "STANDARD POLISHED BRASS",
                                           "PROMO BURNISHED COPPER",
                                           "MEDIUM PLATED NICKEL"};

  std::vector<TemplateFn> t;
  // Q1: pricing summary report.
  t.push_back([=](Rng& rng) {
    return "SELECT l_returnflag, l_linestatus, SUM(l_quantity), "
           "SUM(l_extendedprice), SUM(l_extendedprice * (1 - l_discount)), "
           "AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) "
           "FROM lineitem WHERE l_shipdate <= '" + date(rng, 0.85, 0.99) +
           "' GROUP BY l_returnflag, l_linestatus "
           "ORDER BY l_returnflag, l_linestatus";
  });
  // Q2: minimum cost supplier (flattened).
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr FROM part, "
        "supplier, partsupp, nation, region WHERE p_partkey = ps_partkey AND "
        "s_suppkey = ps_suppkey AND p_size = %lld AND s_nationkey = "
        "n_nationkey AND n_regionkey = r_regionkey AND r_name = '%s' ORDER BY "
        "s_acctbal DESC LIMIT 100",
        static_cast<long long>(rng.NextInt(1, 50)),
        pick(rng, kRegions).c_str());
  });
  // Q3: shipping priority.
  t.push_back([=](Rng& rng) {
    const std::string d = date(rng, 0.3, 0.5);
    return "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS "
           "revenue, o_orderdate, o_shippriority FROM customer, orders, "
           "lineitem WHERE c_mktsegment = '" + pick(rng, kSegments) +
           "' AND c_custkey = o_custkey AND l_orderkey = o_orderkey AND "
           "o_orderdate < '" + d + "' AND l_shipdate > '" + d +
           "' GROUP BY l_orderkey, o_orderdate, o_shippriority "
           "ORDER BY revenue DESC, o_orderdate LIMIT 10";
  });
  // Q4: order priority checking (real EXISTS form; the binder flattens it
  // into a semi join).
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.8);
    return "SELECT o_orderpriority, COUNT(*) FROM orders WHERE "
           "o_orderdate >= '" + FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND o_orderdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 90) +
           "' AND EXISTS (SELECT * FROM lineitem WHERE l_orderkey = "
           "o_orderkey AND l_commitdate < l_receiptdate) "
           "GROUP BY o_orderpriority ORDER BY o_orderpriority";
  });
  // Q5: local supplier volume.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.7);
    return "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
           "FROM customer, orders, lineitem, supplier, nation, region WHERE "
           "c_custkey = o_custkey AND l_orderkey = o_orderkey AND l_suppkey = "
           "s_suppkey AND c_nationkey = s_nationkey AND s_nationkey = "
           "n_nationkey AND n_regionkey = r_regionkey AND r_name = '" +
           pick(rng, kRegions) + "' AND o_orderdate >= '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND o_orderdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 365) +
           "' GROUP BY n_name ORDER BY revenue DESC";
  });
  // Q6: forecasting revenue change.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.7);
    const double disc = rng.NextDouble(0.02, 0.08);
    return StrFormat(
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem WHERE "
        "l_shipdate >= '%s' AND l_shipdate < '%s' AND l_discount BETWEEN "
        "%.2f AND %.2f AND l_quantity < %lld",
        FormatDate(kDateLo + (kDateHi - kDateLo) * start).c_str(),
        FormatDate(kDateLo + (kDateHi - kDateLo) * start + 365).c_str(),
        disc - 0.01, disc + 0.01, static_cast<long long>(rng.NextInt(24, 25)));
  });
  // Q7: volume shipping (single nation dimension).
  t.push_back([=](Rng& rng) {
    return "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) FROM "
           "supplier, lineitem, orders, customer, nation WHERE s_suppkey = "
           "l_suppkey AND o_orderkey = l_orderkey AND c_custkey = o_custkey "
           "AND s_nationkey = n_nationkey AND n_name = '" + pick(rng, kNations) +
           "' AND l_shipdate BETWEEN '" + date(rng, 0.2, 0.4) + "' AND '" +
           date(rng, 0.6, 0.9) + "' GROUP BY n_name";
  });
  // Q8: national market share.
  t.push_back([=](Rng& rng) {
    return "SELECT o_orderdate, SUM(l_extendedprice * (1 - l_discount)) FROM "
           "part, supplier, lineitem, orders, customer, nation, region WHERE "
           "p_partkey = l_partkey AND s_suppkey = l_suppkey AND l_orderkey = "
           "o_orderkey AND o_custkey = c_custkey AND c_nationkey = "
           "n_nationkey AND n_regionkey = r_regionkey AND r_name = '" +
           pick(rng, kRegions) + "' AND o_orderdate BETWEEN '" +
           date(rng, 0.35, 0.45) + "' AND '" + date(rng, 0.6, 0.7) +
           "' AND p_type = '" + pick(rng, kTypes) + "' GROUP BY o_orderdate "
           "ORDER BY o_orderdate";
  });
  // Q9: product type profit measure.
  t.push_back([=](Rng& rng) {
    return "SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - "
           "ps_supplycost * l_quantity) AS profit FROM part, supplier, "
           "lineitem, partsupp, orders, nation WHERE s_suppkey = l_suppkey "
           "AND ps_suppkey = l_suppkey AND ps_partkey = l_partkey AND "
           "p_partkey = l_partkey AND o_orderkey = l_orderkey AND s_nationkey "
           "= n_nationkey AND p_type = '" + pick(rng, kTypes) +
           "' GROUP BY n_name ORDER BY n_name";
  });
  // Q10: returned item reporting.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.2, 0.8);
    return "SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) "
           "AS revenue, c_acctbal, n_name FROM customer, orders, lineitem, "
           "nation WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
           "AND o_orderdate >= '" + FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND o_orderdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 90) +
           "' AND l_returnflag = 'R' AND c_nationkey = n_nationkey GROUP BY "
           "c_custkey, c_name, c_acctbal, n_name ORDER BY revenue DESC "
           "LIMIT 20";
  });
  // Q11: important stock identification.
  t.push_back([=](Rng& rng) {
    return "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS total "
           "FROM partsupp, supplier, nation WHERE ps_suppkey = s_suppkey AND "
           "s_nationkey = n_nationkey AND n_name = '" + pick(rng, kNations) +
           "' GROUP BY ps_partkey ORDER BY total DESC LIMIT 100";
  });
  // Q12: shipping modes and order priority.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.8);
    return "SELECT l_shipmode, COUNT(*) FROM orders, lineitem WHERE "
           "o_orderkey = l_orderkey AND l_shipmode IN ('" + pick(rng, kModes) +
           "', '" + pick(rng, kModes) + "') AND l_commitdate < l_receiptdate "
           "AND l_shipdate < l_commitdate AND l_receiptdate >= '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND l_receiptdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 365) +
           "' GROUP BY l_shipmode ORDER BY l_shipmode";
  });
  // Q13: customer distribution (flattened).
  t.push_back([=](Rng& rng) {
    return "SELECT c_custkey, COUNT(o_orderkey) FROM customer, orders WHERE "
           "c_custkey = o_custkey AND o_orderpriority = '" +
           pick(rng, kPriorities) + "' GROUP BY c_custkey";
  });
  // Q14: promotion effect.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.9);
    return "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, "
           "part WHERE l_partkey = p_partkey AND l_shipdate >= '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND l_shipdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 30) + "'";
  });
  // Q15: top supplier.
  t.push_back([=](Rng& rng) {
    const double start = rng.NextDouble(0.1, 0.8);
    return "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS "
           "total FROM lineitem, supplier WHERE l_suppkey = s_suppkey AND "
           "l_shipdate >= '" + FormatDate(kDateLo + (kDateHi - kDateLo) * start) +
           "' AND l_shipdate < '" +
           FormatDate(kDateLo + (kDateHi - kDateLo) * start + 90) +
           "' GROUP BY l_suppkey ORDER BY total DESC LIMIT 1";
  });
  // Q16: parts/supplier relationship.
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) FROM "
        "partsupp, part WHERE p_partkey = ps_partkey AND p_brand <> '%s' AND "
        "p_size IN (%lld, %lld, %lld) GROUP BY p_brand, p_type, p_size ORDER "
        "BY p_brand",
        pick(rng, kBrands).c_str(), static_cast<long long>(rng.NextInt(1, 15)),
        static_cast<long long>(rng.NextInt(16, 30)),
        static_cast<long long>(rng.NextInt(31, 50)));
  });
  // Q17: small-quantity-order revenue.
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT AVG(l_extendedprice) FROM lineitem, part WHERE p_partkey = "
        "l_partkey AND p_brand = '%s' AND p_container = '%s' AND l_quantity "
        "< %lld",
        pick(rng, kBrands).c_str(), pick(rng, kContainers).c_str(),
        static_cast<long long>(rng.NextInt(2, 8)));
  });
  // Q18: large volume customer.
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
        "SUM(l_quantity) FROM customer, orders, lineitem WHERE c_custkey = "
        "o_custkey AND o_orderkey = l_orderkey AND l_quantity > %lld GROUP BY "
        "c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice ORDER BY "
        "o_totalprice DESC, o_orderdate LIMIT 100",
        static_cast<long long>(rng.NextInt(40, 49)));
  });
  // Q19: discounted revenue (disjunctive predicate).
  t.push_back([=](Rng& rng) {
    const long long q1 = rng.NextInt(1, 11);
    const long long q2 = rng.NextInt(10, 21);
    return StrFormat(
        "SELECT SUM(l_extendedprice * (1 - l_discount)) FROM lineitem, part "
        "WHERE p_partkey = l_partkey AND l_shipmode IN ('AIR', 'REG AIR') AND "
        "((p_brand = '%s' AND l_quantity BETWEEN %lld AND %lld) OR (p_brand = "
        "'%s' AND l_quantity BETWEEN %lld AND %lld))",
        pick(rng, kBrands).c_str(), q1, q1 + 10, pick(rng, kBrands).c_str(), q2,
        q2 + 10);
  });
  // Q20: potential part promotion (real IN-subquery form).
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT s_name, s_address FROM supplier, nation WHERE s_suppkey IN "
        "(SELECT ps_suppkey FROM partsupp WHERE ps_availqty > %lld) AND "
        "s_nationkey = n_nationkey AND n_name = '%s' ORDER BY s_name",
        static_cast<long long>(rng.NextInt(5000, 9500)),
        pick(rng, kNations).c_str());
  });
  // Q21: suppliers who kept orders waiting (EXISTS form on orders).
  t.push_back([=](Rng& rng) {
    return "SELECT s_name, COUNT(*) AS numwait FROM supplier, lineitem, "
           "nation WHERE s_suppkey = l_suppkey AND l_receiptdate > "
           "l_commitdate AND s_nationkey = n_nationkey AND n_name = '" +
           pick(rng, kNations) + "' AND EXISTS (SELECT * FROM orders WHERE "
           "o_orderkey = l_orderkey AND o_orderstatus = 'F') "
           "GROUP BY s_name ORDER BY numwait DESC LIMIT 100";
  });
  // Q22: global sales opportunity (flattened).
  t.push_back([=](Rng& rng) {
    return StrFormat(
        "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer WHERE "
        "c_acctbal > %.2f AND c_nationkey IN (%lld, %lld, %lld) GROUP BY "
        "c_nationkey ORDER BY c_nationkey",
        rng.NextDouble(0.0, 8000.0), static_cast<long long>(rng.NextInt(0, 7)),
        static_cast<long long>(rng.NextInt(8, 15)),
        static_cast<long long>(rng.NextInt(16, 24)));
  });
  return t;
}

}  // namespace

GeneratedWorkload MakeTpch(const GeneratorOptions& options) {
  ISUM_TRACE_SPAN("workload/generate");
  GeneratedWorkload out;
  out.name = "TPC-H";
  out.catalog = std::make_unique<catalog::Catalog>();
  const double sf = 10.0 * options.scale;
  BuildSchema(out.catalog.get(), sf);

  Rng rng(options.seed);
  out.stats = std::make_unique<stats::StatsManager>(out.catalog.get());
  Rng stats_rng = rng.Fork(1);
  BuildStats(*out.catalog, out.stats.get(), stats_rng);
  out.cost_model =
      std::make_unique<engine::CostModel>(out.catalog.get(), out.stats.get());

  out.workload = std::make_unique<Workload>(Workload::Environment{
      out.catalog.get(), out.stats.get(), out.cost_model.get()});

  std::vector<TemplateFn> templates = BuildTemplates();
  if (options.max_templates > 0 &&
      static_cast<size_t>(options.max_templates) < templates.size()) {
    templates.resize(static_cast<size_t>(options.max_templates));
  }
  const int instances =
      options.instances_per_template > 0 ? options.instances_per_template : 100;
  const std::vector<int> counts = SkewedInstanceCounts(
      templates.size(), instances, options.instance_skew);
  for (size_t ti = 0; ti < templates.size(); ++ti) {
    Rng template_rng = rng.Fork(100 + ti);
    for (int i = 0; i < counts[ti]; ++i) {
      const std::string sql = templates[ti](template_rng);
      const Status st = out.workload->AddQuery(sql, StrFormat("Q%zu", ti + 1));
      // Generator templates are tested; a failure here is a bug.
      if (!st.ok()) {
        LogWarning(StrFormat("TPC-H template %zu failed: %s\nSQL:\n", ti + 1,
                             st.ToString().c_str()) +
                   sql);
      }
    }
  }
  return out;
}

}  // namespace isum::workload
