#ifndef ISUM_WORKLOAD_GENERATOR_RECIPE_H_
#define ISUM_WORKLOAD_GENERATOR_RECIPE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "stats/stats_manager.h"

namespace isum::workload::gen {

/// One equi-join edge between two tables (by column names).
struct JoinEdge {
  std::string left_table;
  std::string left_column;
  std::string right_table;
  std::string right_column;
};

/// A parameterized filter slot. Each instantiation draws a fresh literal; for
/// ranges the literal pair is chosen via histogram quantiles so the predicate
/// hits a target selectivity drawn from [min_selectivity, max_selectivity].
struct FilterSlot {
  enum class Kind { kEq, kRange, kLessEq, kGreaterEq, kIn };
  std::string table;
  std::string column;
  Kind kind = Kind::kRange;
  double min_selectivity = 0.01;
  double max_selectivity = 0.2;
  int in_list_size = 3;  ///< for kIn
};

/// A declarative query template: instantiating it with different parameter
/// bindings yields query instances sharing one template (in the sense of
/// [11] / the paper's §7).
struct TemplateRecipe {
  std::string name;
  std::string tag;  ///< e.g. DSB class: "SPJ" / "Aggregate" / "Complex"
  std::vector<std::string> tables;
  std::vector<JoinEdge> joins;
  std::vector<FilterSlot> filters;
  /// Plain projected columns, as (table, column).
  std::vector<std::pair<std::string, std::string>> select_columns;
  /// Rendered aggregate expressions, e.g. "SUM(ss_net_paid)".
  std::vector<std::string> aggregates;
  std::vector<std::pair<std::string, std::string>> group_by;
  std::vector<std::pair<std::string, std::string>> order_by;
  bool order_desc = false;
  int limit = 0;  ///< 0 = none
};

/// Renders one SQL instance of `recipe`, drawing parameter bindings from
/// `rng` and choosing literals through column statistics so target
/// selectivities are met.
std::string InstantiateSql(const TemplateRecipe& recipe,
                           const catalog::Catalog& catalog,
                           const stats::StatsManager& stats, Rng& rng);

/// Declarative description of a schema for procedural template generation.
struct SchemaGraph {
  struct FilterableColumn {
    std::string table;
    std::string column;
    FilterSlot::Kind kind = FilterSlot::Kind::kRange;
  };
  /// Fact tables (recipe anchors) and dimension tables.
  std::vector<std::string> fact_tables;
  std::vector<JoinEdge> edges;  ///< joinable pairs (fact->dim or dim->dim)
  std::vector<FilterableColumn> filterable;
  /// Group-by-able columns (low cardinality), as (table, column).
  std::vector<std::pair<std::string, std::string>> groupable;
  /// Numeric measures for aggregates, as (table, column).
  std::vector<std::pair<std::string, std::string>> measures;

  /// Edges incident to `table`.
  std::vector<const JoinEdge*> EdgesOf(const std::string& table) const;
};

/// Shape constraints for procedurally generated templates.
struct RecipeGenOptions {
  int min_joins = 0;
  int max_joins = 4;
  int min_filters = 1;
  int max_filters = 3;
  /// Probability the template aggregates (group-by + agg functions).
  double aggregate_probability = 0.5;
  /// Probability of an ORDER BY (independent of aggregation).
  double order_by_probability = 0.4;
  double limit_probability = 0.2;
  /// Probability the walk anchors at a fact table (when the graph has any).
  double fact_anchor_probability = 1.0;
  /// At most one fact table per query: joining two facts through a shared
  /// dimension explodes cardinalities in ways no index fixes; real star
  /// benchmarks join one fact to its dimensions.
  bool allow_multiple_facts = false;
  std::string tag;
};

/// Generates `count` distinct template recipes over `graph`, deterministic
/// in `rng`. Each starts at a fact table (or a random table when the graph
/// has no facts) and walks join edges.
std::vector<TemplateRecipe> GenerateRecipes(const SchemaGraph& graph, int count,
                                            const RecipeGenOptions& options,
                                            Rng& rng);

}  // namespace isum::workload::gen

#endif  // ISUM_WORKLOAD_GENERATOR_RECIPE_H_
