#include <cmath>

#include "catalog/schema_builder.h"
#include "common/log.h"
#include "common/string_util.h"
#include "obs/trace.h"
#include "stats/data_generator.h"
#include "workload/generator/recipe.h"
#include "workload/workload_factory.h"

namespace isum::workload {

namespace {

using catalog::ColumnType;
using stats::ColumnDataSpec;
using stats::Distribution;

/// Synthesizes the Real-M-like enterprise schema: `num_tables` tables with
/// log-uniform row counts (1e3 .. ~5e7, heavy skew), each with a surrogate
/// key, several attributes, and FK links to earlier tables forming loose
/// clusters (the join patterns of a real operational database).
gen::SchemaGraph BuildRealmSchema(catalog::Catalog* cat,
                                  stats::StatsManager* sm, int num_tables,
                                  double scale, Rng& rng) {
  gen::SchemaGraph graph;
  stats::DataGenerator dg;

  std::vector<std::string> names;
  std::vector<uint64_t> rows;
  for (int i = 0; i < num_tables; ++i) {
    const std::string name = StrFormat("tbl_%03d", i);
    // Log-uniform rows: most tables small, a few huge.
    const double log_rows = rng.NextDouble(3.0, 7.7);
    const uint64_t n =
        static_cast<uint64_t>(std::pow(10.0, log_rows) * std::max(0.05, scale));
    names.push_back(name);
    rows.push_back(std::max<uint64_t>(100, n));
  }

  for (int i = 0; i < num_tables; ++i) {
    catalog::SchemaBuilder b(cat);
    auto tb = b.Table(names[i], rows[i]);
    const std::string key_name = StrFormat("id_%03d", i);
    tb.Key(key_name, ColumnType::kInt);

    const catalog::Table* t = cat->FindTable(names[i]);
    {
      ColumnDataSpec spec;
      spec.distribution = Distribution::kKey;
      sm->SetStats(catalog::ColumnId{t->id(), 0},
                   dg.Generate(spec, rows[i], rng));
    }

    // FK links to up to 3 earlier tables within a sliding window (clusters).
    const int num_fks =
        i == 0 ? 0 : static_cast<int>(rng.NextInt(0, std::min(3, i)));
    for (int f = 0; f < num_fks; ++f) {
      const int lo = std::max(0, i - 25);
      const int ref = static_cast<int>(rng.NextInt(lo, i - 1));
      const std::string fk_name = StrFormat("fk_%03d_%d", i, f);
      tb.Col(fk_name, ColumnType::kInt);
      const int32_t ord = cat->FindTable(names[i])->FindColumn(fk_name);
      ColumnDataSpec spec;
      spec.distribution = Distribution::kZipf;
      spec.zipf_skew = 1.1;
      spec.distinct = rows[ref];
      spec.domain_min = 1.0;
      spec.domain_max = static_cast<double>(rows[ref]);
      sm->SetStats(catalog::ColumnId{t->id(), ord},
                   dg.Generate(spec, rows[i], rng));
      graph.edges.push_back(gen::JoinEdge{names[i], fk_name, names[ref],
                                          StrFormat("id_%03d", ref)});
    }

    // Attributes: mix of categorical, numeric and date-ish columns.
    const int num_attrs = static_cast<int>(rng.NextInt(3, 9));
    for (int a = 0; a < num_attrs; ++a) {
      const std::string col_name = StrFormat("col_%03d_%d", i, a);
      const int flavor = static_cast<int>(rng.NextInt(0, 3));
      ColumnDataSpec spec;
      ColumnType type = ColumnType::kInt;
      gen::FilterSlot::Kind kind = gen::FilterSlot::Kind::kRange;
      switch (flavor) {
        case 0:  // categorical
          spec.distribution = Distribution::kZipf;
          spec.zipf_skew = 1.0;
          spec.distinct = static_cast<uint64_t>(rng.NextInt(2, 80));
          spec.domain_min = 0;
          spec.domain_max = static_cast<double>(spec.distinct);
          kind = gen::FilterSlot::Kind::kEq;
          graph.groupable.push_back({names[i], col_name});
          break;
        case 1:  // numeric measure
          spec.distribution = Distribution::kGaussian;
          spec.distinct = 20000;
          spec.domain_min = 0;
          spec.domain_max = rng.NextDouble(1e3, 1e6);
          type = ColumnType::kDecimal;
          graph.measures.push_back({names[i], col_name});
          break;
        case 2:  // timestamp-ish
          spec.distribution = Distribution::kUniform;
          spec.distinct = 3000;
          spec.domain_min = 10000;
          spec.domain_max = 13000;
          type = ColumnType::kDate;
          break;
        default:  // wide id-like attribute
          spec.distribution = Distribution::kUniform;
          spec.distinct = rows[i] / 2 + 1;
          spec.domain_min = 0;
          spec.domain_max = static_cast<double>(rows[i]);
          break;
      }
      tb.Col(col_name, type);
      const int32_t ord = cat->FindTable(names[i])->FindColumn(col_name);
      sm->SetStats(catalog::ColumnId{t->id(), ord},
                   dg.Generate(spec, rows[i], rng));
      graph.filterable.push_back({names[i], col_name, kind});
    }
    // Large tables behave like facts: at most one per query so join
    // cardinalities stay index-fixable.
    if (rows[i] > 1'000'000) graph.fact_tables.push_back(names[i]);
  }
  return graph;
}

}  // namespace

GeneratedWorkload MakeRealM(const GeneratorOptions& options) {
  ISUM_TRACE_SPAN("workload/generate");
  GeneratedWorkload out;
  out.name = "Real-M";
  out.catalog = std::make_unique<catalog::Catalog>();
  out.stats = std::make_unique<stats::StatsManager>(out.catalog.get());

  Rng rng(options.seed ^ 0x4EA1ull);
  Rng schema_rng = rng.Fork(1);
  const gen::SchemaGraph graph = BuildRealmSchema(
      out.catalog.get(), out.stats.get(), /*num_tables=*/474, options.scale,
      schema_rng);
  out.cost_model =
      std::make_unique<engine::CostModel>(out.catalog.get(), out.stats.get());
  out.workload = std::make_unique<Workload>(Workload::Environment{
      out.catalog.get(), out.stats.get(), out.cost_model.get()});

  // 456 nearly-unique templates (paper: 456 templates over 473 queries —
  // the regime where template-based compression breaks down).
  gen::RecipeGenOptions gen_options;
  gen_options.min_joins = 0;
  gen_options.max_joins = 3;
  gen_options.min_filters = 1;
  gen_options.max_filters = 3;
  gen_options.aggregate_probability = 0.45;
  gen_options.order_by_probability = 0.35;
  gen_options.fact_anchor_probability = 0.45;
  gen_options.tag = "realm";
  Rng recipe_rng = rng.Fork(2);
  std::vector<gen::TemplateRecipe> recipes =
      gen::GenerateRecipes(graph, 456, gen_options, recipe_rng);
  if (options.max_templates > 0 &&
      static_cast<size_t>(options.max_templates) < recipes.size()) {
    recipes.resize(static_cast<size_t>(options.max_templates));
  }

  Rng inst_rng = rng.Fork(3);
  auto add_instance = [&](const gen::TemplateRecipe& recipe, Rng& r) {
    const std::string sql =
        gen::InstantiateSql(recipe, *out.catalog, *out.stats, r);
    const Status st = out.workload->AddQuery(sql, recipe.tag);
    if (!st.ok()) {
      LogWarning("Real-M template failed: " + st.ToString() + "\nSQL: " + sql);
    }
  };
  const int instances = options.instances_per_template;
  if (instances > 0) {
    for (size_t ti = 0; ti < recipes.size(); ++ti) {
      Rng template_rng = rng.Fork(1000 + ti);
      for (int i = 0; i < instances; ++i) add_instance(recipes[ti], template_rng);
    }
  } else {
    // Paper shape: one instance per template plus a few repeated templates
    // (473 queries over 456 templates).
    for (size_t ti = 0; ti < recipes.size(); ++ti) {
      Rng template_rng = rng.Fork(1000 + ti);
      add_instance(recipes[ti], template_rng);
    }
    const size_t extras =
        recipes.empty() ? 0 : std::min<size_t>(17, recipes.size());
    for (size_t e = 0; e < extras; ++e) {
      const size_t ti = inst_rng.NextUint64(recipes.size());
      Rng template_rng = rng.Fork(5000 + e);
      add_instance(recipes[ti], template_rng);
    }
  }
  return out;
}

}  // namespace isum::workload
