#ifndef ISUM_WORKLOAD_GENERATOR_STAR_SCHEMA_H_
#define ISUM_WORKLOAD_GENERATOR_STAR_SCHEMA_H_

#include "workload/generator/recipe.h"

namespace isum::workload::gen {

/// Builds the 24-table TPC-DS-style star/snowflake schema (3 sales facts,
/// 3 returns facts, inventory, 17 dimensions), registers synthetic
/// statistics, and returns the join graph recipes are generated over.
///
/// `zipf_skew` > 0 switches fact attributes and foreign keys to zipfian
/// distributions — the "skewed data distribution" that differentiates DSB
/// from plain TPC-DS [21].
SchemaGraph BuildStarSchema(catalog::Catalog* catalog,
                            stats::StatsManager* stats, double scale,
                            double zipf_skew, Rng& rng);

}  // namespace isum::workload::gen

#endif  // ISUM_WORKLOAD_GENERATOR_STAR_SCHEMA_H_
