#ifndef ISUM_WORKLOAD_QUERY_STORE_H_
#define ISUM_WORKLOAD_QUERY_STORE_H_

#include <string>

#include "workload/workload.h"

namespace isum::workload {

/// Query-Store-style workload persistence (paper §2.2/§10: systems log query
/// texts with their optimizer-estimated costs, e.g. SQL Server Query Store,
/// and compression should consume those logs instead of making optimizer
/// calls). Format: one JSON object per line — {"sql": ..., "cost": ...,
/// "tag": ...} — stable, diffable, and greppable.

/// Serializes `workload` to JSONL.
std::string SaveQueryStore(const Workload& workload);

/// Loads a JSONL query store into `workload` (parsing and binding each SQL
/// against the workload's environment; recorded costs are used verbatim,
/// with no optimizer calls). Returns the number of queries loaded; fails on
/// malformed lines or unbindable SQL.
StatusOr<int> LoadQueryStore(const std::string& jsonl, Workload* workload);

/// JSON string escaping helpers (exposed for tests).
std::string JsonEscape(const std::string& raw);
StatusOr<std::string> JsonUnescape(const std::string& escaped);

}  // namespace isum::workload

#endif  // ISUM_WORKLOAD_QUERY_STORE_H_
