#include "workload/query_store.h"

#include "common/jsonl.h"
#include "common/string_util.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace isum::workload {

std::string JsonEscape(const std::string& raw) { return isum::JsonEscape(raw); }

StatusOr<std::string> JsonUnescape(const std::string& escaped) {
  return isum::JsonUnescape(escaped);
}

std::string SaveQueryStore(const Workload& workload) {
  std::string out;
  for (size_t i = 0; i < workload.size(); ++i) {
    const QueryInfo& q = workload.query(i);
    // The query-store JSONL format predates the obs emitters and is a
    // persistence format (load/save round-trip), not telemetry.
    // NOLINTNEXTLINE(isum-journal-schema)
    out += StrFormat("{\"sql\": \"%s\", \"cost\": %.6f, \"tag\": \"%s\"}\n",
                     isum::JsonEscape(q.sql).c_str(), q.base_cost,
                     isum::JsonEscape(q.tag).c_str());
  }
  return out;
}

StatusOr<int> LoadQueryStore(const std::string& jsonl, Workload* workload) {
  int loaded = 0;
  sql::Binder binder(workload->env().catalog, workload->env().stats);
  for (const std::string& line : Split(jsonl, '\n')) {
    if (Trim(line).empty()) continue;
    ISUM_ASSIGN_OR_RETURN(std::string sql, JsonExtractString(line, "sql"));
    ISUM_ASSIGN_OR_RETURN(double cost, JsonExtractNumber(line, "cost"));
    std::string tag;
    if (JsonHasKey(line, "tag")) {
      ISUM_ASSIGN_OR_RETURN(tag, JsonExtractString(line, "tag"));
    }
    ISUM_ASSIGN_OR_RETURN(sql::SelectStatement stmt, sql::ParseSelect(sql));
    ISUM_ASSIGN_OR_RETURN(sql::BoundQuery bound, binder.Bind(stmt, sql));
    workload->AddBoundQuery(std::move(bound), std::move(sql), cost,
                            std::move(tag));
    ++loaded;
  }
  return loaded;
}

}  // namespace isum::workload
