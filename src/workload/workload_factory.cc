#include "workload/workload_factory.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace isum::workload {

std::vector<int> SkewedInstanceCounts(size_t num_templates, int base,
                                      double skew) {
  std::vector<int> counts(num_templates, std::max(1, base));
  if (skew <= 0.0 || num_templates == 0) return counts;
  double norm = 0.0;
  for (size_t i = 0; i < num_templates; ++i) {
    norm += std::pow(static_cast<double>(i + 1), -skew);
  }
  const double total = static_cast<double>(std::max(1, base)) *
                       static_cast<double>(num_templates);
  for (size_t i = 0; i < num_templates; ++i) {
    const double share = std::pow(static_cast<double>(i + 1), -skew) / norm;
    counts[i] = std::max(1, static_cast<int>(std::llround(total * share)));
  }
  return counts;
}

GeneratedWorkload MakeWorkloadByName(const std::string& name,
                                     const GeneratorOptions& options) {
  const std::string lower = ToLower(name);
  if (lower == "tpch" || lower == "tpc-h") return MakeTpch(options);
  if (lower == "tpcds" || lower == "tpc-ds") return MakeTpcds(options);
  if (lower == "dsb") return MakeDsb(options);
  if (lower == "realm" || lower == "real-m") return MakeRealM(options);
  // Default to TPC-H for unknown names.
  return MakeTpch(options);
}

}  // namespace isum::workload
