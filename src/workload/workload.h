#ifndef ISUM_WORKLOAD_WORKLOAD_H_
#define ISUM_WORKLOAD_WORKLOAD_H_

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/status.h"
#include "engine/cost_model.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::workload {

/// One query instance of the input workload: SQL text, its bound form, and
/// its optimizer-estimated cost under the *current* physical design (the
/// paper assumes these costs arrive with the workload, §2.2).
struct QueryInfo {
  int32_t id = -1;
  std::string sql;
  sql::BoundQuery bound;
  double base_cost = 0.0;
  uint64_t template_hash = 0;
  /// Optional generator tag (e.g. DSB class "SPJ"/"Aggregate"/"Complex").
  std::string tag;
};

/// An input workload W = {q_1..q_n}. Query objects live at stable addresses
/// for the lifetime of the Workload (what-if caching keys on identity).
class Workload {
 public:
  /// The environment a workload is bound against. The Workload does not own
  /// these; they must outlive it.
  struct Environment {
    const catalog::Catalog* catalog = nullptr;
    const stats::StatsManager* stats = nullptr;
    const engine::CostModel* cost_model = nullptr;
  };

  explicit Workload(Environment env) : env_(env) {}
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;
  Workload(Workload&&) = default;
  Workload& operator=(Workload&&) = default;

  /// Parses, binds and costs `sql`, then appends it. `tag` is an optional
  /// generator label.
  Status AddQuery(const std::string& sql, std::string tag = "");

  /// Appends an already-bound query (cost computed if `base_cost` < 0).
  void AddBoundQuery(sql::BoundQuery bound, std::string sql, double base_cost,
                     std::string tag = "");

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }
  const QueryInfo& query(size_t i) const { return queries_[i]; }
  QueryInfo& mutable_query(size_t i) { return queries_[i]; }

  /// Sum of base costs, C(W).
  double TotalCost() const;

  /// Number of distinct query templates.
  size_t NumTemplates() const { return by_template_.size(); }

  /// Query indices grouped by template hash.
  const std::unordered_map<uint64_t, std::vector<size_t>>& templates() const {
    return by_template_;
  }

  const Environment& env() const { return env_; }

 private:
  Environment env_;
  std::deque<QueryInfo> queries_;  // deque: stable element addresses
  std::unordered_map<uint64_t, std::vector<size_t>> by_template_;
};

/// A compressed workload W_k: selected query indices into the source
/// workload with their weights (§7).
struct CompressedWorkload {
  struct Entry {
    size_t query_index = 0;
    double weight = 1.0;
    /// The marginal benefit greedy selection estimated when it picked this
    /// query (0 when the producer predates selection benefits). Carried so
    /// post-eval attribution (journal `attribution` events) can compare the
    /// estimate against the realized cost reduction.
    double selection_benefit = 0.0;
  };
  std::vector<Entry> entries;
  /// kComplete, or why selection stopped early — the entries are then the
  /// valid best-so-far prefix of the greedy run (docs/ROBUSTNESS.md).
  StopReason stop_reason = StopReason::kComplete;

  size_t size() const { return entries.size(); }

  /// Normalizes weights to sum to 1 (no-op when empty or all-zero).
  void NormalizeWeights();
};

}  // namespace isum::workload

#endif  // ISUM_WORKLOAD_WORKLOAD_H_
