#include "exec/table_data.h"

#include <algorithm>
#include <cmath>

namespace isum::exec {

namespace {

/// Heuristic: statistics whose domain endpoints are integers describe
/// integer-valued columns (keys, FKs, categories, dates); round samples so
/// equality predicates and joins can match exactly.
bool LooksIntegral(const stats::ColumnStats& s) {
  return std::floor(s.min_value) == s.min_value &&
         std::floor(s.max_value) == s.max_value &&
         s.max_value - s.min_value >= 1.0;
}

}  // namespace

TableData TableData::Materialize(const catalog::Catalog& catalog,
                                 const stats::StatsManager& stats,
                                 catalog::TableId table, Rng& rng,
                                 uint64_t max_rows) {
  TableData out;
  out.table_ = table;
  const catalog::Table& t = catalog.table(table);
  const uint64_t rows =
      max_rows > 0 ? std::min(max_rows, t.row_count()) : t.row_count();
  out.num_rows_ = rows;
  out.columns_.resize(t.columns().size());

  for (const catalog::Column& col : t.columns()) {
    const catalog::ColumnId id{table, col.ordinal};
    const stats::ColumnStats& s = stats.GetStats(id);
    std::vector<double>& data = out.columns_[static_cast<size_t>(col.ordinal)];
    data.reserve(rows);
    if (col.is_key) {
      // Dense unique keys in a deterministic shuffle.
      std::vector<size_t> perm = rng.SampleWithoutReplacement(rows, rows);
      for (uint64_t i = 0; i < rows; ++i) {
        data.push_back(static_cast<double>(perm[i] + 1));
      }
      continue;
    }
    const bool integral = LooksIntegral(s);
    for (uint64_t i = 0; i < rows; ++i) {
      double v = s.ValueAtQuantile(rng.NextDouble());
      if (integral) v = std::round(v);
      data.push_back(v);
    }
  }
  return out;
}

}  // namespace isum::exec
