#ifndef ISUM_EXEC_EXPR_EVAL_H_
#define ISUM_EXEC_EXPR_EVAL_H_

#include <functional>
#include <optional>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "sql/bound_query.h"

namespace isum::exec {

/// Interprets retained predicate expressions (BoundQuery's complex
/// predicates) against row values, so the execution substrate can evaluate
/// OR trees, column-vs-column comparisons and arithmetic exactly instead of
/// Bernoulli-sampling at estimated selectivity. Returns nullopt for
/// constructs with no row-level semantics here (LIKE on hashed strings,
/// IS NULL with no materialized nulls, unflattened subqueries) — callers
/// fall back to their selectivity-based approximation.
class ExpressionEvaluator {
 public:
  /// `value_of` yields the current row's value for a resolved column.
  using ValueFn = std::function<std::optional<double>(catalog::ColumnId)>;

  /// `alias_map` comes from the BoundQuery (lower-cased effective table
  /// name -> table id); `catalog` resolves column ordinals.
  ExpressionEvaluator(
      const catalog::Catalog* catalog,
      const std::unordered_map<std::string, catalog::TableId>* alias_map)
      : catalog_(catalog), alias_map_(alias_map) {}

  /// Numeric value of a scalar expression; nullopt if not evaluable.
  std::optional<double> Scalar(const sql::Expression& expr,
                               const ValueFn& value_of) const;

  /// Truth value of a boolean expression; nullopt if not evaluable.
  /// Emits one "exec/expr-eval" span per top-level call (recursion into
  /// sub-expressions does not nest spans); pair with --trace-every=N
  /// sampling in hot loops.
  std::optional<bool> Boolean(const sql::Expression& expr,
                              const ValueFn& value_of) const;

 private:
  std::optional<catalog::ColumnId> Resolve(
      const sql::ColumnRefExpression& ref) const;

  /// Recursive cores (no tracing, so spans do not nest per sub-expression).
  std::optional<double> ScalarImpl(const sql::Expression& expr,
                                   const ValueFn& value_of) const;
  std::optional<bool> BooleanImpl(const sql::Expression& expr,
                                  const ValueFn& value_of) const;

  const catalog::Catalog* catalog_;
  const std::unordered_map<std::string, catalog::TableId>* alias_map_;
};

}  // namespace isum::exec

#endif  // ISUM_EXEC_EXPR_EVAL_H_
