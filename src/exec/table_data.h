#ifndef ISUM_EXEC_TABLE_DATA_H_
#define ISUM_EXEC_TABLE_DATA_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "stats/stats_manager.h"

namespace isum::exec {

/// Materialized rows of one table, column-major. Values are in the same
/// encoded-double domain the binder and statistics use, so predicates bound
/// against statistics evaluate directly against the data.
///
/// Rows are drawn from the registered statistics via inverse-CDF sampling
/// (histogram quantiles), so the materialized data matches the statistics
/// the optimizer costed with *by construction* — the property the
/// calibration experiments rely on. Key columns are dense 1..n; columns
/// whose statistics look integral are rounded so equality joins match.
class TableData {
 public:
  /// Materializes `table` with all its columns. `max_rows` caps the row
  /// count (0 = the catalog's row count; keep this small — execution is for
  /// calibration, not benchmarks).
  static TableData Materialize(const catalog::Catalog& catalog,
                               const stats::StatsManager& stats,
                               catalog::TableId table, Rng& rng,
                               uint64_t max_rows = 0);

  catalog::TableId table() const { return table_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Value of `column` (ordinal) in `row`.
  double Value(int32_t column, size_t row) const {
    return columns_[static_cast<size_t>(column)][row];
  }
  const std::vector<double>& column(int32_t ordinal) const {
    return columns_[static_cast<size_t>(ordinal)];
  }

 private:
  catalog::TableId table_ = catalog::kInvalidTableId;
  size_t num_rows_ = 0;
  std::vector<std::vector<double>> columns_;  // [ordinal][row]
};

}  // namespace isum::exec

#endif  // ISUM_EXEC_TABLE_DATA_H_
