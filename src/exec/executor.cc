#include "exec/executor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/hash.h"
#include "exec/expr_eval.h"
#include "obs/trace.h"

namespace isum::exec {

void Database::MaterializeAll(uint64_t max_rows_per_table, uint64_t seed) {
  ISUM_TRACE_SPAN("exec/materialize");
  tables_.clear();
  indexes_.clear();
  Rng rng(seed);
  for (size_t t = 0; t < catalog_->num_tables(); ++t) {
    const catalog::TableId id = static_cast<catalog::TableId>(t);
    Rng table_rng = rng.Fork(static_cast<uint64_t>(t));
    tables_.emplace(id, TableData::Materialize(*catalog_, *stats_, id,
                                               table_rng, max_rows_per_table));
  }
}

const IndexData& Database::GetIndex(const engine::Index& index) {
  auto it = indexes_.find(index);
  if (it != indexes_.end()) return it->second;
  ISUM_TRACE_SPAN("exec/build-index");
  auto [ins, inserted] =
      indexes_.emplace(index, IndexData::Build(index, table(index.table())));
  return ins->second;
}

namespace {

/// Deterministic Bernoulli keep decision for non-evaluable predicates.
bool BernoulliKeep(uint64_t row_key, uint64_t salt, double probability) {
  const uint64_t h = HashCombine(salt ^ 0x9E3779B97F4A7C15ull, row_key);
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < probability;
}

/// True if the predicate can be evaluated against encoded values.
bool IsEvaluable(const sql::FilterPredicate& f) {
  switch (f.op) {
    case sql::PredicateOp::kEq:
    case sql::PredicateOp::kNotEq:
    case sql::PredicateOp::kLt:
    case sql::PredicateOp::kLe:
    case sql::PredicateOp::kGt:
    case sql::PredicateOp::kGe:
    case sql::PredicateOp::kIn:
    case sql::PredicateOp::kBetween:
      return !f.values.empty();
    default:
      return false;
  }
}

bool EvaluateFilter(const sql::FilterPredicate& f, double v, uint64_t row_key) {
  switch (f.op) {
    case sql::PredicateOp::kEq:
      return v == f.values[0];
    case sql::PredicateOp::kNotEq:
      return v != f.values[0];
    case sql::PredicateOp::kLt:
      return v < f.values[0];
    case sql::PredicateOp::kLe:
      return v <= f.values[0];
    case sql::PredicateOp::kGt:
      return v > f.values[0];
    case sql::PredicateOp::kGe:
      return v >= f.values[0];
    case sql::PredicateOp::kIn:
      return std::find(f.values.begin(), f.values.end(), v) != f.values.end();
    case sql::PredicateOp::kBetween:
      return v >= f.values[0] && v <= f.values[1];
    default:
      // LIKE / IS NULL / complex: Bernoulli at estimated selectivity.
      return BernoulliKeep(row_key,
                           static_cast<uint64_t>(f.column.column) * 7919u +
                               static_cast<uint64_t>(f.column.table),
                           f.selectivity);
  }
}

}  // namespace

ExecutionResult Executor::Execute(const sql::BoundQuery& query,
                                  const engine::PlanSummary& plan) {
  ISUM_TRACE_SPAN("exec/execute");
  ExecutionResult result;
  if (plan.tables.empty()) return result;

  // Position of each table in the tuple layout (plan order).
  std::unordered_map<catalog::TableId, size_t> slot;
  for (const engine::PlannedTable& pt : plan.tables) {
    slot.emplace(pt.table, slot.size());
  }

  // Per-table filters.
  auto filters_of = [&](catalog::TableId t) {
    std::vector<const sql::FilterPredicate*> out;
    for (const auto& f : query.filters) {
      if (f.column.table == t) out.push_back(&f);
    }
    return out;
  };

  // Value of a column for a (composed) tuple.
  using Tuple = std::vector<uint32_t>;
  auto tuple_value = [&](const Tuple& tuple, catalog::ColumnId c) {
    return database_->table(c.table).Value(c.column, tuple[slot.at(c.table)]);
  };
  auto tuple_key = [](const Tuple& tuple) {
    uint64_t h = 0x1234567ull;
    for (uint32_t r : tuple) h = HashCombine(h, r);
    return h;
  };

  // Exact evaluation of retained complex predicates (fallback: Bernoulli at
  // estimated selectivity inside EvaluateFilter).
  const ExpressionEvaluator evaluator(&database_->catalog(), &query.alias_map);
  auto eval_single_table = [&](const sql::FilterPredicate& f,
                               const TableData& data, uint32_t row,
                               bool* out_keep) {
    if (f.expr == nullptr) return false;
    auto verdict = evaluator.Boolean(
        *f.expr, [&](catalog::ColumnId c) -> std::optional<double> {
          if (c.table != data.table()) return std::nullopt;
          return data.Value(c.column, row);
        });
    if (!verdict.has_value()) return false;
    *out_keep = *verdict;
    return true;
  };

  // --- Access one base table per its planned access path. ---
  auto access_rows = [&](const engine::PlannedTable& pt) {
    ISUM_TRACE_SPAN("exec/scan");
    const TableData& data = database_->table(pt.table);
    const auto filters = filters_of(pt.table);
    std::vector<uint32_t> out;

    std::vector<uint32_t> candidates;
    bool seeked = false;
    if (pt.access.index != nullptr && !pt.access.index->key_columns().empty()) {
      // Try to seek on the leading key column.
      const catalog::ColumnId lead = pt.access.index->key_columns()[0];
      const sql::FilterPredicate* lead_filter = nullptr;
      for (const auto* f : filters) {
        if (f->column == lead && f->sargable && IsEvaluable(*f)) {
          lead_filter = f;
          break;
        }
      }
      if (lead_filter != nullptr) {
        const IndexData& index = database_->GetIndex(*pt.access.index);
        uint64_t touched = 0;
        switch (lead_filter->op) {
          case sql::PredicateOp::kEq:
            candidates = index.LookupEquals(lead_filter->values[0], &touched);
            seeked = true;
            break;
          case sql::PredicateOp::kIn: {
            for (double v : lead_filter->values) {
              auto part = index.LookupEquals(v, &touched);
              candidates.insert(candidates.end(), part.begin(), part.end());
            }
            // Duplicate IN values (legal SQL) must not duplicate rows.
            std::sort(candidates.begin(), candidates.end());
            candidates.erase(std::unique(candidates.begin(), candidates.end()),
                             candidates.end());
            seeked = true;
            break;
          }
          case sql::PredicateOp::kBetween:
            candidates = index.LookupRange(lead_filter->values[0],
                                           lead_filter->values[1], &touched);
            seeked = true;
            break;
          case sql::PredicateOp::kLt:
          case sql::PredicateOp::kLe:
            candidates = index.LookupRange(
                -std::numeric_limits<double>::infinity(),
                lead_filter->values[0], &touched);
            seeked = true;
            break;
          case sql::PredicateOp::kGt:
          case sql::PredicateOp::kGe:
            candidates = index.LookupRange(
                lead_filter->values[0],
                std::numeric_limits<double>::infinity(), &touched);
            seeked = true;
            break;
          default:
            break;
        }
        result.row_ops += touched;
      }
    }
    if (!seeked) {
      candidates.resize(data.num_rows());
      for (uint32_t i = 0; i < data.num_rows(); ++i) candidates[i] = i;
      result.row_ops += data.num_rows();
    }
    // Residual filters (retained expressions evaluated exactly).
    for (uint32_t row : candidates) {
      bool keep = true;
      for (const auto* f : filters) {
        bool exact = false;
        if (eval_single_table(*f, data, row, &exact)) {
          keep = exact;
        } else {
          keep = EvaluateFilter(*f, data.Value(f->column.column, row), row);
        }
        if (!keep) break;
      }
      if (keep) out.push_back(row);
    }
    return out;
  };

  // --- Driver. ---
  std::vector<Tuple> tuples;
  for (uint32_t row : access_rows(plan.tables[0])) {
    tuples.push_back(Tuple{row});
  }

  // Join semantics per table (semi/anti from flattened subqueries).
  std::unordered_map<catalog::TableId, sql::JoinSemantics> semantics;
  for (const auto& ref : query.tables) {
    semantics.emplace(ref.table, ref.semantics);
  }

  // --- Joins, in plan order. ---
  for (size_t step = 1; step < plan.tables.size(); ++step) {
    ISUM_TRACE_SPAN("exec/join");
    const engine::PlannedTable& pt = plan.tables[step];
    const TableData& data = database_->table(pt.table);
    const sql::JoinSemantics sem = semantics.contains(pt.table)
                                       ? semantics.at(pt.table)
                                       : sql::JoinSemantics::kInner;

    // Join predicates linking pt.table to already-placed tables.
    struct Link {
      catalog::ColumnId inner;  // on pt.table
      catalog::ColumnId outer;  // on a placed table
    };
    std::vector<Link> links;
    for (const auto& jp : query.joins) {
      const bool left_inner = jp.left.table == pt.table;
      const bool right_inner = jp.right.table == pt.table;
      if (left_inner == right_inner) continue;  // neither or both
      const catalog::ColumnId inner = left_inner ? jp.left : jp.right;
      const catalog::ColumnId outer = left_inner ? jp.right : jp.left;
      if (slot.at(outer.table) < step) links.push_back({inner, outer});
    }

    std::vector<Tuple> next;
    auto emit = [&](const Tuple& base, uint32_t inner_row) {
      Tuple t = base;
      t.push_back(inner_row);
      next.push_back(std::move(t));
      ++result.row_ops;
    };

    if (pt.join_method == engine::JoinMethod::kIndexNestedLoop &&
        pt.inl_index != nullptr && !links.empty()) {
      // Probe the index once per outer tuple on the leading-key link.
      const catalog::ColumnId lead = pt.inl_index->key_columns()[0];
      const Link* lead_link = nullptr;
      for (const Link& link : links) {
        if (link.inner == lead) {
          lead_link = &link;
          break;
        }
      }
      const IndexData& index = database_->GetIndex(*pt.inl_index);
      const auto filters = filters_of(pt.table);
      for (const Tuple& tuple : tuples) {
        if (next.size() > tuple_cap_) {
          result.truncated = true;
          break;
        }
        uint64_t touched = 0;
        const double key = tuple_value(tuple, lead_link != nullptr
                                                  ? lead_link->outer
                                                  : links[0].outer);
        const std::vector<uint32_t> matches = index.LookupEquals(key, &touched);
        result.row_ops += touched;
        bool matched = false;
        for (uint32_t row : matches) {
          bool keep = true;
          for (const auto* f : filters) {
            if (!EvaluateFilter(*f, data.Value(f->column.column, row), row)) {
              keep = false;
              break;
            }
          }
          // Residual join predicates beyond the probed one.
          for (const Link& link : links) {
            if (!keep) break;
            if (lead_link != nullptr && link.inner == lead_link->inner &&
                link.outer == lead_link->outer) {
              continue;
            }
            keep = data.Value(link.inner.column, row) ==
                   tuple_value(tuple, link.outer);
          }
          if (keep) {
            matched = true;
            if (sem != sql::JoinSemantics::kAnti) emit(tuple, row);
            if (sem != sql::JoinSemantics::kInner) break;  // one match enough
          }
        }
        if (sem == sql::JoinSemantics::kAnti && !matched &&
            data.num_rows() > 0) {
          emit(tuple, 0);  // anti: keep outer tuples with no match
        }
      }
    } else if (!links.empty()) {
      // Hash join: build on the (filtered) inner side, probe with tuples.
      const std::vector<uint32_t> inner_rows = access_rows(pt);
      std::unordered_multimap<double, uint32_t> hash;
      hash.reserve(inner_rows.size());
      const catalog::ColumnId build_key = links[0].inner;
      for (uint32_t row : inner_rows) {
        hash.emplace(data.Value(build_key.column, row), row);
        ++result.row_ops;
      }
      for (const Tuple& tuple : tuples) {
        if (next.size() > tuple_cap_) {
          result.truncated = true;
          break;
        }
        ++result.row_ops;  // probe
        const double key = tuple_value(tuple, links[0].outer);
        auto [begin, end] = hash.equal_range(key);
        bool matched = false;
        for (auto it = begin; it != end; ++it) {
          bool keep = true;
          for (size_t l = 1; l < links.size(); ++l) {
            if (data.Value(links[l].inner.column, it->second) !=
                tuple_value(tuple, links[l].outer)) {
              keep = false;
              break;
            }
          }
          if (keep) {
            matched = true;
            if (sem != sql::JoinSemantics::kAnti) emit(tuple, it->second);
            if (sem != sql::JoinSemantics::kInner) break;
          }
        }
        if (sem == sql::JoinSemantics::kAnti && !matched &&
            data.num_rows() > 0) {
          emit(tuple, 0);
        }
      }
    } else {
      // Cross join (semi: any inner row qualifies; anti: none may exist).
      const std::vector<uint32_t> inner_rows = access_rows(pt);
      for (const Tuple& tuple : tuples) {
        if (next.size() > tuple_cap_) {
          result.truncated = true;
          break;
        }
        if (sem == sql::JoinSemantics::kSemi) {
          if (!inner_rows.empty()) emit(tuple, inner_rows.front());
        } else if (sem == sql::JoinSemantics::kAnti) {
          if (inner_rows.empty() && data.num_rows() > 0) emit(tuple, 0);
        } else {
          for (uint32_t row : inner_rows) emit(tuple, row);
        }
      }
    }
    tuples = std::move(next);
  }

  // --- Residual multi-table predicates: evaluate retained expressions
  // exactly; fall back to Bernoulli at estimated selectivity. ---
  for (size_t cp = 0; cp < query.complex_predicates.size(); ++cp) {
    const auto& predicate = query.complex_predicates[cp];
    std::vector<Tuple> kept;
    kept.reserve(tuples.size());
    for (Tuple& tuple : tuples) {
      ++result.row_ops;
      bool keep;
      std::optional<bool> exact;
      if (predicate.expr != nullptr) {
        exact = evaluator.Boolean(
            *predicate.expr, [&](catalog::ColumnId c) -> std::optional<double> {
              auto it = slot.find(c.table);
              if (it == slot.end()) return std::nullopt;
              return database_->table(c.table).Value(c.column,
                                                     tuple[it->second]);
            });
      }
      if (exact.has_value()) {
        keep = *exact;
      } else {
        keep = BernoulliKeep(tuple_key(tuple), 0xC0FFEEull + cp,
                             predicate.selectivity);
      }
      if (keep) kept.push_back(std::move(tuple));
    }
    tuples = std::move(kept);
  }

  double out_rows = static_cast<double>(tuples.size());

  // --- Aggregation / DISTINCT. ---
  const bool has_agg =
      !query.aggregates.empty() || !query.group_by_columns.empty();
  const std::vector<catalog::ColumnId>& group_cols =
      has_agg ? query.group_by_columns
              : (query.distinct ? query.output_columns
                                : std::vector<catalog::ColumnId>{});
  if (has_agg || query.distinct) {
    ISUM_TRACE_SPAN("exec/aggregate");
    std::unordered_map<uint64_t, uint64_t> groups;
    for (const Tuple& tuple : tuples) {
      ++result.row_ops;
      uint64_t h = 0xABCDEFull;
      for (catalog::ColumnId c : group_cols) {
        // Group keys only come from placed tables.
        if (!slot.contains(c.table)) continue;
        const double v = tuple_value(tuple, c);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        h = HashCombine(h, bits);
      }
      ++groups[h];
    }
    out_rows = group_cols.empty() ? 1.0 : static_cast<double>(groups.size());
  }

  // --- Sort. ---
  if (plan.sort_needed && out_rows > 1.0) {
    result.row_ops += static_cast<uint64_t>(
        out_rows * std::ceil(std::log2(std::max(2.0, out_rows))));
  }

  if (query.limit.has_value()) {
    out_rows = std::min(out_rows, static_cast<double>(
                                      std::max<int64_t>(1, *query.limit)));
  }
  result.output_rows = out_rows;
  return result;
}

}  // namespace isum::exec
