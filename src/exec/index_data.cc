#include "exec/index_data.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace isum::exec {

IndexData IndexData::Build(const engine::Index& index, const TableData& data) {
  IndexData out;
  out.index_ = index;
  const size_t n = data.num_rows();
  out.order_.resize(n);
  std::iota(out.order_.begin(), out.order_.end(), 0u);

  const auto& keys = index.key_columns();
  std::sort(out.order_.begin(), out.order_.end(),
            [&](uint32_t a, uint32_t b) {
              for (catalog::ColumnId key : keys) {
                const double va = data.Value(key.column, a);
                const double vb = data.Value(key.column, b);
                if (va != vb) return va < vb;
              }
              return a < b;
            });
  out.leading_key_.reserve(n);
  const int32_t lead = keys.empty() ? 0 : keys[0].column;
  for (uint32_t row : out.order_) {
    out.leading_key_.push_back(data.Value(lead, row));
  }
  return out;
}

std::vector<uint32_t> IndexData::LookupRange(double lo, double hi,
                                             uint64_t* touched) const {
  auto begin = std::lower_bound(leading_key_.begin(), leading_key_.end(), lo);
  auto end = std::upper_bound(leading_key_.begin(), leading_key_.end(), hi);
  const size_t from = static_cast<size_t>(begin - leading_key_.begin());
  const size_t to = static_cast<size_t>(end - leading_key_.begin());
  if (touched != nullptr) {
    // Binary-search descent plus the scanned range.
    *touched += static_cast<uint64_t>(
        std::ceil(std::log2(std::max<size_t>(2, leading_key_.size()))));
    *touched += to - from;
  }
  return std::vector<uint32_t>(order_.begin() + static_cast<ptrdiff_t>(from),
                               order_.begin() + static_cast<ptrdiff_t>(to));
}

}  // namespace isum::exec
