#ifndef ISUM_EXEC_INDEX_DATA_H_
#define ISUM_EXEC_INDEX_DATA_H_

#include <cstdint>
#include <vector>

#include "engine/index.h"
#include "exec/table_data.h"

namespace isum::exec {

/// A materialized secondary index: row ids of the base table ordered by the
/// index's key columns. Supports range lookups on the leading key column
/// (matching the cost model's seek semantics) with residual key predicates
/// verified per touched entry.
class IndexData {
 public:
  /// Builds the sort order for `index` over `data`.
  static IndexData Build(const engine::Index& index, const TableData& data);

  const engine::Index& index() const { return index_; }
  size_t size() const { return order_.size(); }

  /// Row ids whose leading key value lies in [lo, hi] (inclusive).
  /// `touched` (optional) is incremented by the number of entries examined
  /// (binary-search hops + matched range length).
  std::vector<uint32_t> LookupRange(double lo, double hi,
                                    uint64_t* touched = nullptr) const;

  /// Row ids with leading key == v.
  std::vector<uint32_t> LookupEquals(double v,
                                     uint64_t* touched = nullptr) const {
    return LookupRange(v, v, touched);
  }

  /// Row ids in index order (for ordered scans).
  const std::vector<uint32_t>& ordered_rows() const { return order_; }

 private:
  engine::Index index_;
  std::vector<double> leading_key_;   // sorted leading-key values
  std::vector<uint32_t> order_;       // row ids in key order
};

}  // namespace isum::exec

#endif  // ISUM_EXEC_INDEX_DATA_H_
