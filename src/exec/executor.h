#ifndef ISUM_EXEC_EXECUTOR_H_
#define ISUM_EXEC_EXECUTOR_H_

#include <memory>
#include <unordered_map>

#include "engine/optimizer.h"
#include "exec/index_data.h"

namespace isum::exec {

/// A materialized database: row data for every table plus lazily built
/// index structures. Used to *calibrate* the cost model (estimated cost vs.
/// executed work), never for benchmarking the algorithms themselves.
class Database {
 public:
  Database(const catalog::Catalog* catalog, const stats::StatsManager* stats)
      : catalog_(catalog), stats_(stats) {}

  /// Materializes every table, capping each at `max_rows_per_table` rows
  /// (calibration runs small). Deterministic in `seed`.
  void MaterializeAll(uint64_t max_rows_per_table, uint64_t seed);

  const TableData& table(catalog::TableId id) const {
    return tables_.at(id);
  }

  /// Returns (building and caching on first use) the index structure.
  const IndexData& GetIndex(const engine::Index& index);

  const catalog::Catalog& catalog() const { return *catalog_; }

 private:
  const catalog::Catalog* catalog_;
  const stats::StatsManager* stats_;
  std::unordered_map<catalog::TableId, TableData> tables_;
  std::unordered_map<engine::Index, IndexData> indexes_;
};

/// Outcome of executing one query plan.
struct ExecutionResult {
  double output_rows = 0.0;
  /// Total rows touched across all operators (scans, probes, fetches,
  /// aggregation input, sort comparisons) — the "actual work" proxy the
  /// calibration experiments correlate with optimizer-estimated cost.
  uint64_t row_ops = 0;
  /// True if an intermediate result hit the tuple cap and was truncated
  /// (row_ops is then a lower bound).
  bool truncated = false;
};

/// Executes a bound query following the structure of an optimizer plan
/// (access paths, join order and methods, aggregation, sort), counting rows
/// touched. Non-evaluable predicates (LIKE, IS NULL, complex residuals) are
/// applied as deterministic Bernoulli filters at their estimated
/// selectivity — fine for work accounting, documented in DESIGN.md.
class Executor {
 public:
  explicit Executor(Database* database, uint64_t tuple_cap = 2'000'000)
      : database_(database), tuple_cap_(tuple_cap) {}

  ExecutionResult Execute(const sql::BoundQuery& query,
                          const engine::PlanSummary& plan);

 private:
  Database* database_;
  uint64_t tuple_cap_;
};

}  // namespace isum::exec

#endif  // ISUM_EXEC_EXECUTOR_H_
