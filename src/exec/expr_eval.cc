#include "exec/expr_eval.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"
#include "sql/binder.h"

namespace isum::exec {

std::optional<catalog::ColumnId> ExpressionEvaluator::Resolve(
    const sql::ColumnRefExpression& ref) const {
  if (!ref.table().empty()) {
    auto it = alias_map_->find(ToLower(ref.table()));
    if (it == alias_map_->end()) return std::nullopt;
    const int32_t ord = catalog_->table(it->second).FindColumn(ref.column());
    if (ord < 0) return std::nullopt;
    return catalog::ColumnId{it->second, ord};
  }
  std::optional<catalog::ColumnId> found;
  for (const auto& [name, table] : *alias_map_) {
    const int32_t ord = catalog_->table(table).FindColumn(ref.column());
    if (ord >= 0) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = catalog::ColumnId{table, ord};
    }
  }
  return found;
}

std::optional<double> ExpressionEvaluator::ScalarImpl(
    const sql::Expression& expr, const ValueFn& value_of) const {
  switch (expr.kind()) {
    case sql::ExpressionKind::kLiteral:
      return sql::EncodeLiteral(
          static_cast<const sql::LiteralExpression&>(expr));
    case sql::ExpressionKind::kColumnRef: {
      auto id = Resolve(static_cast<const sql::ColumnRefExpression&>(expr));
      if (!id.has_value()) return std::nullopt;
      return value_of(*id);
    }
    case sql::ExpressionKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpression&>(expr);
      auto l = ScalarImpl(bin.lhs(), value_of);
      auto r = ScalarImpl(bin.rhs(), value_of);
      if (!l || !r) return std::nullopt;
      switch (bin.op()) {
        case sql::BinaryOp::kPlus:
          return *l + *r;
        case sql::BinaryOp::kMinus:
          return *l - *r;
        case sql::BinaryOp::kMul:
          return *l * *r;
        case sql::BinaryOp::kDiv:
          return *r == 0.0 ? std::nullopt : std::optional<double>(*l / *r);
        default:
          return std::nullopt;
      }
    }
    default:
      return std::nullopt;
  }
}

std::optional<bool> ExpressionEvaluator::BooleanImpl(
    const sql::Expression& expr, const ValueFn& value_of) const {
  switch (expr.kind()) {
    case sql::ExpressionKind::kBinary: {
      const auto& bin = static_cast<const sql::BinaryExpression&>(expr);
      if (bin.op() == sql::BinaryOp::kAnd) {
        auto l = BooleanImpl(bin.lhs(), value_of);
        auto r = BooleanImpl(bin.rhs(), value_of);
        if (!l || !r) return std::nullopt;
        return *l && *r;
      }
      if (bin.op() == sql::BinaryOp::kOr) {
        auto l = BooleanImpl(bin.lhs(), value_of);
        auto r = BooleanImpl(bin.rhs(), value_of);
        if (!l || !r) return std::nullopt;
        return *l || *r;
      }
      if (!sql::IsComparison(bin.op())) return std::nullopt;
      auto l = ScalarImpl(bin.lhs(), value_of);
      auto r = ScalarImpl(bin.rhs(), value_of);
      if (!l || !r) return std::nullopt;
      switch (bin.op()) {
        case sql::BinaryOp::kEq:
          return *l == *r;
        case sql::BinaryOp::kNotEq:
          return *l != *r;
        case sql::BinaryOp::kLt:
          return *l < *r;
        case sql::BinaryOp::kLe:
          return *l <= *r;
        case sql::BinaryOp::kGt:
          return *l > *r;
        case sql::BinaryOp::kGe:
          return *l >= *r;
        default:
          return std::nullopt;
      }
    }
    case sql::ExpressionKind::kUnaryNot: {
      auto inner = BooleanImpl(
          static_cast<const sql::UnaryNotExpression&>(expr).child(), value_of);
      if (!inner) return std::nullopt;
      return !*inner;
    }
    case sql::ExpressionKind::kIn: {
      const auto& in = static_cast<const sql::InExpression&>(expr);
      auto operand = ScalarImpl(in.operand(), value_of);
      if (!operand) return std::nullopt;
      bool found = false;
      for (const auto& v : in.values()) {
        auto value = ScalarImpl(*v, value_of);
        if (!value) return std::nullopt;
        found = found || (*operand == *value);
      }
      return in.negated() ? !found : found;
    }
    case sql::ExpressionKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpression&>(expr);
      auto operand = ScalarImpl(bt.operand(), value_of);
      auto lo = ScalarImpl(bt.lo(), value_of);
      auto hi = ScalarImpl(bt.hi(), value_of);
      if (!operand || !lo || !hi) return std::nullopt;
      const bool in_range = *operand >= *lo && *operand <= *hi;
      return bt.negated() ? !in_range : in_range;
    }
    // LIKE patterns and IS NULL have no row-level semantics over encoded
    // doubles; unflattened subqueries are opaque.
    case sql::ExpressionKind::kLike:
    case sql::ExpressionKind::kIsNull:
    case sql::ExpressionKind::kExists:
    case sql::ExpressionKind::kInSubquery:
    default:
      return std::nullopt;
  }
}

std::optional<double> ExpressionEvaluator::Scalar(
    const sql::Expression& expr, const ValueFn& value_of) const {
  return ScalarImpl(expr, value_of);
}

std::optional<bool> ExpressionEvaluator::Boolean(
    const sql::Expression& expr, const ValueFn& value_of) const {
  ISUM_TRACE_SPAN("exec/expr-eval");
  return BooleanImpl(expr, value_of);
}

}  // namespace isum::exec
