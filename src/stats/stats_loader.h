#ifndef ISUM_STATS_STATS_LOADER_H_
#define ISUM_STATS_STATS_LOADER_H_

#include <string>

#include "stats/data_generator.h"
#include "stats/stats_manager.h"

namespace isum::stats {

/// Loads per-column statistics specs from JSONL into a StatsManager,
/// synthesizing histograms via DataGenerator — the CLI's path to realistic
/// selectivities without access to the data. One object per line:
///
///   {"table": "orders", "column": "order_date", "distinct": 2406,
///    "min": 8035, "max": 10591,
///    "distribution": "uniform",        // uniform|zipf|gaussian (default
///                                      // uniform)
///    "skew": 1.1,                      // zipf only, default 1.1
///    "nulls": 0.0}                     // null fraction, default 0
///
/// Values are in the binder's encoded-double domain (dates =
/// days-since-epoch). Returns the number of columns loaded; unknown
/// tables/columns or malformed lines fail the whole load.
StatusOr<int> LoadColumnStats(const std::string& jsonl,
                              const catalog::Catalog& catalog,
                              StatsManager* stats, uint64_t seed = 42);

}  // namespace isum::stats

#endif  // ISUM_STATS_STATS_LOADER_H_
