#ifndef ISUM_STATS_HISTOGRAM_H_
#define ISUM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace isum::stats {

/// One equi-depth bucket: values in (lower, upper] with `rows` rows spread
/// over `distinct` distinct values.
struct HistogramBucket {
  double lower = 0.0;
  double upper = 0.0;
  double rows = 0.0;
  double distinct = 1.0;
};

/// Equi-depth histogram over a numeric column domain, built from a sample.
/// Mirrors what DBMSs maintain (SQL Server `STATISTICS`, PostgreSQL
/// pg_statistic) closely enough for selectivity and density estimation, which
/// is all the paper's stats-based variant (ISUM-S) consumes.
class Histogram {
 public:
  Histogram() = default;

  /// Builds `num_buckets` equi-depth buckets from `sample` (unsorted ok),
  /// scaled so bucket row counts sum to `total_rows`.
  static Histogram FromSample(std::vector<double> sample, int num_buckets,
                              double total_rows);

  /// Fraction of rows with value == v (uses per-bucket distinct counts).
  double SelectivityEquals(double v) const;

  /// Fraction of rows with value in the given (optional) bounds;
  /// std::nullopt means unbounded on that side. Bounds are inclusive.
  double SelectivityRange(std::optional<double> lo,
                          std::optional<double> hi) const;

  /// Smallest value v such that ~fraction q of rows are <= v. Used by the
  /// workload generators to pick literals that hit a target selectivity.
  double ValueAtQuantile(double q) const;

  bool empty() const { return buckets_.empty(); }
  double total_rows() const { return total_rows_; }
  double min_value() const;
  double max_value() const;
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }

 private:
  double RowsBelowInclusive(double v) const;

  std::vector<HistogramBucket> buckets_;
  double total_rows_ = 0.0;
};

}  // namespace isum::stats

#endif  // ISUM_STATS_HISTOGRAM_H_
