#include "stats/stats_manager.h"

#include <algorithm>

namespace isum::stats {

const ColumnStats& StatsManager::GetStats(catalog::ColumnId id) const {
  auto it = stats_.find(id);
  if (it != stats_.end()) return it->second;

  auto dit = defaults_.find(id);
  if (dit != defaults_.end()) return dit->second;

  // Synthesize conservative defaults from catalog metadata.
  ColumnStats def;
  const catalog::Table& t = catalog_->table(id.table);
  def.row_count = static_cast<double>(t.row_count());
  const catalog::Column& col = t.column(id.column);
  def.distinct_count = col.is_key
                           ? std::max(1.0, def.row_count)
                           : std::max(1.0, def.row_count / 10.0);
  def.min_value = 0.0;
  def.max_value = std::max(1.0, def.distinct_count);
  auto [ins, _] = defaults_.emplace(id, std::move(def));
  return ins->second;
}

}  // namespace isum::stats
