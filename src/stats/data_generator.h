#ifndef ISUM_STATS_DATA_GENERATOR_H_
#define ISUM_STATS_DATA_GENERATOR_H_

#include <cstdint>

#include "common/rng.h"
#include "stats/column_stats.h"

namespace isum::stats {

/// Shape of a synthetic column's value distribution.
enum class Distribution {
  kUniform,
  kZipf,      ///< heavy head skew (DSB / Real-M style data)
  kGaussian,  ///< bell around the domain midpoint
  kKey,       ///< dense unique integers 1..row_count
};

/// Declarative description of one column's synthetic data.
struct ColumnDataSpec {
  Distribution distribution = Distribution::kUniform;
  /// Number of distinct values; ignored for kKey (== row_count).
  uint64_t distinct = 1000;
  /// Domain lower/upper bounds for generated values.
  double domain_min = 0.0;
  double domain_max = 1'000'000.0;
  /// Zipf exponent when distribution == kZipf.
  double zipf_skew = 1.1;
  double null_fraction = 0.0;
};

/// Builds ColumnStats by *sampling* the described distribution and feeding
/// the sample through the same histogram-construction path a DBMS would use.
/// This keeps the statistics pipeline honest: selectivity/density numbers are
/// estimated from data, not postulated.
class DataGenerator {
 public:
  /// `sample_size` values are drawn; histograms get `num_buckets` buckets.
  explicit DataGenerator(int sample_size = 4096, int num_buckets = 64)
      : sample_size_(sample_size), num_buckets_(num_buckets) {}

  /// Synthesizes stats for a column of `row_count` rows per `spec`, drawing
  /// randomness from `rng`.
  ColumnStats Generate(const ColumnDataSpec& spec, uint64_t row_count,
                       Rng& rng) const;

 private:
  int sample_size_;
  int num_buckets_;
};

}  // namespace isum::stats

#endif  // ISUM_STATS_DATA_GENERATOR_H_
