#include "stats/stats_loader.h"

#include "common/jsonl.h"
#include "common/string_util.h"

namespace isum::stats {

StatusOr<int> LoadColumnStats(const std::string& jsonl,
                              const catalog::Catalog& catalog,
                              StatsManager* stats, uint64_t seed) {
  DataGenerator generator;
  Rng rng(seed);
  int loaded = 0;
  for (const std::string& line : Split(jsonl, '\n')) {
    if (Trim(line).empty()) continue;
    ISUM_ASSIGN_OR_RETURN(std::string table, JsonExtractString(line, "table"));
    ISUM_ASSIGN_OR_RETURN(std::string column,
                          JsonExtractString(line, "column"));
    const catalog::ColumnId id = catalog.ResolveColumn(table, column);
    if (!id.valid()) {
      return Status::NotFound("unknown column '" + table + "." + column + "'");
    }

    ColumnDataSpec spec;
    ISUM_ASSIGN_OR_RETURN(double distinct, JsonExtractNumber(line, "distinct"));
    spec.distinct = static_cast<uint64_t>(std::max(1.0, distinct));
    ISUM_ASSIGN_OR_RETURN(spec.domain_min, JsonExtractNumber(line, "min"));
    ISUM_ASSIGN_OR_RETURN(spec.domain_max, JsonExtractNumber(line, "max"));
    if (spec.domain_max < spec.domain_min) {
      return Status::InvalidArgument("min > max for '" + table + "." + column +
                                     "'");
    }
    if (JsonHasKey(line, "distribution")) {
      ISUM_ASSIGN_OR_RETURN(std::string dist,
                            JsonExtractString(line, "distribution"));
      const std::string lower = ToLower(dist);
      if (lower == "uniform") {
        spec.distribution = Distribution::kUniform;
      } else if (lower == "zipf") {
        spec.distribution = Distribution::kZipf;
      } else if (lower == "gaussian" || lower == "normal") {
        spec.distribution = Distribution::kGaussian;
      } else {
        return Status::InvalidArgument("unknown distribution '" + dist + "'");
      }
    }
    if (JsonHasKey(line, "skew")) {
      ISUM_ASSIGN_OR_RETURN(spec.zipf_skew, JsonExtractNumber(line, "skew"));
    }
    if (JsonHasKey(line, "nulls")) {
      ISUM_ASSIGN_OR_RETURN(spec.null_fraction,
                            JsonExtractNumber(line, "nulls"));
    }

    Rng column_rng = rng.Fork(static_cast<uint64_t>(loaded) + 1);
    stats->SetStats(id, generator.Generate(
                            spec, catalog.table(id.table).row_count(),
                            column_rng));
    ++loaded;
  }
  return loaded;
}

}  // namespace isum::stats
