#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>

namespace isum::stats {

double ColumnStats::Density() const {
  if (distinct_count <= 1.0) return 1.0;
  return std::clamp(1.0 / distinct_count, 1e-12, 1.0);
}

double ColumnStats::SelectivityEquals(double v) const {
  if (!histogram.empty()) {
    const double sel = histogram.SelectivityEquals(v);
    if (sel > 0.0) return sel;
  }
  return Density();
}

double ColumnStats::SelectivityRange(std::optional<double> lo,
                                     std::optional<double> hi) const {
  if (!histogram.empty()) return histogram.SelectivityRange(lo, hi);
  // Uniform-domain fallback.
  const double span = max_value - min_value;
  if (span <= 0.0) return 1.0;
  const double l = lo.value_or(min_value);
  const double h = hi.value_or(max_value);
  return std::clamp((h - l) / span, 0.0, 1.0);
}

double ColumnStats::ValueAtQuantile(double q) const {
  if (!histogram.empty()) return histogram.ValueAtQuantile(q);
  return min_value + (max_value - min_value) * std::clamp(q, 0.0, 1.0);
}

}  // namespace isum::stats
