#include "stats/data_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace isum::stats {

ColumnStats DataGenerator::Generate(const ColumnDataSpec& spec,
                                    uint64_t row_count, Rng& rng) const {
  ColumnStats out;
  out.row_count = static_cast<double>(row_count);
  out.null_fraction = spec.null_fraction;

  if (spec.distribution == Distribution::kKey) {
    // Dense unique keys: exact analytic stats, no sampling needed.
    out.distinct_count = static_cast<double>(std::max<uint64_t>(1, row_count));
    out.min_value = 1.0;
    out.max_value = static_cast<double>(row_count);
    std::vector<double> sample;
    const int n = std::min<int>(sample_size_, static_cast<int>(row_count));
    sample.reserve(n);
    for (int i = 0; i < n; ++i) {
      sample.push_back(1.0 + (static_cast<double>(row_count - 1) * i) /
                                 std::max(1, n - 1));
    }
    out.histogram = Histogram::FromSample(std::move(sample), num_buckets_,
                                          out.row_count);
    return out;
  }

  const uint64_t distinct = std::max<uint64_t>(1, std::min(spec.distinct, row_count));
  const double span = spec.domain_max - spec.domain_min;

  // Map distinct-value rank r in [1, distinct] to a domain point.
  auto rank_to_value = [&](uint64_t r) {
    const double frac = distinct > 1
                            ? static_cast<double>(r - 1) / static_cast<double>(distinct - 1)
                            : 0.0;
    return spec.domain_min + span * frac;
  };

  std::vector<double> sample;
  const int n = std::max(16, sample_size_);
  sample.reserve(n);
  switch (spec.distribution) {
    case Distribution::kUniform: {
      for (int i = 0; i < n; ++i) {
        sample.push_back(rank_to_value(1 + rng.NextUint64(distinct)));
      }
      break;
    }
    case Distribution::kZipf: {
      ZipfSampler zipf(distinct, spec.zipf_skew);
      // Shuffle ranks into domain positions deterministically so the hot
      // values are not always the domain minimum.
      for (int i = 0; i < n; ++i) {
        uint64_t rank = zipf.Sample(rng);
        uint64_t scrambled = (rank * 0x9E3779B97F4A7C15ull) % distinct;
        sample.push_back(rank_to_value(1 + scrambled));
      }
      break;
    }
    case Distribution::kGaussian: {
      const double mid = spec.domain_min + span / 2.0;
      const double sd = span / 6.0;
      for (int i = 0; i < n; ++i) {
        double v = rng.NextGaussian(mid, sd);
        v = std::clamp(v, spec.domain_min, spec.domain_max);
        // Snap to the distinct-value grid.
        if (distinct > 1 && span > 0.0) {
          const double step = span / static_cast<double>(distinct - 1);
          v = spec.domain_min + std::round((v - spec.domain_min) / step) * step;
        }
        sample.push_back(v);
      }
      break;
    }
    case Distribution::kKey:
      break;  // handled above
  }

  // Distinct-count estimate: exact count of distinct sample values scaled by
  // a first-order Good–Turing style correction, capped by the spec.
  std::vector<double> uniq = sample;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  const double d_sample = static_cast<double>(uniq.size());
  double d_est = d_sample;
  if (d_sample > 0.9 * n) {
    // Sample saturated: likely many more distincts than the sample shows.
    d_est = std::min<double>(static_cast<double>(distinct),
                             d_sample * (out.row_count / n));
  }
  out.distinct_count = std::max(1.0, std::min<double>(d_est, static_cast<double>(distinct)));
  out.min_value = uniq.empty() ? spec.domain_min : uniq.front();
  out.max_value = uniq.empty() ? spec.domain_max : uniq.back();
  out.histogram =
      Histogram::FromSample(std::move(sample), num_buckets_, out.row_count);
  return out;
}

}  // namespace isum::stats
