#ifndef ISUM_STATS_COLUMN_STATS_H_
#define ISUM_STATS_COLUMN_STATS_H_

#include <cstdint>

#include "stats/histogram.h"

namespace isum::stats {

/// Per-column statistics: distinct count, null fraction, domain bounds and an
/// equi-depth histogram. `density` (1 / distinct) matches the SQL Server
/// notion referenced by the paper's stats-based column weighting (§4.2).
struct ColumnStats {
  double row_count = 0.0;
  double distinct_count = 1.0;
  double null_fraction = 0.0;
  double min_value = 0.0;
  double max_value = 0.0;
  Histogram histogram;

  /// 1 / distinct-count, clamped into (0, 1].
  double Density() const;

  /// Fraction of rows equal to `v` (histogram if present, else 1/distinct).
  double SelectivityEquals(double v) const;

  /// Fraction of rows in [lo, hi] (either side optional).
  double SelectivityRange(std::optional<double> lo,
                          std::optional<double> hi) const;

  /// Value at quantile q of the distribution (for literal synthesis).
  double ValueAtQuantile(double q) const;
};

}  // namespace isum::stats

#endif  // ISUM_STATS_COLUMN_STATS_H_
