#ifndef ISUM_STATS_STATS_MANAGER_H_
#define ISUM_STATS_STATS_MANAGER_H_

#include <unordered_map>

#include "catalog/catalog.h"
#include "stats/column_stats.h"

namespace isum::stats {

/// Registry of per-column statistics for a catalog, exposing the selectivity
/// and density estimation API consumed by the engine's cost model and by
/// ISUM-S (the stats-based weighting variant in §4.2 of the paper).
class StatsManager {
 public:
  explicit StatsManager(const catalog::Catalog* cat) : catalog_(cat) {}

  /// Registers (or replaces) statistics for a column.
  void SetStats(catalog::ColumnId id, ColumnStats s) {
    stats_[id] = std::move(s);
  }

  /// True if explicit stats were registered for the column.
  bool HasStats(catalog::ColumnId id) const { return stats_.contains(id); }

  /// Returns registered stats, or conservative defaults derived from the
  /// catalog (uniform over the table's rows, distinct = rows for keys else
  /// rows/10) when none were registered.
  const ColumnStats& GetStats(catalog::ColumnId id) const;

  /// Fraction of the table's rows matching `column = value`.
  double SelectivityEquals(catalog::ColumnId id, double value) const {
    return GetStats(id).SelectivityEquals(value);
  }

  /// Fraction of rows in the (optionally half-open) range.
  double SelectivityRange(catalog::ColumnId id, std::optional<double> lo,
                          std::optional<double> hi) const {
    return GetStats(id).SelectivityRange(lo, hi);
  }

  /// 1 / distinct-count.
  double Density(catalog::ColumnId id) const { return GetStats(id).Density(); }

  double DistinctCount(catalog::ColumnId id) const {
    return GetStats(id).distinct_count;
  }

  /// Value with ~fraction q of the column's rows at or below it.
  double ValueAtQuantile(catalog::ColumnId id, double q) const {
    return GetStats(id).ValueAtQuantile(q);
  }

  const catalog::Catalog& catalog() const { return *catalog_; }

 private:
  const catalog::Catalog* catalog_;
  std::unordered_map<catalog::ColumnId, ColumnStats> stats_;
  // Cache of synthesized defaults so GetStats can return references.
  mutable std::unordered_map<catalog::ColumnId, ColumnStats> defaults_;
};

}  // namespace isum::stats

#endif  // ISUM_STATS_STATS_MANAGER_H_
