#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace isum::stats {

Histogram Histogram::FromSample(std::vector<double> sample, int num_buckets,
                                double total_rows) {
  Histogram h;
  h.total_rows_ = total_rows;
  if (sample.empty() || num_buckets <= 0 || total_rows <= 0.0) return h;
  std::sort(sample.begin(), sample.end());

  const size_t n = sample.size();
  const size_t per_bucket = std::max<size_t>(1, n / static_cast<size_t>(num_buckets));
  const double scale = total_rows / static_cast<double>(n);

  size_t i = 0;
  double prev_upper = sample.front();
  bool first = true;
  while (i < n) {
    size_t j = std::min(n, i + per_bucket);
    // Extend the bucket so equal values never straddle a boundary.
    while (j < n && sample[j] == sample[j - 1]) ++j;
    HistogramBucket b;
    b.lower = first ? sample[i] - 1.0 : prev_upper;
    b.upper = sample[j - 1];
    b.rows = static_cast<double>(j - i) * scale;
    double distinct = 1.0;
    for (size_t t = i + 1; t < j; ++t) {
      if (sample[t] != sample[t - 1]) distinct += 1.0;
    }
    b.distinct = distinct;
    h.buckets_.push_back(b);
    prev_upper = b.upper;
    i = j;
    first = false;
  }
  return h;
}

double Histogram::min_value() const {
  return buckets_.empty() ? 0.0 : buckets_.front().lower;
}

double Histogram::max_value() const {
  return buckets_.empty() ? 0.0 : buckets_.back().upper;
}

double Histogram::SelectivityEquals(double v) const {
  if (buckets_.empty() || total_rows_ <= 0.0) return 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (v > b.lower && v <= b.upper) {
      return (b.rows / std::max(1.0, b.distinct)) / total_rows_;
    }
  }
  return 0.0;
}

double Histogram::RowsBelowInclusive(double v) const {
  double rows = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (v > b.upper) {
      rows += b.rows;
    } else if (v > b.lower) {
      const double width = b.upper - b.lower;
      const double frac = width > 0.0 ? (v - b.lower) / width : 1.0;
      rows += b.rows * frac;
      break;
    } else {
      break;
    }
  }
  return rows;
}

double Histogram::SelectivityRange(std::optional<double> lo,
                                   std::optional<double> hi) const {
  if (buckets_.empty() || total_rows_ <= 0.0) return 1.0;
  const double hi_rows = hi.has_value() ? RowsBelowInclusive(*hi) : total_rows_;
  // Exclusive lower: rows strictly below lo (approximated by inclusive minus
  // one equality slice is overkill for costing; inclusive is fine here).
  const double lo_rows = lo.has_value() ? RowsBelowInclusive(*lo) : 0.0;
  double sel = (hi_rows - lo_rows) / total_rows_;
  if (lo.has_value()) sel += SelectivityEquals(*lo);  // inclusive lower bound
  return std::clamp(sel, 0.0, 1.0);
}

double Histogram::ValueAtQuantile(double q) const {
  if (buckets_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * total_rows_;
  double seen = 0.0;
  for (const HistogramBucket& b : buckets_) {
    if (seen + b.rows >= target) {
      // A single-distinct bucket holds exactly one value: its upper bound.
      if (b.distinct <= 1.0) return b.upper;
      const double frac = b.rows > 0.0 ? (target - seen) / b.rows : 1.0;
      return b.lower + (b.upper - b.lower) * frac;
    }
    seen += b.rows;
  }
  return buckets_.back().upper;
}

}  // namespace isum::stats
