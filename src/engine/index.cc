#include "engine/index.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/string_util.h"

namespace isum::engine {

namespace {
constexpr uint64_t kPageBytes = 8192;
// Row id + slot overhead per index entry.
constexpr int32_t kEntryOverheadBytes = 12;
}  // namespace

Index::Index(catalog::TableId table, std::vector<catalog::ColumnId> key_columns,
             std::vector<catalog::ColumnId> include_columns)
    : table_(table),
      key_columns_(std::move(key_columns)),
      include_columns_(std::move(include_columns)) {
  // Includes are an unordered set: canonicalize, and drop key duplicates.
  std::sort(include_columns_.begin(), include_columns_.end());
  include_columns_.erase(
      std::unique(include_columns_.begin(), include_columns_.end()),
      include_columns_.end());
  std::erase_if(include_columns_, [this](catalog::ColumnId c) {
    return std::find(key_columns_.begin(), key_columns_.end(), c) !=
           key_columns_.end();
  });
}

bool Index::ContainsColumn(catalog::ColumnId column) const {
  return std::find(key_columns_.begin(), key_columns_.end(), column) !=
             key_columns_.end() ||
         std::binary_search(include_columns_.begin(), include_columns_.end(),
                            column);
}

uint64_t Index::SizeBytes(const catalog::Catalog& catalog) const {
  const catalog::Table& t = catalog.table(table_);
  int32_t entry = kEntryOverheadBytes;
  for (catalog::ColumnId c : key_columns_) entry += catalog.column(c).width_bytes;
  for (catalog::ColumnId c : include_columns_) {
    entry += catalog.column(c).width_bytes;
  }
  return t.row_count() * static_cast<uint64_t>(entry);
}

uint64_t Index::LeafPages(const catalog::Catalog& catalog) const {
  return SizeBytes(catalog) / kPageBytes + 1;
}

int Index::HeightLevels(const catalog::Catalog& catalog) const {
  // ~200 separators per internal page.
  const double leaves = static_cast<double>(LeafPages(catalog));
  return leaves <= 1.0
             ? 1
             : 1 + static_cast<int>(std::ceil(std::log(leaves) / std::log(200.0)));
}

std::string Index::DebugName(const catalog::Catalog& catalog) const {
  std::string out = "IX_" + catalog.table(table_).name() + "(";
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i > 0) out += ",";
    out += catalog.column(key_columns_[i]).name;
  }
  out += ")";
  if (!include_columns_.empty()) {
    out += StrFormat("+%zuinc", include_columns_.size());
  }
  return out;
}

std::string Index::ToDdl(const catalog::Catalog& catalog, int ordinal) const {
  const std::string& table_name = catalog.table(table_).name();
  std::string out =
      StrFormat("CREATE INDEX ix_%s_%d ON %s (", table_name.c_str(), ordinal,
                table_name.c_str());
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += catalog.column(key_columns_[i]).name;
  }
  out += ")";
  if (!include_columns_.empty()) {
    out += " INCLUDE (";
    for (size_t i = 0; i < include_columns_.size(); ++i) {
      if (i > 0) out += ", ";
      out += catalog.column(include_columns_[i]).name;
    }
    out += ")";
  }
  out += ";";
  return out;
}

std::string Index::CanonicalKey() const {
  std::string out = StrFormat("t%d|k", table_);
  for (catalog::ColumnId c : key_columns_) out += StrFormat("%d,", c.column);
  out += "|i";
  for (catalog::ColumnId c : include_columns_) out += StrFormat("%d,", c.column);
  return out;
}

}  // namespace isum::engine

namespace std {
size_t hash<isum::engine::Index>::operator()(
    const isum::engine::Index& index) const noexcept {
  uint64_t h = static_cast<uint64_t>(index.table()) + 0x517CC1B7ull;
  for (auto c : index.key_columns()) {
    h = isum::HashCombine(h, (static_cast<uint64_t>(c.table) << 32) |
                                 static_cast<uint32_t>(c.column));
  }
  h = isum::HashCombine(h, 0xABCDull);
  for (auto c : index.include_columns()) {
    h = isum::HashCombine(h, (static_cast<uint64_t>(c.table) << 32) |
                                 static_cast<uint32_t>(c.column));
  }
  return static_cast<size_t>(h);
}
}  // namespace std
