#ifndef ISUM_ENGINE_COST_MODEL_H_
#define ISUM_ENGINE_COST_MODEL_H_

#include <optional>
#include <vector>

#include "catalog/catalog.h"
#include "engine/configuration.h"
#include "sql/bound_query.h"
#include "stats/stats_manager.h"

namespace isum::engine {

/// Tunable constants of the cost model. Units are abstract "optimizer cost";
/// defaults roughly follow the classic 1 seq-page = 1.0 convention.
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_operator_cost = 0.0025;
  double hash_build_per_row = 0.02;
  double hash_probe_per_row = 0.01;
  /// Sort cost = rows * log2(effective) * this.
  double sort_factor = 0.02;
  /// Stream aggregation per input row.
  double stream_agg_per_row = 0.005;
};

/// How a single table is accessed under a configuration.
struct AccessPath {
  /// Chosen index; nullptr means full table scan. Points into the
  /// Configuration passed to BestAccessPath; valid while it lives.
  const Index* index = nullptr;
  double cost = 0.0;
  /// Rows produced after applying all of the query's filters on this table.
  double out_rows = 0.0;
  /// Rows fetched by the seek before residual filtering.
  double fetched_rows = 0.0;
  /// True if the index contains every column the query needs from the table.
  bool covering = false;
  /// True if the access yields rows in the desired order (sort avoidable).
  bool provides_order = false;
  /// Product of selectivities of predicates the seek itself applied.
  double seek_selectivity = 1.0;
};

/// Operator-level cost formulas shared by the optimizer and the advisor.
/// Stateless apart from catalog/statistics references.
class CostModel {
 public:
  CostModel(const catalog::Catalog* catalog, const stats::StatsManager* stats,
            CostParams params = {})
      : catalog_(catalog), stats_(stats), params_(params) {}

  const CostParams& params() const { return params_; }
  const catalog::Catalog& catalog() const { return *catalog_; }
  const stats::StatsManager& stats() const { return *stats_; }

  /// Cost of a full heap scan of `table` (CPU for all rows included).
  double FullScanCost(catalog::TableId table) const;

  /// Best access path for `table` given the query's filters on it.
  ///
  /// `filters` must only contain predicates on `table`. `required_columns`
  /// are the table's columns the query needs (drives covering checks);
  /// `desired_order` is the column sequence whose order would let the caller
  /// skip a sort (empty if none). Considers: full scan, covering index-only
  /// scan, and an index seek per index in `config`.
  AccessPath BestAccessPath(
      catalog::TableId table, const std::vector<sql::FilterPredicate>& filters,
      const std::vector<catalog::ColumnId>& required_columns,
      const std::vector<catalog::ColumnId>& desired_order,
      const Configuration& config) const;

  /// Cost of sorting `rows` rows (top-N if `limit` set).
  double SortCost(double rows, std::optional<int64_t> limit) const;

  /// Hash join cost (build side chosen by caller).
  double HashJoinCost(double build_rows, double probe_rows) const;

  /// Hash aggregation of `rows` input rows into `groups` groups.
  double HashAggCost(double rows, double groups) const;

  /// Stream aggregation over pre-ordered input.
  double StreamAggCost(double rows) const;

  /// Cost of probing `index` once per outer row in an index nested-loop
  /// join: `outer_rows` probes, each fetching `rows_per_probe` inner rows.
  double IndexNestedLoopCost(const Index& index, double outer_rows,
                             double rows_per_probe, bool covering) const;

 private:
  /// Cost of an index seek matching `seek_selectivity` of the index entries,
  /// fetching `fetched_rows`, looking up base rows unless covering.
  double SeekCost(const Index& index, double seek_selectivity,
                  double fetched_rows, bool covering) const;

  const catalog::Catalog* catalog_;
  const stats::StatsManager* stats_;
  CostParams params_;
};

}  // namespace isum::engine

#endif  // ISUM_ENGINE_COST_MODEL_H_
