#ifndef ISUM_ENGINE_OPTIMIZER_H_
#define ISUM_ENGINE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "engine/cost_model.h"

namespace isum::engine {

/// How a table joins into the plan being built.
enum class JoinMethod { kNone, kHashJoin, kIndexNestedLoop, kCrossJoin };

const char* JoinMethodToString(JoinMethod method);

/// One table's placement in the (left-deep) join order.
struct PlannedTable {
  catalog::TableId table = catalog::kInvalidTableId;
  /// Access path chosen for the table. For kIndexNestedLoop the inner rows
  /// come through `inl_index` probes instead and `access.cost` is unused.
  AccessPath access;
  JoinMethod join_method = JoinMethod::kNone;
  const Index* inl_index = nullptr;  ///< set for kIndexNestedLoop
  double step_cost = 0.0;            ///< cost added by this step
  double cumulative_rows = 0.0;      ///< rows after joining this table
};

/// Cost and structure summary of an optimized query plan.
struct PlanSummary {
  double total_cost = 0.0;
  double output_rows = 0.0;
  std::vector<PlannedTable> tables;  ///< in join order
  bool sort_needed = false;
  bool sort_avoided_by_index = false;
  bool stream_aggregate = false;
  double aggregate_cost = 0.0;
  double sort_cost = 0.0;

  /// Multi-line plan rendering for demos and debugging.
  std::string Explain(const catalog::Catalog& catalog) const;
};

/// A cost-based single-block optimizer: chooses per-table access paths under
/// a (hypothetical) index configuration, a greedy left-deep join order with
/// hash-join vs. index-nested-loop selection, aggregation strategy and sort
/// placement (with single-table sort avoidance through index order).
///
/// This is the substrate standing in for the SQL Server optimizer in the
/// paper's pipeline; its estimated cost plays the role of C(q) / C_I(q).
class Optimizer {
 public:
  explicit Optimizer(const CostModel* cost_model) : cost_model_(cost_model) {}

  /// Returns the cheapest plan found for `query` under `config`.
  /// AccessPath::index pointers refer into `config`.
  PlanSummary Optimize(const sql::BoundQuery& query,
                       const Configuration& config) const;

  /// Convenience: the plan's total cost.
  double Cost(const sql::BoundQuery& query, const Configuration& config) const {
    return Optimize(query, config).total_cost;
  }

 private:
  const CostModel* cost_model_;
};

}  // namespace isum::engine

#endif  // ISUM_ENGINE_OPTIMIZER_H_
