#include "engine/configuration.h"

#include <algorithm>

#include "common/hash.h"

namespace isum::engine {

Configuration::Configuration(std::vector<Index> indexes) {
  for (Index& index : indexes) Add(std::move(index));
}

bool Configuration::Add(Index index) {
  if (Contains(index)) return false;
  indexes_.push_back(std::move(index));
  return true;
}

bool Configuration::Remove(const Index& index) {
  auto it = std::find(indexes_.begin(), indexes_.end(), index);
  if (it == indexes_.end()) return false;
  indexes_.erase(it);
  return true;
}

bool Configuration::Contains(const Index& index) const {
  return std::find(indexes_.begin(), indexes_.end(), index) != indexes_.end();
}

std::vector<const Index*> Configuration::IndexesOnTable(
    catalog::TableId table) const {
  std::vector<const Index*> out;
  for (const Index& index : indexes_) {
    if (index.table() == table) out.push_back(&index);
  }
  return out;
}

uint64_t Configuration::TotalSizeBytes(const catalog::Catalog& catalog) const {
  uint64_t total = 0;
  for (const Index& index : indexes_) total += index.SizeBytes(catalog);
  return total;
}

uint64_t Configuration::StableHash() const {
  // XOR of per-index hashes: order independent.
  uint64_t h = 0x15B3C0FFEEull;
  std::hash<Index> hasher;
  for (const Index& index : indexes_) {
    h ^= static_cast<uint64_t>(hasher(index)) * 0x9E3779B97F4A7C15ull;
  }
  return h;
}

std::string Configuration::DebugString(const catalog::Catalog& catalog) const {
  std::string out;
  for (const Index& index : indexes_) {
    out += "  " + index.DebugName(catalog) + "\n";
  }
  return out;
}

}  // namespace isum::engine
