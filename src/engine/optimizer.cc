#include "engine/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/string_util.h"

namespace isum::engine {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-table slice of the query used while planning.
struct TableContext {
  catalog::TableId table = catalog::kInvalidTableId;
  sql::JoinSemantics semantics = sql::JoinSemantics::kInner;
  std::vector<sql::FilterPredicate> filters;
  std::vector<catalog::ColumnId> required_columns;
  AccessPath access;
};

/// Default match probability for anti joins (no-match fraction).
constexpr double kAntiJoinSelectivity = 0.33;

double EstimateGroups(const stats::StatsManager& stats,
                      const std::vector<catalog::ColumnId>& group_columns,
                      double input_rows) {
  if (group_columns.empty()) return 1.0;
  double groups = 1.0;
  for (catalog::ColumnId c : group_columns) {
    groups *= std::max(1.0, stats.DistinctCount(c));
    if (groups > input_rows) break;
  }
  return std::clamp(groups, 1.0, std::max(1.0, input_rows));
}

}  // namespace

const char* JoinMethodToString(JoinMethod method) {
  switch (method) {
    case JoinMethod::kNone:
      return "driver";
    case JoinMethod::kHashJoin:
      return "hash join";
    case JoinMethod::kIndexNestedLoop:
      return "index nested loop";
    case JoinMethod::kCrossJoin:
      return "cross join";
  }
  return "?";
}

PlanSummary Optimizer::Optimize(const sql::BoundQuery& query,
                                const Configuration& config) const {
  const CostModel& cm = *cost_model_;
  const catalog::Catalog& cat = cm.catalog();
  const stats::StatsManager& stats = cm.stats();

  PlanSummary plan;
  if (query.tables.empty()) return plan;

  // --- Partition query state by table. ---
  std::vector<TableContext> ctx;
  std::unordered_map<catalog::TableId, size_t> ctx_index;
  for (const auto& ref : query.tables) {
    if (ctx_index.contains(ref.table)) continue;  // self-join: fold
    ctx_index[ref.table] = ctx.size();
    TableContext tc;
    tc.table = ref.table;
    tc.semantics = ref.semantics;
    ctx.push_back(std::move(tc));
  }
  for (const auto& f : query.filters) {
    auto it = ctx_index.find(f.column.table);
    if (it != ctx_index.end()) ctx[it->second].filters.push_back(f);
  }
  for (catalog::ColumnId c : query.ReferencedColumns()) {
    auto it = ctx_index.find(c.table);
    if (it != ctx_index.end()) ctx[it->second].required_columns.push_back(c);
  }

  const bool single_table = ctx.size() == 1;

  // Desired physical order (sort avoidance), single-table only.
  std::vector<catalog::ColumnId> desired_order;
  if (single_table) {
    if (!query.order_by_columns.empty()) {
      for (const auto& [col, desc] : query.order_by_columns) {
        desired_order.push_back(col);
      }
    } else if (!query.group_by_columns.empty()) {
      desired_order = query.group_by_columns;
    }
  }

  // --- Access path per table. ---
  for (TableContext& tc : ctx) {
    tc.access = cm.BestAccessPath(tc.table, tc.filters, tc.required_columns,
                                  single_table ? desired_order
                                               : std::vector<catalog::ColumnId>{},
                                  config);
  }

  // --- Join order (greedy left-deep). ---
  std::vector<bool> placed(ctx.size(), false);
  double cur_rows = 0.0;

  // Driver: cheapest access per produced row. Semi/anti tables cannot
  // drive (their semantics restrict the *other* side), so prefer inner
  // tables; a query whose tables are all semi/anti is degenerate but legal.
  size_t driver = 0;
  double best_score = kInf;
  bool driver_inner = false;
  for (size_t i = 0; i < ctx.size(); ++i) {
    const bool inner = ctx[i].semantics == sql::JoinSemantics::kInner;
    if (driver_inner && !inner) continue;
    const double score = ctx[i].access.cost + ctx[i].access.out_rows * 0.01;
    if ((inner && !driver_inner) || score < best_score) {
      best_score = score;
      driver = i;
      driver_inner = inner;
    }
  }
  {
    PlannedTable pt;
    pt.table = ctx[driver].table;
    pt.access = ctx[driver].access;
    pt.join_method = JoinMethod::kNone;
    pt.step_cost = ctx[driver].access.cost;
    cur_rows = ctx[driver].access.out_rows;
    pt.cumulative_rows = cur_rows;
    plan.total_cost += pt.step_cost;
    plan.tables.push_back(pt);
    placed[driver] = true;
  }

  for (size_t step = 1; step < ctx.size(); ++step) {
    // Candidate tables joinable with the placed set. Connected candidates
    // always beat cross joins; cross joins only happen when the join graph
    // is disconnected.
    size_t best_i = ctx.size();
    JoinMethod best_method = JoinMethod::kCrossJoin;
    const Index* best_inl = nullptr;
    double best_cost = kInf;
    double best_rows = 0.0;
    bool best_connected = false;

    for (size_t i = 0; i < ctx.size(); ++i) {
      if (placed[i]) continue;
      // Combined selectivity of join predicates linking i to the placed set,
      // and the i-side join columns (for INL).
      double join_sel = 1.0;
      bool connected = false;
      std::vector<catalog::ColumnId> inner_join_cols;
      for (const auto& jp : query.joins) {
        const bool left_in_i = jp.left.table == ctx[i].table;
        const bool right_in_i = jp.right.table == ctx[i].table;
        if (!left_in_i && !right_in_i) continue;
        const catalog::ColumnId other = left_in_i ? jp.right : jp.left;
        auto oit = ctx_index.find(other.table);
        if (oit == ctx_index.end() || !placed[oit->second]) continue;
        connected = true;
        join_sel *= jp.selectivity;
        inner_join_cols.push_back(left_in_i ? jp.left : jp.right);
      }
      if (best_connected && !connected) continue;

      const TableContext& tc = ctx[i];
      double result_rows =
          std::max(1.0, connected ? cur_rows * tc.access.out_rows * join_sel
                                  : cur_rows * tc.access.out_rows);
      // Semi/anti joins (flattened subqueries) cap instead of multiply.
      if (tc.semantics == sql::JoinSemantics::kSemi) {
        result_rows = std::min(result_rows, cur_rows);
      } else if (tc.semantics == sql::JoinSemantics::kAnti) {
        result_rows = std::max(1.0, cur_rows * kAntiJoinSelectivity);
      }
      // Producing join output rows costs CPU; charging it here both prices
      // huge intermediates and steers the greedy away from shortcut joins
      // that explode cardinality (e.g. joining two entities on a shared
      // low-cardinality dimension key).
      const double output_cpu = result_rows * cm.params().cpu_operator_cost;
      // A connected candidate displaces any cross-join best so far.
      const bool displaces = connected && !best_connected;

      if (connected) {
        // Hash join.
        const double hash_cost =
            output_cpu + tc.access.cost +
            cm.HashJoinCost(std::min(cur_rows, tc.access.out_rows),
                            std::max(cur_rows, tc.access.out_rows));
        if (displaces || hash_cost < best_cost) {
          best_cost = hash_cost;
          best_i = i;
          best_method = JoinMethod::kHashJoin;
          best_inl = nullptr;
          best_rows = result_rows;
          best_connected = true;
        }
        // Index nested loop: leading index key must be an inner join column.
        for (const Index* index : config.IndexesOnTable(tc.table)) {
          if (index->key_columns().empty()) continue;
          const catalog::ColumnId lead = index->key_columns()[0];
          bool usable = false;
          for (catalog::ColumnId jc : inner_join_cols) {
            if (jc == lead) {
              usable = true;
              break;
            }
          }
          if (!usable) continue;
          const double inner_rows =
              static_cast<double>(cat.table(tc.table).row_count());
          const double per_probe =
              std::max(1e-3, inner_rows / std::max(1.0, stats.DistinctCount(lead)));
          bool covering = true;
          for (catalog::ColumnId c : tc.required_columns) {
            if (!index->ContainsColumn(c)) {
              covering = false;
              break;
            }
          }
          const double inl_cost =
              output_cpu +
              cm.IndexNestedLoopCost(*index, cur_rows, per_probe, covering);
          if (inl_cost < best_cost) {
            best_cost = inl_cost;
            best_i = i;
            best_method = JoinMethod::kIndexNestedLoop;
            best_inl = index;
            best_rows = result_rows;
            best_connected = true;
          }
        }
      } else {
        const double cross_cost = output_cpu + tc.access.cost;
        if (cross_cost < best_cost) {
          best_cost = cross_cost;
          best_i = i;
          best_method = JoinMethod::kCrossJoin;
          best_inl = nullptr;
          best_rows = result_rows;
        }
      }
    }

    PlannedTable pt;
    pt.table = ctx[best_i].table;
    pt.access = ctx[best_i].access;
    pt.join_method = best_method;
    pt.inl_index = best_inl;
    pt.step_cost = best_cost;
    cur_rows = best_rows;
    pt.cumulative_rows = cur_rows;
    plan.total_cost += best_cost;
    plan.tables.push_back(pt);
    placed[best_i] = true;
  }

  // --- Residual multi-table predicates. ---
  for (const auto& cp : query.complex_predicates) {
    plan.total_cost += cur_rows * cm.params().cpu_operator_cost;
    cur_rows = std::max(1.0, cur_rows * cp.selectivity);
  }

  // --- Aggregation / DISTINCT. ---
  const bool has_agg = !query.aggregates.empty() || !query.group_by_columns.empty();
  if (has_agg) {
    const double groups =
        EstimateGroups(stats, query.group_by_columns, cur_rows);
    const bool can_stream = single_table && query.order_by_columns.empty() &&
                            !query.group_by_columns.empty() &&
                            plan.tables.front().access.provides_order;
    if (can_stream) {
      plan.stream_aggregate = true;
      plan.aggregate_cost = cm.StreamAggCost(cur_rows);
    } else {
      plan.aggregate_cost = cm.HashAggCost(cur_rows, groups);
    }
    plan.total_cost += plan.aggregate_cost;
    cur_rows = groups;
  } else if (query.distinct) {
    const double groups = EstimateGroups(stats, query.output_columns, cur_rows);
    plan.aggregate_cost = cm.HashAggCost(cur_rows, groups);
    plan.total_cost += plan.aggregate_cost;
    cur_rows = groups;
  }
  if (has_agg && query.having_selectivity < 1.0) {
    plan.total_cost += cur_rows * cm.params().cpu_operator_cost;
    cur_rows = std::max(1.0, cur_rows * query.having_selectivity);
  }

  // --- Sort. ---
  if (!query.order_by_columns.empty()) {
    const bool avoided = single_table && !has_agg &&
                         plan.tables.front().access.provides_order;
    if (avoided) {
      plan.sort_avoided_by_index = true;
    } else {
      plan.sort_needed = true;
      plan.sort_cost = cm.SortCost(cur_rows, query.limit);
      plan.total_cost += plan.sort_cost;
    }
  }

  if (query.limit.has_value()) {
    cur_rows = std::min(cur_rows, static_cast<double>(
                                      std::max<int64_t>(1, *query.limit)));
  }
  plan.output_rows = cur_rows;
  return plan;
}

std::string PlanSummary::Explain(const catalog::Catalog& catalog) const {
  std::string out;
  out += StrFormat("Plan cost=%.1f rows=%.0f\n", total_cost, output_rows);
  for (size_t i = 0; i < tables.size(); ++i) {
    const PlannedTable& pt = tables[i];
    out += StrFormat("  [%zu] %s", i, catalog.table(pt.table).name().c_str());
    if (pt.join_method != JoinMethod::kNone) {
      out += StrFormat(" via %s", JoinMethodToString(pt.join_method));
    }
    if (pt.join_method == JoinMethod::kIndexNestedLoop && pt.inl_index != nullptr) {
      out += " using " + pt.inl_index->DebugName(catalog);
    } else if (pt.access.index != nullptr) {
      out += " seek " + pt.access.index->DebugName(catalog);
      if (pt.access.covering) out += " (covering)";
    } else {
      out += " scan";
    }
    out += StrFormat("  cost=%.1f rows=%.0f\n", pt.step_cost, pt.cumulative_rows);
  }
  if (aggregate_cost > 0.0) {
    out += StrFormat("  %s aggregate cost=%.1f\n",
                     stream_aggregate ? "stream" : "hash", aggregate_cost);
  }
  if (sort_needed) out += StrFormat("  sort cost=%.1f\n", sort_cost);
  if (sort_avoided_by_index) out += "  sort avoided by index order\n";
  return out;
}

}  // namespace isum::engine
