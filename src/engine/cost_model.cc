#include "engine/cost_model.h"

#include <algorithm>
#include <cmath>

namespace isum::engine {

namespace {

double Log2Clamped(double x) { return std::log2(std::max(2.0, x)); }

/// True if `op` can extend a seek prefix with an equality match.
bool IsEqualityOp(sql::PredicateOp op) {
  return op == sql::PredicateOp::kEq || op == sql::PredicateOp::kIn ||
         op == sql::PredicateOp::kIsNull;
}

/// True if `op` can terminate a seek prefix with a range scan.
bool IsRangeOp(sql::PredicateOp op) {
  switch (op) {
    case sql::PredicateOp::kLt:
    case sql::PredicateOp::kLe:
    case sql::PredicateOp::kGt:
    case sql::PredicateOp::kGe:
    case sql::PredicateOp::kBetween:
    case sql::PredicateOp::kLike:  // sargable prefix patterns only reach here
      return true;
    default:
      return false;
  }
}

}  // namespace

double CostModel::FullScanCost(catalog::TableId table) const {
  const catalog::Table& t = catalog_->table(table);
  return static_cast<double>(t.data_pages()) * params_.seq_page_cost +
         static_cast<double>(t.row_count()) * params_.cpu_tuple_cost;
}

double CostModel::SeekCost(const Index& index, double seek_selectivity,
                           double fetched_rows, bool covering) const {
  const double descend = index.HeightLevels(*catalog_) * params_.random_page_cost;
  const double leaf_pages = static_cast<double>(index.LeafPages(*catalog_));
  const double leaf_io =
      std::max(1.0, leaf_pages * seek_selectivity) * params_.seq_page_cost;
  double lookup_io = 0.0;
  if (!covering) {
    // One random base-table access per fetched row, capped at ~2x a full
    // sweep of the heap (beyond that a scan would have been chosen anyway).
    const double heap_pages =
        static_cast<double>(catalog_->table(index.table()).data_pages());
    lookup_io = std::min(fetched_rows, heap_pages * 2.0) * params_.random_page_cost;
  }
  const double cpu = fetched_rows * params_.cpu_tuple_cost;
  return descend + leaf_io + lookup_io + cpu;
}

AccessPath CostModel::BestAccessPath(
    catalog::TableId table, const std::vector<sql::FilterPredicate>& filters,
    const std::vector<catalog::ColumnId>& required_columns,
    const std::vector<catalog::ColumnId>& desired_order,
    const Configuration& config) const {
  const catalog::Table& t = catalog_->table(table);
  const double rows = static_cast<double>(t.row_count());

  double total_sel = 1.0;
  for (const auto& f : filters) total_sel *= f.selectivity;
  total_sel = std::clamp(total_sel, 1e-12, 1.0);
  const double out_rows = std::max(1.0, rows * total_sel);

  // Baseline: full scan with residual filter CPU.
  AccessPath best;
  best.index = nullptr;
  best.cost = FullScanCost(table) +
              static_cast<double>(filters.size()) * rows * params_.cpu_operator_cost;
  best.out_rows = out_rows;
  best.fetched_rows = rows;
  best.covering = true;  // a heap scan sees every column
  best.provides_order = false;
  best.seek_selectivity = 1.0;

  for (const Index* index : config.IndexesOnTable(table)) {
    // --- Determine the seek prefix this index supports. ---
    double seek_sel = 1.0;
    size_t matched = 0;
    bool range_used = false;
    std::vector<bool> filter_used(filters.size(), false);
    for (catalog::ColumnId key : index->key_columns()) {
      if (range_used) break;
      bool advanced = false;
      for (size_t i = 0; i < filters.size(); ++i) {
        const auto& f = filters[i];
        if (filter_used[i] || f.column != key || !f.sargable) continue;
        if (IsEqualityOp(f.op)) {
          seek_sel *= f.selectivity;
          filter_used[i] = true;
          ++matched;
          advanced = true;
          break;
        }
        if (IsRangeOp(f.op)) {
          seek_sel *= f.selectivity;
          filter_used[i] = true;
          ++matched;
          range_used = true;
          advanced = true;
          break;
        }
      }
      if (!advanced) break;
    }

    // --- Covering check. ---
    bool covering = true;
    for (catalog::ColumnId c : required_columns) {
      if (c.table == table && !index->ContainsColumn(c)) {
        covering = false;
        break;
      }
    }

    // --- Order check: after equality-matched leading keys, the remaining
    // key sequence must start with `desired_order`. ---
    bool provides_order = false;
    if (!desired_order.empty()) {
      const size_t skip = range_used && matched > 0 ? matched - 1 : matched;
      if (index->key_columns().size() >= skip + desired_order.size()) {
        provides_order = true;
        for (size_t i = 0; i < desired_order.size(); ++i) {
          if (index->key_columns()[skip + i] != desired_order[i]) {
            provides_order = false;
            break;
          }
        }
      }
      // A range column consumes the order position it sorts by, so order on
      // the range column itself is preserved; handled by skip above.
    }

    AccessPath path;
    path.index = index;
    path.seek_selectivity = matched > 0 ? seek_sel : 1.0;
    path.fetched_rows = std::max(1.0, rows * path.seek_selectivity);
    path.covering = covering;
    path.provides_order = provides_order;
    path.out_rows = out_rows;

    if (matched == 0) {
      // No seek possible: index-only scan is useful when covering (narrower
      // than the heap) or when it provides the desired order.
      if (!covering && !provides_order) continue;
      const double leaf_pages = static_cast<double>(index->LeafPages(*catalog_));
      double io = covering
                      ? leaf_pages * params_.seq_page_cost
                      : leaf_pages * params_.seq_page_cost +
                            std::min(rows, static_cast<double>(t.data_pages()) * 2.0) *
                                params_.random_page_cost;
      path.cost = io + rows * params_.cpu_tuple_cost +
                  static_cast<double>(filters.size()) * rows * params_.cpu_operator_cost;
    } else {
      path.cost = SeekCost(*index, path.seek_selectivity, path.fetched_rows,
                           covering);
      // Residual predicates evaluated on fetched rows.
      size_t residual = 0;
      for (size_t i = 0; i < filters.size(); ++i) {
        if (!filter_used[i]) ++residual;
      }
      path.cost += static_cast<double>(residual) * path.fetched_rows *
                   params_.cpu_operator_cost;
    }

    // Prefer strictly cheaper paths; break ties toward order providers.
    if (path.cost < best.cost ||
        (path.cost == best.cost && path.provides_order && !best.provides_order)) {
      best = path;
    }
  }
  return best;
}

double CostModel::SortCost(double rows, std::optional<int64_t> limit) const {
  if (rows <= 1.0) return 0.0;
  double effective = rows;
  if (limit.has_value() && *limit > 0) {
    // Top-N heap sort: log of the heap size, not the input.
    effective = std::min(rows, static_cast<double>(*limit) * 2.0);
  }
  return rows * Log2Clamped(effective) * params_.sort_factor;
}

double CostModel::HashJoinCost(double build_rows, double probe_rows) const {
  return build_rows * params_.hash_build_per_row +
         probe_rows * params_.hash_probe_per_row;
}

double CostModel::HashAggCost(double rows, double groups) const {
  return rows * params_.cpu_tuple_cost * 1.5 + groups * params_.cpu_operator_cost;
}

double CostModel::StreamAggCost(double rows) const {
  return rows * params_.stream_agg_per_row;
}

double CostModel::IndexNestedLoopCost(const Index& index, double outer_rows,
                                      double rows_per_probe,
                                      bool covering) const {
  const double descend_cpu =
      index.HeightLevels(*catalog_) * params_.cpu_operator_cost * 8.0;
  // Fraction of probes that incur a page miss shrinks as the index gets
  // cache-resident across repeated probes; model a flat 25% miss rate.
  const double per_probe_io = params_.random_page_cost * 0.25;
  const double fetch = covering
                           ? rows_per_probe * params_.cpu_tuple_cost
                           : rows_per_probe * (params_.random_page_cost * 0.5 +
                                               params_.cpu_tuple_cost);
  return outer_rows * (descend_cpu + per_probe_io + fetch);
}

}  // namespace isum::engine
