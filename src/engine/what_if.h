#ifndef ISUM_ENGINE_WHAT_IF_H_
#define ISUM_ENGINE_WHAT_IF_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "engine/optimizer.h"
#include "obs/metrics.h"

namespace isum::engine {

/// The "what-if" API [15]: costs a query under a hypothetical index
/// configuration without building indexes. Results are memoized per
/// (query, configuration) pair and optimizer invocations are counted, so the
/// advisor's call profile (Figure 2 of the paper) can be measured.
///
/// Cache keys use query object identity: a BoundQuery must stay at a stable
/// address while a WhatIfOptimizer refers to it (Workload guarantees this).
///
/// Thread-safe: Cost() may be called concurrently (the advisor evaluates
/// candidate configurations in parallel). The cache is sharded 16 ways so
/// cache-hit-heavy parallel phases don't serialize on one mutex; the
/// optimizer invocation itself runs outside any lock, so concurrent misses
/// on the same key may both optimize (the second insert is a no-op).
class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const CostModel* cost_model)
      : optimizer_(cost_model) {}

  /// Estimated cost of `query` under `config` (memoized).
  double Cost(const sql::BoundQuery& query, const Configuration& config);

  /// Full plan (not memoized; use for explain output).
  PlanSummary Plan(const sql::BoundQuery& query,
                   const Configuration& config) const {
    return optimizer_.Optimize(query, config);
  }

  /// Number of real optimizer invocations (cache misses). Thin view over
  /// this instance's obs::Counter; the process-wide registry mirrors the
  /// same events under "whatif.optimizer_calls" (docs/OBSERVABILITY.md).
  uint64_t optimizer_calls() const { return optimizer_calls_.Value(); }
  /// Number of calls answered from the cache.
  uint64_t cache_hits() const { return cache_hits_.Value(); }
  /// Wall-clock seconds spent inside real optimizer invocations (the "time
  /// on optimizer calls" series of the paper's Figure 2a). Accumulated
  /// across threads (sums concurrent work, like CPU time).
  double optimizer_seconds() const {
    return static_cast<double>(optimizer_nanos_.Value()) * 1e-9;
  }

  /// Zeroes the per-instance counters with atomic stores. Must not be
  /// called concurrently with Cost(): a racing Cost() may split its
  /// increments across the reset, leaving counters mutually inconsistent
  /// (e.g. calls reset but its nanos kept). Quiesce callers first, as the
  /// advisors do between phases. The registry-wide mirrors are monotonic
  /// and unaffected.
  void ResetCounters() {
    optimizer_calls_.Reset();
    cache_hits_.Reset();
    optimizer_nanos_.Reset();
  }
  void ClearCache() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.cache.clear();
    }
  }

 private:
  struct Key {
    const void* query;
    uint64_t config_hash;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>()(k.query) ^
             static_cast<size_t>(k.config_hash * 0x9E3779B97F4A7C15ull);
    }
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    std::mutex mutex;
    std::unordered_map<Key, double, KeyHash> cache;
  };

  Optimizer optimizer_;
  std::array<Shard, kShards> shards_;
  obs::Counter optimizer_calls_;
  obs::Counter cache_hits_;
  obs::Counter optimizer_nanos_;
};

}  // namespace isum::engine

#endif  // ISUM_ENGINE_WHAT_IF_H_
