#ifndef ISUM_ENGINE_WHAT_IF_H_
#define ISUM_ENGINE_WHAT_IF_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/optimizer.h"
#include "obs/metrics.h"

namespace isum::engine {

/// Bounded retry-with-exponential-backoff around transient what-if
/// failures (Status::Unavailable — today only injected faults; a real
/// optimizer RPC would surface the same code). Backoff sleeps go through
/// SleepForNanos and are jittered deterministically (docs/ROBUSTNESS.md).
struct RetryPolicy {
  /// Total tries (1 = no retry). Each retry bumps "retry.attempts".
  int max_attempts = 4;
  /// First backoff; doubles per attempt (capped), jittered to [50%, 100%].
  uint64_t initial_backoff_nanos = 100'000;  // 100us
  uint64_t max_backoff_nanos = 10'000'000;   // 10ms
  double backoff_multiplier = 2.0;
  /// Jitter seed; fixed default so replays are bit-identical.
  uint64_t jitter_seed = 0xB0FFull;
};

/// The "what-if" API [15]: costs a query under a hypothetical index
/// configuration without building indexes. Results are memoized per
/// (query, configuration) pair and optimizer invocations are counted, so the
/// advisor's call profile (Figure 2 of the paper) can be measured.
///
/// Cache keys use query object identity: a BoundQuery must stay at a stable
/// address while a WhatIfOptimizer refers to it (Workload guarantees this).
///
/// Thread-safe: Cost() may be called concurrently (the advisor evaluates
/// candidate configurations in parallel). The cache is sharded 16 ways so
/// cache-hit-heavy parallel phases don't serialize on one mutex; the
/// optimizer invocation itself runs outside any lock, so concurrent misses
/// on the same key may both optimize (the second insert is a no-op).
class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const CostModel* cost_model)
      : optimizer_(cost_model) {}

  /// Estimated cost of `query` under `config` (memoized). Infallible thin
  /// wrapper over TryCost: with no faults configured and no budget it
  /// cannot fail; under fault injection a persistent failure is a fatal
  /// contract violation (ISUM_CHECK_OK) — fault-aware callers (the
  /// advisors) use TryCost instead.
  double Cost(const sql::BoundQuery& query, const Configuration& config);

  /// Fallible what-if call: estimated cost of `query` under `config`
  /// (memoized), observing `budget` and retrying transient failures per
  /// retry_policy(). Error returns:
  ///   kDeadlineExceeded / kCancelled — `budget` ran out (checked before
  ///     the call and between retries; a backoff never sleeps past the
  ///     deadline);
  ///   kUnavailable — the fault site "whatif.cost" kept failing after
  ///     max_attempts tries.
  /// Cache hits bypass fault injection and retries entirely: a memoized
  /// answer needs no optimizer invocation.
  StatusOr<double> TryCost(const sql::BoundQuery& query,
                           const Configuration& config,
                           const TimeBudget& budget = {});

  /// Full plan (not memoized; use for explain output).
  PlanSummary Plan(const sql::BoundQuery& query,
                   const Configuration& config) const {
    return optimizer_.Optimize(query, config);
  }

  /// Number of real optimizer invocations (cache misses). Thin view over
  /// this instance's obs::Counter; the process-wide registry mirrors the
  /// same events under "whatif.optimizer_calls" (docs/OBSERVABILITY.md).
  uint64_t optimizer_calls() const { return optimizer_calls_.Value(); }
  /// Number of calls answered from the cache.
  uint64_t cache_hits() const { return cache_hits_.Value(); }
  /// Number of retries after transient what-if failures (0 unless fault
  /// injection or a flaky backend is active). Mirrored process-wide as
  /// "retry.attempts".
  uint64_t retry_attempts() const { return retry_attempts_.Value(); }
  /// Wall-clock seconds spent inside real optimizer invocations (the "time
  /// on optimizer calls" series of the paper's Figure 2a). Accumulated
  /// across threads (sums concurrent work, like CPU time).
  double optimizer_seconds() const {
    return static_cast<double>(optimizer_nanos_.Value()) * 1e-9;
  }

  /// Zeroes the per-instance counters with atomic stores. Must not be
  /// called concurrently with Cost(): a racing Cost() may split its
  /// increments across the reset, leaving counters mutually inconsistent
  /// (e.g. calls reset but its nanos kept). Quiesce callers first, as the
  /// advisors do between phases. The registry-wide mirrors are monotonic
  /// and unaffected.
  void ResetCounters() {
    optimizer_calls_.Reset();
    cache_hits_.Reset();
    retry_attempts_.Reset();
    optimizer_nanos_.Reset();
  }
  void ClearCache() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mutex);
      shard.cache.clear();
    }
  }

  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Replaces the retry policy. Not thread-safe against in-flight calls;
  /// set it before handing the optimizer to workers.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  /// One memoized what-if answer in checkpoint form: the query is named by
  /// a caller-stable id (its position in the enumeration's query vector)
  /// instead of the in-process pointer the live cache keys on.
  struct CacheEntry {
    uint64_t query_id = 0;
    uint64_t config_hash = 0;
    double cost = 0.0;
  };

  /// Snapshots the memo cache for checkpointing. `query_ids` maps a
  /// BoundQuery address to its stable id; entries for queries outside the
  /// map (e.g. from another tuning phase) are skipped. Entry order is
  /// unspecified. Safe to call concurrently with Cost().
  std::vector<CacheEntry> ExportCache(
      const std::unordered_map<const void*, uint64_t>& query_ids);

  /// Seeds the memo cache from a checkpoint: `entries[i].query_id` indexes
  /// into `queries`, which must hold the same logical queries (in the same
  /// order) the exporting run used. Out-of-range ids are ignored. Restored
  /// costs are served as ordinary cache hits, so a resumed enumeration
  /// repeats no optimizer work for configurations the killed run already
  /// costed.
  void ImportCache(const std::vector<CacheEntry>& entries,
                   const std::vector<const sql::BoundQuery*>& queries);

 private:
  struct Key {
    const void* query;
    uint64_t config_hash;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      return std::hash<const void*>()(k.query) ^
             static_cast<size_t>(k.config_hash * 0x9E3779B97F4A7C15ull);
    }
  };

  static constexpr size_t kShards = 16;
  struct Shard {
    Mutex mutex;
    std::unordered_map<Key, double, KeyHash> cache ISUM_GUARDED_BY(mutex);
  };

  Optimizer optimizer_;
  RetryPolicy retry_policy_;
  std::array<Shard, kShards> shards_;
  obs::Counter optimizer_calls_;
  obs::Counter cache_hits_;
  obs::Counter retry_attempts_;
  obs::Counter optimizer_nanos_;
};

}  // namespace isum::engine

#endif  // ISUM_ENGINE_WHAT_IF_H_
