#ifndef ISUM_ENGINE_INDEX_H_
#define ISUM_ENGINE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace isum::engine {

/// A (hypothetical) B-tree index: an ordered list of key columns over one
/// table, plus optional leaf-level included columns. Indexes are value types;
/// identity is (table, key order, include set).
class Index {
 public:
  Index() = default;
  Index(catalog::TableId table, std::vector<catalog::ColumnId> key_columns,
        std::vector<catalog::ColumnId> include_columns = {});

  catalog::TableId table() const { return table_; }
  const std::vector<catalog::ColumnId>& key_columns() const {
    return key_columns_;
  }
  const std::vector<catalog::ColumnId>& include_columns() const {
    return include_columns_;
  }

  /// True if `column` appears among keys or includes.
  bool ContainsColumn(catalog::ColumnId column) const;

  /// Estimated on-disk size in bytes for the table's current row count.
  uint64_t SizeBytes(const catalog::Catalog& catalog) const;

  /// Estimated leaf-level pages (8 KiB).
  uint64_t LeafPages(const catalog::Catalog& catalog) const;

  /// Estimated B-tree height (levels above leaf).
  int HeightLevels(const catalog::Catalog& catalog) const;

  /// Human-readable name, e.g. "IX_lineitem(l_shipdate,l_orderkey)+2inc".
  std::string DebugName(const catalog::Catalog& catalog) const;

  /// Executable DDL, e.g.
  /// "CREATE INDEX ix_lineitem_1 ON lineitem (l_shipdate) INCLUDE (l_tax);".
  /// `ordinal` disambiguates names across one recommendation.
  std::string ToDdl(const catalog::Catalog& catalog, int ordinal = 0) const;

  /// Stable canonical key for hashing/equality across runs.
  std::string CanonicalKey() const;

  friend bool operator==(const Index& a, const Index& b) {
    return a.table_ == b.table_ && a.key_columns_ == b.key_columns_ &&
           a.include_columns_ == b.include_columns_;
  }

 private:
  catalog::TableId table_ = catalog::kInvalidTableId;
  std::vector<catalog::ColumnId> key_columns_;
  std::vector<catalog::ColumnId> include_columns_;  // kept sorted
};

}  // namespace isum::engine

namespace std {
template <>
struct hash<isum::engine::Index> {
  size_t operator()(const isum::engine::Index& index) const noexcept;
};
}  // namespace std

#endif  // ISUM_ENGINE_INDEX_H_
