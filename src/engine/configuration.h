#ifndef ISUM_ENGINE_CONFIGURATION_H_
#define ISUM_ENGINE_CONFIGURATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/index.h"

namespace isum::engine {

/// An index configuration: a set of hypothetical indexes the optimizer costs
/// against. Deduplicates on insert and keeps a stable hash for what-if
/// result caching.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Index> indexes);

  /// Adds `index` if not already present; returns true if added.
  bool Add(Index index);

  /// Removes an equal index if present; returns true if removed.
  bool Remove(const Index& index);

  bool Contains(const Index& index) const;

  const std::vector<Index>& indexes() const { return indexes_; }
  size_t size() const { return indexes_.size(); }
  bool empty() const { return indexes_.empty(); }

  /// Indexes defined on `table` (in insertion order).
  std::vector<const Index*> IndexesOnTable(catalog::TableId table) const;

  /// Total estimated storage of all indexes.
  uint64_t TotalSizeBytes(const catalog::Catalog& catalog) const;

  /// Order-independent stable hash of the index set.
  uint64_t StableHash() const;

  /// Multi-line listing for reports.
  std::string DebugString(const catalog::Catalog& catalog) const;

 private:
  std::vector<Index> indexes_;
};

}  // namespace isum::engine

#endif  // ISUM_ENGINE_CONFIGURATION_H_
