#include "engine/what_if.h"

#include <chrono>

namespace isum::engine {

double WhatIfOptimizer::Cost(const sql::BoundQuery& query,
                             const Configuration& config) {
  const Key key{&query, config.StableHash()};
  Shard& shard = shards_[KeyHash()(key) % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.cache.find(key);
    if (it != shard.cache.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const auto start = std::chrono::steady_clock::now();
  const double cost = optimizer_.Cost(query, config);
  const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  optimizer_calls_.fetch_add(1, std::memory_order_relaxed);
  optimizer_nanos_.fetch_add(static_cast<uint64_t>(nanos),
                             std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.emplace(key, cost);
  }
  return cost;
}

}  // namespace isum::engine
