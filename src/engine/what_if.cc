#include "engine/what_if.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace isum::engine {

namespace {

/// Process-wide mirrors of the per-instance counters, aggregated across
/// every WhatIfOptimizer in the process (metric names in
/// docs/OBSERVABILITY.md). Pointers are cached once; the registry owns them.
struct WhatIfMetrics {
  obs::Counter* calls;
  obs::Counter* hits;
  obs::Counter* retries;
  obs::Histogram* optimize_nanos;

  static const WhatIfMetrics& Get() {
    static const WhatIfMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return WhatIfMetrics{registry.GetCounter("whatif.optimizer_calls"),
                           registry.GetCounter("whatif.cache_hits"),
                           registry.GetCounter("retry.attempts"),
                           registry.GetHistogram("whatif.optimize_nanos")};
    }();
    return m;
  }
};

/// Backoff before retry number `attempt` (1-based): exponential with cap,
/// jittered deterministically to [50%, 100%] of the nominal value so
/// replays with a fixed seed are bit-identical.
uint64_t BackoffNanos(const RetryPolicy& policy, int attempt) {
  double nominal = static_cast<double>(policy.initial_backoff_nanos);
  for (int i = 1; i < attempt; ++i) nominal *= policy.backoff_multiplier;
  nominal = std::min(nominal, static_cast<double>(policy.max_backoff_nanos));
  Rng rng(policy.jitter_seed ^ static_cast<uint64_t>(attempt));
  return static_cast<uint64_t>(nominal * (0.5 + 0.5 * rng.NextDouble()));
}

}  // namespace

double WhatIfOptimizer::Cost(const sql::BoundQuery& query,
                             const Configuration& config) {
  StatusOr<double> cost = TryCost(query, config);
  ISUM_CHECK_OK(cost);
  return *cost;
}

StatusOr<double> WhatIfOptimizer::TryCost(const sql::BoundQuery& query,
                                          const Configuration& config,
                                          const TimeBudget& budget) {
  const WhatIfMetrics& metrics = WhatIfMetrics::Get();
  const Key key{&query, config.StableHash()};
  Shard& shard = shards_[KeyHash()(key) % kShards];
  {
    MutexLock lock(shard.mutex);
    auto it = shard.cache.find(key);
    if (it != shard.cache.end()) {
      cache_hits_.Add(1);
      metrics.hits->Add(1);
      return it->second;
    }
  }
  ISUM_RETURN_IF_ERROR(budget.CheckCancelled());

  // A real optimizer invocation: bounded retry around transient failures
  // from the "whatif.cost" fault site.
  const int max_attempts = std::max(1, retry_policy_.max_attempts);
  for (int attempt = 1;; ++attempt) {
    const Status fault = ISUM_FAULT_POINT("whatif.cost");
    if (fault.ok()) break;
    if (fault.code() != StatusCode::kUnavailable || attempt >= max_attempts) {
      // Surfaced to the caller: persistent failure or retries exhausted.
      obs::Journal::Global().Fault("whatif.cost",
                                   StatusCodeToString(fault.code()));
      return fault;
    }
    retry_attempts_.Add(1);
    metrics.retries->Add(1);
    uint64_t backoff = BackoffNanos(retry_policy_, attempt);
    // Never sleep past the deadline; re-check the budget after waking.
    backoff = std::min(backoff, budget.deadline().remaining_nanos());
    obs::Journal::Global().Retry("whatif.cost",
                                 static_cast<uint64_t>(attempt), backoff);
    if (backoff > 0) SleepForNanos(backoff);
    ISUM_RETURN_IF_ERROR(budget.CheckCancelled());
  }

  uint64_t nanos = 0;
  double cost = 0.0;
  {
    ISUM_TRACE_SPAN("whatif/optimize");
    const uint64_t start = MonotonicNanos();
    cost = optimizer_.Cost(query, config);
    const uint64_t end = MonotonicNanos();
    nanos = end >= start ? end - start : 0;
  }
  optimizer_calls_.Add(1);
  optimizer_nanos_.Add(nanos);
  metrics.calls->Add(1);
  metrics.optimize_nanos->Observe(nanos);
  {
    MutexLock lock(shard.mutex);
    shard.cache.emplace(key, cost);
  }
  return cost;
}

std::vector<WhatIfOptimizer::CacheEntry> WhatIfOptimizer::ExportCache(
    const std::unordered_map<const void*, uint64_t>& query_ids) {
  std::vector<CacheEntry> out;
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, cost] : shard.cache) {
      const auto it = query_ids.find(key.query);
      if (it == query_ids.end()) continue;
      out.push_back(CacheEntry{it->second, key.config_hash, cost});
    }
  }
  return out;
}

void WhatIfOptimizer::ImportCache(
    const std::vector<CacheEntry>& entries,
    const std::vector<const sql::BoundQuery*>& queries) {
  for (const CacheEntry& entry : entries) {
    if (entry.query_id >= queries.size()) continue;
    const Key key{queries[entry.query_id], entry.config_hash};
    Shard& shard = shards_[KeyHash()(key) % kShards];
    MutexLock lock(shard.mutex);
    shard.cache.emplace(key, entry.cost);
  }
}

}  // namespace isum::engine
