#include "engine/what_if.h"

#include <chrono>

#include "obs/trace.h"

namespace isum::engine {

namespace {

/// Process-wide mirrors of the per-instance counters, aggregated across
/// every WhatIfOptimizer in the process (metric names in
/// docs/OBSERVABILITY.md). Pointers are cached once; the registry owns them.
struct WhatIfMetrics {
  obs::Counter* calls;
  obs::Counter* hits;
  obs::Histogram* optimize_nanos;

  static const WhatIfMetrics& Get() {
    static const WhatIfMetrics m = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return WhatIfMetrics{registry.GetCounter("whatif.optimizer_calls"),
                           registry.GetCounter("whatif.cache_hits"),
                           registry.GetHistogram("whatif.optimize_nanos")};
    }();
    return m;
  }
};

}  // namespace

double WhatIfOptimizer::Cost(const sql::BoundQuery& query,
                             const Configuration& config) {
  const WhatIfMetrics& metrics = WhatIfMetrics::Get();
  const Key key{&query, config.StableHash()};
  Shard& shard = shards_[KeyHash()(key) % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.cache.find(key);
    if (it != shard.cache.end()) {
      cache_hits_.Add(1);
      metrics.hits->Add(1);
      return it->second;
    }
  }
  uint64_t nanos = 0;
  double cost = 0.0;
  {
    ISUM_TRACE_SPAN("whatif/optimize");
    const auto start = std::chrono::steady_clock::now();
    cost = optimizer_.Cost(query, config);
    nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  optimizer_calls_.Add(1);
  optimizer_nanos_.Add(nanos);
  metrics.calls->Add(1);
  metrics.optimize_nanos->Observe(nanos);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.emplace(key, cost);
  }
  return cost;
}

}  // namespace isum::engine
