// Quickstart: build a small catalog and workload by hand, compress it with
// ISUM, tune the compressed workload, and report the improvement on the full
// workload. Mirrors the paper's Figure 4 pipeline end to end.

#include <cstdio>

#include "catalog/schema_builder.h"
#include "eval/pipeline.h"
#include "workload/workload.h"

using namespace isum;  // example code; libraries never do this

int main() {
  // --- 1. Declare a schema (a toy web-shop). ---
  catalog::Catalog cat;
  catalog::SchemaBuilder builder(&cat);
  builder.Table("users", 2'000'000)
      .Key("user_id", catalog::ColumnType::kInt)
      .Col("country", catalog::ColumnType::kVarchar, 2)
      .Col("age", catalog::ColumnType::kInt)
      .Col("signup_date", catalog::ColumnType::kDate);
  builder.Table("orders", 20'000'000)
      .Key("order_id", catalog::ColumnType::kInt)
      .Col("user_id", catalog::ColumnType::kInt)
      .Col("status", catalog::ColumnType::kChar, 1)
      .Col("order_date", catalog::ColumnType::kDate)
      .Col("amount", catalog::ColumnType::kDecimal);
  builder.Table("items", 60'000'000)
      .Col("order_id", catalog::ColumnType::kInt)
      .Col("product_id", catalog::ColumnType::kInt)
      .Col("quantity", catalog::ColumnType::kInt)
      .Col("price", catalog::ColumnType::kDecimal);

  // --- 2. Statistics (defaults derived from the catalog are fine here). ---
  stats::StatsManager stats(&cat);
  engine::CostModel cost_model(&cat, &stats);

  // --- 3. The input workload: SQL text in, costs estimated automatically. ---
  workload::Workload w(workload::Workload::Environment{&cat, &stats, &cost_model});
  const char* queries[] = {
      "SELECT COUNT(*) FROM orders WHERE order_date >= '2024-01-01' AND "
      "order_date < '2024-02-01'",
      "SELECT u.country, SUM(o.amount) FROM users u, orders o WHERE "
      "u.user_id = o.user_id AND o.status = 'C' GROUP BY u.country",
      "SELECT o.order_id, SUM(i.price * i.quantity) FROM orders o, items i "
      "WHERE o.order_id = i.order_id AND o.order_date >= '2024-03-01' "
      "GROUP BY o.order_id ORDER BY o.order_id LIMIT 50",
      "SELECT user_id, COUNT(*) FROM orders WHERE amount > 500 GROUP BY "
      "user_id",
      "SELECT u.age, COUNT(*) FROM users u WHERE u.country = 'DE' GROUP BY "
      "u.age ORDER BY u.age",
      "SELECT i.product_id, SUM(i.quantity) FROM items i GROUP BY "
      "i.product_id ORDER BY i.product_id LIMIT 100",
  };
  for (const char* sql : queries) {
    const Status st = w.AddQuery(sql);
    if (!st.ok()) {
      std::printf("failed to add query: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("workload: %zu queries, C(W) = %.0f\n", w.size(), w.TotalCost());

  // --- 4. Compress with ISUM to k = 3 weighted queries. ---
  core::Isum isum(&w);
  workload::CompressedWorkload compressed = isum.Compress(3);
  for (const auto& e : compressed.entries) {
    std::printf("selected q%zu (weight %.3f): %.60s...\n", e.query_index,
                e.weight, w.query(e.query_index).sql.c_str());
  }

  // --- 5. Tune the compressed workload and evaluate on the full one. ---
  advisor::TuningOptions tuning;
  tuning.max_indexes = 5;
  eval::EvaluationResult result = eval::RunPipeline(
      w, compressed, eval::MakeDtaTuner(w, tuning), "ISUM");

  std::printf("\nrecommended indexes:\n%s",
              result.tuning.configuration.DebugString(cat).c_str());
  std::printf("optimizer calls during tuning: %llu\n",
              static_cast<unsigned long long>(result.tuning.optimizer_calls));
  std::printf("improvement on full workload: %.1f%%\n",
              result.improvement_percent);
  return 0;
}
