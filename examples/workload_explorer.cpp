// workload_explorer: inspect how ISUM sees queries. Parses SQL against the
// TPC-H-like catalog (queries passed as CLI arguments, or a built-in demo
// set), then prints for each query: its template, indexable columns per
// role, rule-based and stats-based feature weights, and utility — plus the
// pairwise weighted-Jaccard similarity matrix.
//
// Usage: workload_explorer ["SELECT ..."]...

#include <cstdio>

#include "advisor/candidate_generation.h"
#include "core/isum.h"
#include "sql/templatizer.h"
#include "workload/workload_factory.h"

using namespace isum;

int main(int argc, char** argv) {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  gen.max_templates = 1;  // catalog + stats only; we add our own queries
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  workload::Workload w(workload::Workload::Environment{
      env.catalog.get(), env.stats.get(), env.cost_model.get()});

  std::vector<std::string> sqls;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) sqls.emplace_back(argv[i]);
  } else {
    sqls = {
        "SELECT COUNT(*) FROM lineitem WHERE l_shipdate >= '1995-01-01' AND "
        "l_shipdate < '1996-01-01' AND l_discount BETWEEN 0.05 AND 0.07",
        "SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem, orders WHERE "
        "l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' GROUP BY "
        "l_orderkey ORDER BY l_orderkey",
        "SELECT c_mktsegment, COUNT(*) FROM customer WHERE c_acctbal > 1000 "
        "GROUP BY c_mktsegment",
    };
  }
  for (const std::string& sql : sqls) {
    const Status st = w.AddQuery(sql);
    if (!st.ok()) {
      std::printf("rejected: %s\n  %s\n", st.ToString().c_str(), sql.c_str());
    }
  }
  if (w.empty()) return 1;

  core::FeatureSpace space;
  core::Featurizer featurizer(env.catalog.get(), env.stats.get(), &space);
  core::FeaturizationOptions stats_options;
  stats_options.scheme = core::WeightingScheme::kStatsBased;
  const std::vector<double> utilities =
      core::ComputeUtilities(w, core::UtilityMode::kCostOnly);

  std::vector<core::SparseVector> features;
  for (size_t i = 0; i < w.size(); ++i) {
    const workload::QueryInfo& q = w.query(i);
    std::printf("=== q%zu  cost=%.0f  utility=%.3f\n  %s\n", i, q.base_cost,
                utilities[i], q.sql.c_str());

    const advisor::IndexableColumns cols =
        advisor::ExtractIndexableColumns(q.bound);
    auto print_role = [&](const char* role,
                          const std::vector<catalog::ColumnId>& ids) {
      if (ids.empty()) return;
      std::printf("  %-9s:", role);
      for (catalog::ColumnId c : ids) {
        std::printf(" %s", env.catalog->ColumnDebugName(c).c_str());
      }
      std::printf("\n");
    };
    print_role("filter", cols.filter_columns);
    print_role("join", cols.join_columns);
    print_role("group-by", cols.group_by_columns);
    print_role("order-by", cols.order_by_columns);

    const core::SparseVector rule = featurizer.Featurize(q.bound);
    const core::SparseVector stat = featurizer.Featurize(q.bound, stats_options);
    std::printf("  features (rule / stats weights):\n");
    for (const auto& e : rule.entries()) {
      std::printf("    %-28s %6.3f / %6.3f\n",
                  env.catalog->ColumnDebugName(space.column(e.feature)).c_str(),
                  e.weight, stat.Get(e.feature));
    }
    features.push_back(rule);
  }

  std::printf("\nWeighted-Jaccard similarity matrix (rule-based features):\n    ");
  for (size_t j = 0; j < features.size(); ++j) std::printf("   q%-3zu", j);
  std::printf("\n");
  for (size_t i = 0; i < features.size(); ++i) {
    std::printf("q%-3zu", i);
    for (size_t j = 0; j < features.size(); ++j) {
      std::printf("  %5.2f", core::WeightedJaccard(features[i], features[j]));
    }
    std::printf("\n");
  }
  return 0;
}
