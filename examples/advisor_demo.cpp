// advisor_demo: a tour of the index-advisor substrate (Figure 1 of the
// paper): syntactic candidate generation per Table 1, what-if costing of
// individual candidates, greedy enumeration, and before/after plan explains.

#include <cstdio>

#include "advisor/advisor.h"
#include "engine/what_if.h"
#include "workload/workload_factory.h"

using namespace isum;

int main() {
  workload::GeneratorOptions gen;
  gen.instances_per_template = 1;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  const workload::Workload& w = *env.workload;

  // Pick TPC-H Q3 (customer/orders/lineitem join with filters + group/order).
  const workload::QueryInfo& q = w.query(2);
  std::printf("Query (%s):\n  %s\n\n", q.tag.c_str(), q.sql.c_str());

  // --- 1. Syntactically relevant candidates (Table 1 rules). ---
  const std::vector<engine::Index> candidates =
      advisor::GenerateCandidates(q.bound, *env.stats);
  std::printf("Candidate indexes (%zu):\n", candidates.size());
  engine::WhatIfOptimizer what_if(env.cost_model.get());
  const double base = what_if.Cost(q.bound, engine::Configuration());
  for (const engine::Index& index : candidates) {
    engine::Configuration single;
    single.Add(index);
    const double cost = what_if.Cost(q.bound, single);
    std::printf("  %-60s what-if improvement %6.1f%%\n",
                index.DebugName(*env.catalog).c_str(),
                (base - cost) / base * 100.0);
  }

  // --- 2. Baseline plan. ---
  std::printf("\nPlan without indexes (cost %.0f):\n%s\n", base,
              what_if.Plan(q.bound, engine::Configuration())
                  .Explain(*env.catalog)
                  .c_str());

  // --- 3. Tune the whole workload and re-explain. ---
  std::vector<advisor::WeightedQuery> queries;
  for (size_t i = 0; i < w.size(); ++i) {
    queries.push_back({&w.query(i).bound, 1.0});
  }
  advisor::TuningOptions options;
  options.max_indexes = 10;
  advisor::DtaStyleAdvisor advisor(env.cost_model.get());
  const advisor::TuningResult result = advisor.Tune(queries, options);

  std::printf("Recommended configuration (%zu indexes, %llu optimizer calls, "
              "%llu configurations explored):\n%s\n",
              result.configuration.size(),
              static_cast<unsigned long long>(result.optimizer_calls),
              static_cast<unsigned long long>(result.configurations_explored),
              result.configuration.DebugString(*env.catalog).c_str());

  const double tuned = what_if.Cost(q.bound, result.configuration);
  std::printf("Plan with recommended indexes (cost %.0f, %.1f%% better):\n%s",
              tuned, (base - tuned) / base * 100.0,
              what_if.Plan(q.bound, result.configuration)
                  .Explain(*env.catalog)
                  .c_str());

  // --- 4. Workload-level drill-down. ---
  std::printf("\nPer-query improvement under the recommendation:\n");
  for (size_t i = 0; i < w.size(); ++i) {
    const double before = w.query(i).base_cost;
    const double after = what_if.Cost(w.query(i).bound, result.configuration);
    std::printf("  %-4s %10.0f -> %10.0f  (%5.1f%%)\n", w.query(i).tag.c_str(),
                before, after, (before - after) / before * 100.0);
  }
  return 0;
}
