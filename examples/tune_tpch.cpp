// tune_tpch: the paper's headline experiment in miniature. Generates a
// TPC-H-like workload, compresses it with ISUM and every baseline, tunes
// each compressed workload with the DTA-style advisor and reports the
// improvement each achieves on the FULL workload — plus the time budget
// (compression + tuning) spent to get there.
//
// Usage: tune_tpch [k] [instances_per_template]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "baselines/gsum.h"
#include "baselines/kmedoid.h"
#include "baselines/simple.h"
#include "common/string_util.h"
#include "eval/pipeline.h"
#include "eval/reporting.h"
#include "workload/workload_factory.h"

using namespace isum;

int main(int argc, char** argv) {
  const size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const int instances = argc > 2 ? std::atoi(argv[2]) : 8;

  workload::GeneratorOptions gen;
  gen.instances_per_template = instances;
  workload::GeneratedWorkload env = workload::MakeTpch(gen);
  std::printf("TPC-H-like workload: %zu queries, %zu templates, C(W)=%.3g\n",
              env.workload->size(), env.workload->NumTemplates(),
              env.workload->TotalCost());

  advisor::TuningOptions tuning;
  tuning.max_indexes = 20;
  const eval::TunerFn tuner = eval::MakeDtaTuner(*env.workload, tuning);

  // Reference: tuning the entire workload.
  workload::CompressedWorkload full;
  for (size_t i = 0; i < env.workload->size(); ++i) full.entries.push_back({i, 1.0});
  full.NormalizeWeights();
  const eval::EvaluationResult full_result =
      eval::RunPipeline(*env.workload, full, tuner, "FULL");

  std::vector<std::unique_ptr<baselines::Compressor>> algorithms;
  algorithms.push_back(std::make_unique<baselines::UniformSamplingCompressor>(1));
  algorithms.push_back(std::make_unique<baselines::TopCostCompressor>());
  algorithms.push_back(std::make_unique<baselines::StratifiedCompressor>(1));
  algorithms.push_back(std::make_unique<baselines::GsumCompressor>());
  algorithms.push_back(std::make_unique<baselines::KMedoidCompressor>(1));
  algorithms.push_back(std::make_unique<eval::IsumCompressor>());
  algorithms.push_back(std::make_unique<eval::IsumCompressor>(
      core::IsumOptions::StatsVariant(), "ISUM-S"));

  eval::Table table({"algorithm", "improvement_pct", "of_full_tuning_pct",
                     "compress_s", "tune_s", "indexes"});
  for (const auto& algorithm : algorithms) {
    const auto t0 = std::chrono::steady_clock::now();
    const workload::CompressedWorkload compressed =
        algorithm->Compress(*env.workload, k);
    const double compress_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const eval::EvaluationResult r =
        eval::RunPipeline(*env.workload, compressed, tuner, algorithm->name());
    table.AddRow(algorithm->name(),
                 {r.improvement_percent,
                  100.0 * r.improvement_percent /
                      std::max(1e-9, full_result.improvement_percent),
                  compress_s, r.tuning_seconds,
                  static_cast<double>(r.tuning.configuration.size())});
  }
  table.AddRow("FULL (no compression)",
               {full_result.improvement_percent, 100.0, 0.0,
                full_result.tuning_seconds,
                static_cast<double>(full_result.tuning.configuration.size())});
  table.Print(StrFormat("Compress to k=%zu -> tune -> evaluate on all %zu "
                        "queries",
                        k, env.workload->size()));
  return 0;
}
