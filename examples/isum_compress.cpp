// isum_compress: a command-line workload compressor — the adoption path for
// using ISUM on your own schema and workload without writing C++.
//
//   isum_compress --schema schema.sql --workload workload.sql ...
//     with flags: [--k 20] [--algorithm summary|allpairs] [--variant rule|stats]
//       [--tune [--max-indexes 20]] [--csv]
//
// schema.sql   : CREATE TABLE statements (see sql/ddl_parser.h), each table
//                optionally annotated WITH (ROWS = n).
// workload.sql : one or more SELECT statements separated by ';'.
//
// Output: the selected queries with their weights; with --tune, also the
// recommended indexes and the estimated improvement on the full workload.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "eval/drilldown.h"
#include "eval/pipeline.h"
#include "sql/ddl_parser.h"
#include "stats/stats_loader.h"
#include "workload/query_store.h"
#include "workload/workload.h"

using namespace isum;

namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Splits a script into statements on ';', respecting quoted strings and
/// dropping '--' comments and blank statements.
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      current.push_back('\n');
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      if (!Trim(current).empty()) out.emplace_back(Trim(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (!Trim(current).empty()) out.emplace_back(Trim(current));
  return out;
}

const char* ArgValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr,
               "usage: isum_compress --schema schema.sql --workload "
               "workload.sql [--k 20]\n"
               "                     [--algorithm summary|allpairs] "
               "[--variant rule|stats]\n"
               "                     [--tune] [--max-indexes 20] [--csv]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* schema_path = ArgValue(argc, argv, "--schema");
  const char* workload_path = ArgValue(argc, argv, "--workload");
  if (schema_path == nullptr || workload_path == nullptr) return Usage();
  const char* k_arg = ArgValue(argc, argv, "--k");
  const size_t k = k_arg != nullptr ? std::strtoul(k_arg, nullptr, 10) : 20;
  const char* algorithm = ArgValue(argc, argv, "--algorithm");
  const char* variant = ArgValue(argc, argv, "--variant");
  const bool tune = HasFlag(argc, argv, "--tune");
  const bool csv = HasFlag(argc, argv, "--csv");
  const char* max_indexes_arg = ArgValue(argc, argv, "--max-indexes");

  // --- Schema. ---
  auto ddl = ReadFile(schema_path);
  if (!ddl.ok()) {
    std::fprintf(stderr, "%s\n", ddl.status().ToString().c_str());
    return 1;
  }
  catalog::Catalog cat;
  auto created = sql::ParseSchema(*ddl, &cat);
  if (!created.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 created.status().ToString().c_str());
    return 1;
  }
  stats::StatsManager stats(&cat);
  engine::CostModel cost_model(&cat, &stats);
  std::fprintf(stderr, "schema: %d tables\n", *created);

  // Optional per-column statistics (JSONL; see stats/stats_loader.h).
  if (const char* stats_path = ArgValue(argc, argv, "--stats")) {
    auto spec = ReadFile(stats_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 1;
    }
    auto loaded = stats::LoadColumnStats(*spec, cat, &stats);
    if (!loaded.ok()) {
      std::fprintf(stderr, "stats error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "statistics: %d columns\n", *loaded);
  }

  // --- Workload. ---
  auto script = ReadFile(workload_path);
  if (!script.ok()) {
    std::fprintf(stderr, "%s\n", script.status().ToString().c_str());
    return 1;
  }
  workload::Workload w(
      workload::Workload::Environment{&cat, &stats, &cost_model});
  int rejected = 0;
  if (HasFlag(argc, argv, "--query-store")) {
    // Workload file is a Query-Store JSONL log: SQL + recorded costs, no
    // optimizer calls needed (paper §10).
    auto loaded = workload::LoadQueryStore(*script, &w);
    if (!loaded.ok()) {
      std::fprintf(stderr, "query store error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
  } else {
    for (const std::string& sql : SplitStatements(*script)) {
      const Status st = w.AddQuery(sql);
      if (!st.ok()) {
        std::fprintf(stderr, "skipping query (%s): %.80s\n",
                     st.ToString().c_str(), sql.c_str());
        ++rejected;
      }
    }
  }
  if (const char* dump = ArgValue(argc, argv, "--save-query-store")) {
    std::ofstream out(dump);
    out << workload::SaveQueryStore(w);
    std::fprintf(stderr, "saved query store to %s\n", dump);
  }
  std::fprintf(stderr, "workload: %zu queries (%d rejected), %zu templates\n",
               w.size(), rejected, w.NumTemplates());
  if (w.empty()) return 1;

  // --- Compress. ---
  core::IsumOptions options;
  if (variant != nullptr && std::strcmp(variant, "stats") == 0) {
    options = core::IsumOptions::StatsVariant();
  }
  if (algorithm != nullptr && std::strcmp(algorithm, "allpairs") == 0) {
    options.algorithm = core::SelectionAlgorithm::kAllPairs;
  }
  core::Isum isum(&w, options);
  const workload::CompressedWorkload compressed = isum.Compress(k);
  if (compressed.size() < std::min(k, w.size())) {
    std::fprintf(stderr,
                 "note: selected %zu < k=%zu queries (the rest have no "
                 "indexable columns — nothing for an index tuner to use)\n",
                 compressed.size(), k);
  }

  if (csv) {
    std::printf("weight,sql\n");
    for (const auto& e : compressed.entries) {
      std::string quoted = w.query(e.query_index).sql;
      std::printf("%.6f,\"%s\"\n", e.weight, quoted.c_str());
    }
  } else {
    std::printf("-- compressed workload (%zu of %zu queries)\n",
                compressed.size(), w.size());
    for (const auto& e : compressed.entries) {
      std::printf("-- weight %.4f\n%s;\n", e.weight,
                  w.query(e.query_index).sql.c_str());
    }
  }

  // --- Optional tuning. ---
  if (tune) {
    advisor::TuningOptions tuning;
    if (max_indexes_arg != nullptr) {
      tuning.max_indexes = std::atoi(max_indexes_arg);
    }
    const eval::EvaluationResult result = eval::RunPipeline(
        w, compressed, eval::MakeDtaTuner(w, tuning), "ISUM");
    std::printf("\n-- recommended indexes (tuning the compressed workload):\n");
    int ordinal = 0;
    for (const engine::Index& index : result.tuning.configuration.indexes()) {
      std::printf("%s\n", index.ToDdl(cat, ordinal++).c_str());
    }
    std::printf("-- estimated improvement on the full workload: %.1f%%\n",
                result.improvement_percent);
    if (HasFlag(argc, argv, "--drilldown")) {
      const eval::DrilldownReport report =
          eval::BuildDrilldown(w, compressed, result.tuning.configuration);
      std::printf("\n%s", report.ToString(w).c_str());
    }
  }
  return 0;
}
