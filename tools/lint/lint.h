#ifndef ISUM_TOOLS_LINT_LINT_H_
#define ISUM_TOOLS_LINT_LINT_H_

#include <map>
#include <string>
#include <vector>

namespace isum::lint {

/// A mechanical replacement attached to a violation: replace the half-open
/// column range [col_begin, col_end) on `line` (both 1-based) with
/// `replacement`. Applied by `isum_lint --fix` via ApplyFixes().
struct FixIt {
  int line = 0;
  int col_begin = 0;
  int col_end = 0;
  std::string replacement;
};

/// One rule violation at a source location. `rule` is the NOLINT slug
/// (e.g. "isum-no-assert"); `message` explains the specific finding.
/// `fixes` is non-empty only for mechanically fixable rules
/// (isum-include-guard guard renames, isum-guarded-by type swaps).
struct Violation {
  std::string file;
  int line = 0;
  int column = 1;
  std::string rule;
  std::string message;
  std::vector<FixIt> fixes;

  /// Renders as "file:line:col: [rule] message" (machine-readable, one per
  /// line; mirrors compiler diagnostics so editors can jump to it).
  std::string ToString() const;
};

/// Names of every rule the checker knows, as accepted by NOLINT(...).
std::vector<std::string> KnownRules();

/// ---- Token stream ----
///
/// The rule engine runs on a lexed token stream, not raw lines: comments
/// and string/character literals (including multi-line block comments and
/// raw strings with custom delimiters) can never produce or mask findings,
/// and scope-tracking rules (loop bodies, lock scopes, class bodies) see
/// real brace structure across physical lines.

struct Token {
  enum class Kind {
    kIdent,    ///< identifier or keyword
    kNumber,   ///< numeric literal (including hex, separators, exponents)
    kString,   ///< string literal ("...", R"delim(...)delim"); text is the
               ///< placeholder "<string>" — contents never reach the rules
    kChar,     ///< character literal; text is "<char>"
    kPunct,    ///< one punctuation character, except "::" which is one token
    kPreproc,  ///< a directive head at the start of a line, e.g. "#ifndef"
  };
  Kind kind = Kind::kPunct;
  std::string text;
  std::string raw;  ///< kString only: the literal's verbatim source text,
                    ///< for rules that inspect string *contents* (the
                    ///< journal-schema rule); empty for every other kind
  int line = 0;     ///< 1-based
  int col = 0;      ///< 1-based byte column of the token's first character
};

/// Rules suppressed by one NOLINT / NOLINTNEXTLINE directive. An empty
/// `rules` list with `blanket` set suppresses everything on the line.
struct Suppression {
  bool blanket = false;
  std::vector<std::string> rules;
};

/// A lexed translation unit: the token stream plus the NOLINT directives
/// harvested from real comments (a "NOLINT" inside a string literal is
/// data, not a directive, and is ignored).
struct LexedSource {
  std::vector<Token> tokens;
  std::map<int, Suppression> nolint;       ///< NOLINT(...) on this line
  std::map<int, Suppression> nolint_next;  ///< NOLINTNEXTLINE(...) here
};

/// Lexes C++ source. Never fails: unterminated constructs run to EOF.
LexedSource Lex(const std::string& content);

/// Function names declared in a header with a Status/StatusOr return type.
/// Collected in a first pass over headers so the unchecked-status rule can
/// flag `(void)`-laundered calls in a second pass.
struct StatusApi {
  std::vector<std::string> function_names;
};

/// Scans header `content` for Status/StatusOr-returning function
/// declarations and records their names into `api`. Declarations wrapped
/// across physical lines need no special casing — the token stream spans
/// lines.
void CollectStatusApi(const std::string& content, StatusApi* api);

/// Lints one file's `content`. `path` is the repo-relative path, used for
/// reporting and for path-scoped rules: rule families activate per
/// directory (e.g. isum-no-stdio only under src/ — tools, benches, and
/// tests legitimately own stdio; see docs/ANALYSIS.md for the matrix).
/// Appends findings to `out`.
void LintFile(const std::string& path, const std::string& content,
              const StatusApi& api, std::vector<Violation>* out);

/// Applies every FixIt carried by `violations` to `content` and returns the
/// patched text. Fixes are applied bottom-up so earlier replacements never
/// shift later ones; overlapping fixes keep the first and drop the rest.
std::string ApplyFixes(const std::string& content,
                       const std::vector<Violation>& violations);

/// ---- Machine-readable output ----

/// {"violations":[{file,line,column,rule,message,fixable},...]} — one
/// top-level object, stable key order.
std::string ToJson(const std::vector<Violation>& violations);

/// SARIF 2.1.0 document (one run, driver "isum_lint", every known rule
/// listed, one result per violation). Consumed by the CI lint job's SARIF
/// upload.
std::string ToSarif(const std::vector<Violation>& violations);

}  // namespace isum::lint

#endif  // ISUM_TOOLS_LINT_LINT_H_
