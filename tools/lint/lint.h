#ifndef ISUM_TOOLS_LINT_LINT_H_
#define ISUM_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

namespace isum::lint {

/// One rule violation at a source location. `rule` is the NOLINT slug
/// (e.g. "isum-no-assert"); `message` explains the specific finding.
struct Violation {
  std::string file;
  int line = 0;
  int column = 1;
  std::string rule;
  std::string message;

  /// Renders as "file:line:col: [rule] message" (machine-readable, one per
  /// line; mirrors compiler diagnostics so editors can jump to it).
  std::string ToString() const;
};

/// Names of every rule the checker knows, as accepted by NOLINT(...).
std::vector<std::string> KnownRules();

/// Function names declared in a header with a Status/StatusOr return type.
/// Collected in a first pass over headers so the unchecked-status rule can
/// flag `(void)`-laundered calls in a second pass.
struct StatusApi {
  std::vector<std::string> function_names;
};

/// Scans header `content` for Status/StatusOr-returning function
/// declarations and records their names into `api`.
void CollectStatusApi(const std::string& content, StatusApi* api);

/// Lints one file's `content`. `path` is the repo-relative path (used both
/// for reporting and for path-scoped rules, e.g. the include-guard pattern
/// and the rng.cc exemption). Appends findings to `out`.
void LintFile(const std::string& path, const std::string& content,
              const StatusApi& api, std::vector<Violation>* out);

/// Strips comments and string/character literals from one line of code,
/// updating `in_block_comment` across calls. Exposed for tests. Characters
/// inside literals are replaced with spaces so columns stay aligned;
/// comment text is removed except that NOLINT directives are honored by the
/// caller before stripping.
std::string StripCommentsAndLiterals(const std::string& line,
                                     bool* in_block_comment);

}  // namespace isum::lint

#endif  // ISUM_TOOLS_LINT_LINT_H_
