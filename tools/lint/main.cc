// isum_lint: repo-specific static checks for the ISUM library sources.
//
// Usage:
//   isum_lint [--list-rules] [--format=text|json|sarif] [--fix]
//             <dir-or-file>...
//
// Scans the given directories (recursively; .h/.cc files) in two passes:
// first collects Status/StatusOr-returning API names from headers, then
// applies every rule. Violations print one per line as
//   file:line:col: [isum-rule] message
// and the exit code is 1 when any violation is found. Suppress a finding
// with `// NOLINT(isum-rule)` on the offending line or
// `// NOLINTNEXTLINE(isum-rule)` on the line above, with a justification.
//
// --format=json|sarif writes one machine-readable document to stdout (the
// human summary moves to stderr); SARIF is what the CI lint job uploads.
// --fix applies the mechanical FixIts (include-guard renames, isum-guarded-by
// type swaps) in place, then reports what remains; the exit code reflects
// only the unfixed findings.
//
// This binary is a developer tool, not library code; it may use stdio.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Path as reported in diagnostics: relative to the current directory when
/// possible (so output matches what was passed on the command line), with
/// forward slashes.
std::string DisplayPath(const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, fs::current_path(), ec);
  const fs::path& chosen = (!ec && !rel.empty()) ? rel : p;
  return chosen.lexically_normal().generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string format = "text";
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : isum::lint::KnownRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: isum_lint [--list-rules] [--format=text|json|sarif] "
          "[--fix] <dir-or-file>...\n");
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "isum_lint: unknown --format=%s\n",
                     format.c_str());
        return 2;
      }
      continue;
    }
    if (arg == "--fix") {
      fix = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "isum_lint: unknown flag %s\n", arg.c_str());
      return 2;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "isum_lint: no inputs; pass src/ or a file list\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "isum_lint: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: learn which functions return Status/StatusOr.
  isum::lint::StatusApi api;
  for (const fs::path& f : files) {
    if (f.extension() == ".h") isum::lint::CollectStatusApi(ReadFile(f), &api);
  }

  // Pass 2: lint.
  std::vector<isum::lint::Violation> violations;
  std::map<std::string, fs::path> display_to_path;
  for (const fs::path& f : files) {
    const std::string display = DisplayPath(f);
    display_to_path[display] = f;
    isum::lint::LintFile(display, ReadFile(f), api, &violations);
  }

  // --fix: apply the mechanical fixes file by file, then drop the fixed
  // violations from the report (what remains needs a human).
  if (fix) {
    size_t fixed = 0;
    std::map<std::string, std::vector<isum::lint::Violation>> by_file;
    for (const auto& v : violations) {
      if (!v.fixes.empty()) by_file[v.file].push_back(v);
    }
    for (const auto& [display, fixable] : by_file) {
      const fs::path& p = display_to_path[display];
      const std::string before = ReadFile(p);
      const std::string after = isum::lint::ApplyFixes(before, fixable);
      if (after == before) continue;
      std::ofstream outf(p, std::ios::binary | std::ios::trunc);
      outf << after;
      fixed += fixable.size();
    }
    if (fixed > 0) {
      std::fprintf(stderr, "isum_lint: fixed %zu violation(s) in %zu file(s)\n",
                   fixed, by_file.size());
    }
    std::vector<isum::lint::Violation> remaining;
    for (auto& v : violations) {
      if (v.fixes.empty()) remaining.push_back(std::move(v));
    }
    violations = std::move(remaining);
  }

  if (format == "json") {
    std::printf("%s\n", isum::lint::ToJson(violations).c_str());
  } else if (format == "sarif") {
    std::printf("%s\n", isum::lint::ToSarif(violations).c_str());
  } else {
    for (const auto& v : violations) {
      std::printf("%s\n", v.ToString().c_str());
    }
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "isum_lint: %zu violation(s) in %zu file(s) scanned\n",
                 violations.size(), files.size());
    return 1;
  }
  if (format == "text") {
    std::printf("isum_lint: %zu file(s) clean\n", files.size());
  } else {
    std::fprintf(stderr, "isum_lint: %zu file(s) clean\n", files.size());
  }
  return 0;
}
