// isum_lint: repo-specific static checks for the ISUM library sources.
//
// Usage:
//   isum_lint [--list-rules] <dir-or-file>...
//
// Scans the given directories (recursively; .h/.cc files) in two passes:
// first collects Status/StatusOr-returning API names from headers, then
// applies every rule. Violations print one per line as
//   file:line:col: [isum-rule] message
// and the exit code is 1 when any violation is found. Suppress a finding
// with `// NOLINT(isum-rule)` on the offending line or
// `// NOLINTNEXTLINE(isum-rule)` on the line above, with a justification.
//
// This binary is a developer tool, not library code; it may use stdio.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Path as reported in diagnostics: relative to the current directory when
/// possible (so output matches what was passed on the command line), with
/// forward slashes.
std::string DisplayPath(const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, fs::current_path(), ec);
  const fs::path& chosen = (!ec && !rel.empty()) ? rel : p;
  return chosen.lexically_normal().generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : isum::lint::KnownRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: isum_lint [--list-rules] <dir-or-file>...\n");
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) {
    std::fprintf(stderr, "isum_lint: no inputs; pass src/ or a file list\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "isum_lint: no such file or directory: %s\n",
                   root.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: learn which functions return Status/StatusOr.
  isum::lint::StatusApi api;
  for (const fs::path& f : files) {
    if (f.extension() == ".h") isum::lint::CollectStatusApi(ReadFile(f), &api);
  }

  // Pass 2: lint.
  std::vector<isum::lint::Violation> violations;
  for (const fs::path& f : files) {
    isum::lint::LintFile(DisplayPath(f), ReadFile(f), api, &violations);
  }

  for (const auto& v : violations) {
    std::printf("%s\n", v.ToString().c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "isum_lint: %zu violation(s) in %zu file(s) scanned\n",
                 violations.size(), files.size());
    return 1;
  }
  std::printf("isum_lint: %zu file(s) clean\n", files.size());
  return 0;
}
