#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace isum::lint {

namespace {

constexpr const char kNoAssert[] = "isum-no-assert";
constexpr const char kNoStdio[] = "isum-no-stdio";
constexpr const char kNoNondeterminism[] = "isum-no-nondeterminism";
constexpr const char kIncludeGuard[] = "isum-include-guard";
constexpr const char kMissingOverride[] = "isum-missing-override";
constexpr const char kUncheckedStatus[] = "isum-unchecked-status";
constexpr const char kNoRawClock[] = "isum-no-raw-clock";
constexpr const char kNoPerPairAlloc[] = "isum-no-perpair-alloc";

/// Files on the similarity/selection hot path, where a per-iteration
/// std::vector costs a malloc per pair (the regression class the scratch
/// overloads in core/features.h exist to prevent; docs/BENCHMARKING.md).
constexpr const char* kHotPathFiles[] = {
    "src/core/features.cc",      "src/core/summary.cc",
    "src/core/compression_state.cc", "src/core/benefit.cc",
    "src/core/weighing.cc",      "src/core/incremental.cc",
    "src/baselines/kmedoid.cc",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Returns the 0-based index of `token` in `line` at a word boundary (the
/// characters around the match are not identifier characters), or npos.
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

/// Like FindToken but requires the token to be a call: the next
/// non-whitespace character after the token must be '('.
size_t FindCall(const std::string& line, const std::string& token) {
  size_t pos = FindToken(line, token);
  while (pos != std::string::npos) {
    size_t after = pos + token.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(') return pos;
    pos = FindToken(line, token, pos + 1);
  }
  return std::string::npos;
}

/// Parses a NOLINT / NOLINTNEXTLINE directive out of a raw source line.
/// Returns true if one is present; fills `rules` with the slugs listed in
/// parentheses (empty => suppress every rule).
bool ParseNolint(const std::string& raw, const char* directive,
                 std::vector<std::string>* rules) {
  const size_t pos = raw.find(directive);
  if (pos == std::string::npos) return false;
  rules->clear();
  const size_t open = pos + std::string(directive).size();
  if (open >= raw.size() || raw[open] != '(') return true;  // blanket form
  const size_t close = raw.find(')', open);
  if (close == std::string::npos) return true;
  std::string inside = raw.substr(open + 1, close - open - 1);
  std::string current;
  for (char c : inside + ",") {
    if (c == ',') {
      const std::string t(Trim(current));
      if (!t.empty()) rules->push_back(t);
      current.clear();
    } else {
      current += c;
    }
  }
  return true;
}

bool Suppressed(const std::vector<std::string>& rules, const char* rule) {
  return rules.empty() ||
         std::find(rules.begin(), rules.end(), rule) != rules.end();
}

/// Expected include guard for a path: strip a leading "src/", uppercase,
/// map non-alphanumerics to '_', prefix ISUM_ and close with '_'.
/// "src/catalog/catalog.h" -> "ISUM_CATALOG_CATALOG_H_".
std::string ExpectedGuard(const std::string& path) {
  std::string p = path;
  // Repo-relative tail: after the last "src/" component (library code), or
  // from the "tools/" component (developer tools keep the tools/ prefix).
  const size_t s = p.rfind("src/");
  if (s != std::string::npos && (s == 0 || p[s - 1] == '/')) {
    p = p.substr(s + 4);
  } else {
    const size_t t = p.rfind("tools/");
    if (t != std::string::npos && (t == 0 || p[t - 1] == '/')) p = p.substr(t);
  }
  std::string guard = "ISUM_";
  for (char c : p) {
    guard += IsIdentChar(c) ? static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)))
                            : '_';
  }
  guard += '_';
  return guard;
}

/// True if `name` appears immediately before the first '(' that follows a
/// `(void)` cast at `void_pos` — i.e. the cast discards a call to `name`.
bool VoidCastTargets(const std::string& code, size_t void_pos,
                     const std::vector<std::string>& names,
                     std::string* hit) {
  size_t cursor = void_pos + 6;  // past "(void)"
  const size_t open = code.find('(', cursor);
  if (open == std::string::npos) return false;
  // Trailing identifier of the callee expression, e.g. "catalog_->CreateTable".
  size_t end = open;
  while (end > cursor && code[end - 1] == ' ') --end;
  size_t begin = end;
  while (begin > cursor && IsIdentChar(code[begin - 1])) --begin;
  const std::string callee = code.substr(begin, end - begin);
  if (callee.empty()) return false;
  for (const auto& n : names) {
    if (callee == n) {
      *hit = callee;
      return true;
    }
  }
  return false;
}

struct ClassContext {
  bool has_base = false;
  int open_depth = 0;  // brace depth at which the class body was entered
};

/// True if `code` (stripped) ends with `token` at a word boundary, ignoring
/// trailing whitespace.
bool EndsWithToken(const std::string& code, const std::string& token) {
  size_t end = code.size();
  while (end > 0 && (code[end - 1] == ' ' || code[end - 1] == '\t')) --end;
  if (end < token.size()) return false;
  if (code.compare(end - token.size(), token.size(), token) != 0) return false;
  const size_t begin = end - token.size();
  return begin == 0 || !IsIdentChar(code[begin - 1]);
}

/// True if a stripped line looks like the unfinished head of a wrapped
/// Status/StatusOr declaration — the return type ends the line (possibly
/// with open template arguments) and the function name follows on the next
/// physical line.
bool StatusDeclarationContinues(const std::string& code) {
  if (EndsWithToken(code, "Status") || EndsWithToken(code, "StatusOr")) {
    return true;
  }
  if (FindToken(code, "StatusOr") == std::string::npos) return false;
  int angle = 0;
  for (char c : code) {
    if (c == '<') ++angle;
    if (c == '>') --angle;
  }
  if (angle > 0) return true;  // template args span lines
  // Balanced template args but the line ends at the '>': name is wrapped.
  size_t end = code.size();
  while (end > 0 && (code[end - 1] == ' ' || code[end - 1] == '\t')) --end;
  return end > 0 && code[end - 1] == '>';
}

}  // namespace

std::string Violation::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ":" << column << ": [" << rule << "] "
     << message;
  return os.str();
}

std::vector<std::string> KnownRules() {
  return {kNoAssert,         kNoStdio,         kNoNondeterminism,
          kIncludeGuard,     kMissingOverride, kUncheckedStatus,
          kNoRawClock,       kNoPerPairAlloc};
}

std::string StripCommentsAndLiterals(const std::string& line,
                                     bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (*in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out += quote;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) break;
        out += ' ';
        ++i;
      }
      if (i < line.size()) out += quote;
      continue;
    }
    out += c;
  }
  return out;
}

void CollectStatusApi(const std::string& content, StatusApi* api) {
  std::istringstream in(content);
  std::string raw;
  bool in_block = false;
  // Physical lines are joined into logical declarations so wrapped returns
  // ("StatusOr<std::vector<int>>\n  Parse(...)") are still collected.
  std::vector<std::string> logical;
  std::string pending;
  int joins = 0;
  auto flush = [&] {
    if (!pending.empty()) logical.push_back(std::move(pending));
    pending.clear();
    joins = 0;
  };
  while (std::getline(in, raw)) {
    const std::string stripped = StripCommentsAndLiterals(raw, &in_block);
    if (pending.empty()) {
      pending = stripped;
    } else {
      pending += " " + stripped;
    }
    if (StatusDeclarationContinues(pending) && joins < 3) {
      ++joins;
      continue;
    }
    flush();
  }
  flush();
  for (const std::string& code : logical) {
    // Match "Status Name(" or "StatusOr<...> Name(" declarations.
    for (const char* ret : {"Status", "StatusOr"}) {
      size_t pos = FindToken(code, ret);
      if (pos == std::string::npos) continue;
      size_t cursor = pos + std::string(ret).size();
      if (cursor < code.size() && code[cursor] == '<') {
        int angle = 1;
        ++cursor;
        while (cursor < code.size() && angle > 0) {
          if (code[cursor] == '<') ++angle;
          if (code[cursor] == '>') --angle;
          ++cursor;
        }
        if (angle != 0) continue;  // template args span lines; skip
      } else if (std::string(ret) == "StatusOr") {
        continue;  // bare "StatusOr" without template args is not a return
      }
      while (cursor < code.size() && (code[cursor] == ' ' || code[cursor] == '&' ||
                                      code[cursor] == '*')) {
        ++cursor;
      }
      size_t name_end = cursor;
      while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
      if (name_end == cursor) continue;
      size_t paren = name_end;
      while (paren < code.size() && code[paren] == ' ') ++paren;
      if (paren >= code.size() || code[paren] != '(') continue;
      const std::string name = code.substr(cursor, name_end - cursor);
      auto& names = api->function_names;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
}

void LintFile(const std::string& path, const std::string& content,
              const StatusApi& api, std::vector<Violation>* out) {
  const bool is_header = path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  const bool is_rng = path.find("common/rng.") != std::string::npos;
  const bool is_core = path.find("src/core/") != std::string::npos;
  // Raw clock reads are allowed only where the injectable clock itself lives
  // (src/common/deadline.cc) and in the tracer (its own test clock hook).
  const bool is_clock_home = path.find("src/common/") != std::string::npos ||
                             path.find("src/obs/") != std::string::npos;
  const bool is_src = path.find("src/") != std::string::npos;
  bool is_hot_path = false;
  for (const char* hot : kHotPathFiles) {
    if (path.find(hot) != std::string::npos) is_hot_path = true;
  }

  auto add = [&](int line, size_t col, const char* rule, std::string msg) {
    out->push_back(Violation{path, line, static_cast<int>(col) + 1, rule,
                             std::move(msg)});
  };

  std::istringstream in(content);
  std::string raw;
  int line_no = 0;
  bool in_block = false;
  int brace_depth = 0;
  std::vector<ClassContext> class_stack;
  std::vector<std::string> nolint_next;  // rules from NOLINTNEXTLINE
  bool have_nolint_next = false;
  std::string first_ifndef, first_define;
  int ifndef_line = 0;
  // Wrapped virtual declarations accumulate until their terminator so
  // `override` on a continuation line is seen (and its absence across the
  // whole declaration is reported once, at the `virtual` line).
  bool virtual_pending = false;
  std::string virtual_decl;
  int virtual_line = 0;
  size_t virtual_col = 0;
  bool virtual_suppressed = false;
  // Loop-body tracking for isum-no-perpair-alloc: brace depths at which a
  // for/while body opened, plus the in-flight header (its parens may close
  // on a later line, and an unbraced single-statement body ends at ';').
  std::vector<int> loop_stack;
  bool loop_header_active = false;
  int loop_paren_depth = 0;
  bool loop_parens_closed = false;

  while (std::getline(in, raw)) {
    ++line_no;

    std::vector<std::string> nolint_rules;
    const bool has_nolint = ParseNolint(raw, "NOLINT", &nolint_rules);
    std::vector<std::string> next_rules;
    const bool has_next = ParseNolint(raw, "NOLINTNEXTLINE", &next_rules);
    // "NOLINTNEXTLINE" also contains "NOLINT"; it must not suppress its own
    // line unless a same-line NOLINT is separately present.
    const bool self_suppress =
        has_nolint && raw.find("NOLINT") != raw.find("NOLINTNEXTLINE");
    auto active = [&](const char* rule) {
      if (self_suppress && Suppressed(nolint_rules, rule)) return false;
      if (have_nolint_next && Suppressed(nolint_next, rule)) return false;
      return true;
    };

    const std::string code = StripCommentsAndLiterals(raw, &in_block);

    // --- include guard bookkeeping (headers only) ---
    if (is_header && first_ifndef.empty()) {
      const size_t p = code.find("#ifndef");
      if (p != std::string::npos) {
        first_ifndef = std::string(Trim(code.substr(p + 7)));
        ifndef_line = line_no;
      }
    } else if (is_header && !first_ifndef.empty() && first_define.empty()) {
      const size_t p = code.find("#define");
      if (p != std::string::npos) {
        first_define = std::string(Trim(code.substr(p + 7)));
      }
    }

    // --- isum-no-assert ---
    if (active(kNoAssert)) {
      const size_t a = FindCall(code, "assert");
      if (a != std::string::npos) {
        add(line_no, a, kNoAssert,
            "assert() is compiled out under NDEBUG; use ISUM_CHECK / "
            "ISUM_DCHECK from common/check.h");
      }
      const size_t b = FindCall(code, "abort");
      if (b != std::string::npos) {
        add(line_no, b, kNoAssert,
            "library code must not call abort() directly; use ISUM_CHECK "
            "or return a Status");
      }
    }

    // --- isum-no-stdio ---
    if (active(kNoStdio)) {
      for (const char* tok : {"printf", "fprintf", "puts", "putchar"}) {
        const size_t p = FindCall(code, tok);
        if (p != std::string::npos) {
          add(line_no, p, kNoStdio,
              std::string(tok) +
                  "() writes to stdio from library code; use "
                  "LogWarning() (common/log.h) or return data");
        }
      }
      for (const char* tok : {"cout", "cerr"}) {
        const size_t p = FindToken(code, tok);
        if (p != std::string::npos) {
          add(line_no, p, kNoStdio,
              std::string("std::") + tok +
                  " in library code; use LogWarning() (common/log.h) or "
                  "return data");
        }
      }
    }

    // --- isum-no-nondeterminism ---
    if (active(kNoNondeterminism) && !is_rng) {
      for (const char* tok : {"rand", "srand", "random_shuffle"}) {
        const size_t p = FindCall(code, tok);
        if (p != std::string::npos) {
          add(line_no, p, kNoNondeterminism,
              std::string(tok) +
                  "() is nondeterministic; use isum::Rng (common/rng.h) "
                  "with an explicit seed");
        }
      }
      const size_t rd = FindToken(code, "random_device");
      if (rd != std::string::npos) {
        add(line_no, rd, kNoNondeterminism,
            "std::random_device is nondeterministic; use isum::Rng with an "
            "explicit seed");
      }
      if (is_core) {
        const size_t now = code.find("::now(");
        if (now != std::string::npos) {
          add(line_no, now, kNoNondeterminism,
              "clock reads are banned in core compression algorithms "
              "(results must not depend on wall time); thread timing "
              "through the caller");
        }
      }
    }

    // --- isum-no-raw-clock: time must flow through the injectable clock so
    //     deadline/backoff behavior is testable and replayable ---
    if (active(kNoRawClock) && is_src && !is_clock_home) {
      for (const char* tok :
           {"steady_clock", "system_clock", "high_resolution_clock"}) {
        const size_t p = FindToken(code, tok);
        if (p != std::string::npos &&
            code.find("::now(", p) != std::string::npos) {
          add(line_no, p, kNoRawClock,
              std::string(tok) +
                  "::now() bypasses the injectable clock; use "
                  "MonotonicNanos() (common/deadline.h)");
        }
      }
      for (const char* tok : {"sleep_for", "sleep_until"}) {
        const size_t p = FindCall(code, tok);
        if (p != std::string::npos) {
          add(line_no, p, kNoRawClock,
              std::string(tok) +
                  "() bypasses the injectable sleeper; use "
                  "SleepForNanos() (common/deadline.h)");
        }
      }
    }

    // --- isum-no-perpair-alloc: hot-path files must not construct a
    //     std::vector per loop iteration (a malloc per pair on the
    //     similarity path); loop_stack reflects state up to the previous
    //     line, so loop headers themselves are not flagged ---
    if (active(kNoPerPairAlloc) && is_hot_path && !loop_stack.empty()) {
      const size_t p = code.find("std::vector<");
      if (p != std::string::npos) {
        add(line_no, p, kNoPerPairAlloc,
            "std::vector constructed inside a hot-path loop body costs a "
            "malloc per iteration; hoist it out and reuse it (clear(), or "
            "the scratch overloads in core/features.h)");
      }
    }

    // --- isum-unchecked-status: (void)-laundered Status-returning calls ---
    if (active(kUncheckedStatus)) {
      size_t v = code.find("(void)");
      while (v != std::string::npos) {
        std::string hit;
        if (VoidCastTargets(code, v, api.function_names, &hit)) {
          add(line_no, v, kUncheckedStatus,
              "(void)-cast discards the Status returned by " + hit +
                  "(); handle it, ISUM_CHECK_OK it, or justify with NOLINT");
        }
        v = code.find("(void)", v + 1);
      }
    }

    // --- isum-missing-override (heuristic; wrapped declarations are
    //     accumulated until ';' or '{' before the verdict) ---
    if (virtual_pending) {
      virtual_decl += " " + code;
    } else {
      const bool in_derived = !class_stack.empty() &&
                              class_stack.back().has_base &&
                              brace_depth == class_stack.back().open_depth + 1;
      const size_t v = FindToken(code, "virtual");
      if (in_derived && v != std::string::npos) {
        virtual_pending = true;
        virtual_decl = code;
        virtual_line = line_no;
        virtual_col = v;
        // Suppression is decided where the declaration starts: NOLINT on
        // the `virtual` line or NOLINTNEXTLINE above it.
        virtual_suppressed = !active(kMissingOverride);
      }
    }
    if (virtual_pending && (virtual_decl.find(';') != std::string::npos ||
                            virtual_decl.find('{') != std::string::npos)) {
      if (!virtual_suppressed &&
          virtual_decl.find('(') != std::string::npos &&
          virtual_decl.find('~') == std::string::npos &&
          FindToken(virtual_decl, "override") == std::string::npos &&
          FindToken(virtual_decl, "final") == std::string::npos) {
        add(virtual_line, virtual_col, kMissingOverride,
            "virtual member of a derived class should be marked override");
      }
      virtual_pending = false;
    }

    // --- class/brace bookkeeping (after rules so the opening line itself
    //     is attributed to the enclosing scope) ---
    {
      const size_t cls = std::min(FindToken(code, "class"),
                                  FindToken(code, "struct"));
      if (cls != std::string::npos && code.find('{') != std::string::npos &&
          code.find(';') == std::string::npos) {
        ClassContext ctx;
        const std::string between =
            code.substr(cls, code.find('{') - cls);
        ctx.has_base = between.find(" : ") != std::string::npos ||
                       between.find(": public") != std::string::npos ||
                       between.find(": protected") != std::string::npos ||
                       between.find(": private") != std::string::npos;
        ctx.open_depth = brace_depth;
        class_stack.push_back(ctx);
      }
      size_t next_loop_tok =
          std::min(FindToken(code, "for"), FindToken(code, "while"));
      for (size_t ci = 0; ci < code.size(); ++ci) {
        if (!loop_header_active && ci == next_loop_tok) {
          loop_header_active = true;
          loop_paren_depth = 0;
          loop_parens_closed = false;
          next_loop_tok = std::min(FindToken(code, "for", ci + 1),
                                   FindToken(code, "while", ci + 1));
        }
        const char c = code[ci];
        if (loop_header_active) {
          if (!loop_parens_closed) {
            if (c == '(') ++loop_paren_depth;
            if (c == ')' && loop_paren_depth > 0 &&
                --loop_paren_depth == 0) {
              loop_parens_closed = true;
            }
          } else if (c == '{') {
            loop_stack.push_back(brace_depth);
            loop_header_active = false;
          } else if (c == ';') {
            loop_header_active = false;  // unbraced single-statement body
          }
        }
        if (c == '{') ++brace_depth;
        if (c == '}') {
          --brace_depth;
          if (!loop_stack.empty() && brace_depth == loop_stack.back()) {
            loop_stack.pop_back();
          }
          if (!class_stack.empty() &&
              brace_depth == class_stack.back().open_depth) {
            class_stack.pop_back();
          }
        }
      }
    }

    have_nolint_next = has_next;
    nolint_next = next_rules;
  }

  // --- include guard verdict ---
  if (is_header) {
    const std::string expected = ExpectedGuard(path);
    if (first_ifndef.empty()) {
      add(1, 0, kIncludeGuard, "missing include guard " + expected);
    } else if (first_ifndef != expected) {
      add(ifndef_line, 0, kIncludeGuard,
          "include guard is " + first_ifndef + ", expected " + expected);
    } else if (first_define != expected) {
      add(ifndef_line, 0, kIncludeGuard,
          "#define after #ifndef " + expected + " is missing or mismatched");
    }
  }

  // --- isum-unchecked-status: status.h must keep its [[nodiscard]]s ---
  const std::string status_h = "src/common/status.h";
  if (path.size() >= status_h.size() &&
      path.compare(path.size() - status_h.size(), status_h.size(),
                   status_h) == 0) {
    bool block = false;
    std::istringstream again(content);
    int ln = 0;
    while (std::getline(again, raw)) {
      ++ln;
      const std::string code = StripCommentsAndLiterals(raw, &block);
      for (const char* cls : {"class Status ", "class Status{",
                              "class StatusOr "}) {
        if (code.find(cls) != std::string::npos &&
            code.find("[[nodiscard]]") == std::string::npos) {
          add(ln, 0, kUncheckedStatus,
              "Status/StatusOr must be declared [[nodiscard]] so dropped "
              "errors fail the -Werror build");
        }
      }
    }
  }
}

}  // namespace isum::lint
