#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <initializer_list>
#include <sstream>

#include "common/string_util.h"

namespace isum::lint {

namespace {

constexpr const char kNoAssert[] = "isum-no-assert";
constexpr const char kNoStdio[] = "isum-no-stdio";
constexpr const char kNoNondeterminism[] = "isum-no-nondeterminism";
constexpr const char kIncludeGuard[] = "isum-include-guard";
constexpr const char kMissingOverride[] = "isum-missing-override";
constexpr const char kUncheckedStatus[] = "isum-unchecked-status";
constexpr const char kNoRawClock[] = "isum-no-raw-clock";
constexpr const char kNoPerPairAlloc[] = "isum-no-perpair-alloc";
constexpr const char kBudgetPoll[] = "isum-budget-poll";
constexpr const char kLockScope[] = "isum-lock-scope";
constexpr const char kGuardedBy[] = "isum-guarded-by";
constexpr const char kJournalSchema[] = "isum-journal-schema";
constexpr const char kNoAllocInSignal[] = "isum-no-alloc-in-signal";

/// Files on the similarity/selection hot path, where a per-iteration
/// std::vector costs a malloc per pair (the regression class the scratch
/// overloads in core/features.h exist to prevent; docs/BENCHMARKING.md).
constexpr const char* kHotPathFiles[] = {
    "src/core/features.cc",      "src/core/summary.cc",
    "src/core/compression_state.cc", "src/core/benefit.cc",
    "src/core/weighing.cc",      "src/core/incremental.cc",
    "src/baselines/kmedoid.cc",
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Expected include guard for a path: strip a leading "src/", uppercase,
/// map non-alphanumerics to '_', prefix ISUM_ and close with '_'.
/// "src/catalog/catalog.h" -> "ISUM_CATALOG_CATALOG_H_". Developer tools
/// keep the tools/ prefix; bench/ and tests/ headers keep their whole
/// repo-relative path.
std::string ExpectedGuard(const std::string& path) {
  std::string p = path;
  const size_t s = p.rfind("src/");
  if (s != std::string::npos && (s == 0 || p[s - 1] == '/')) {
    p = p.substr(s + 4);
  } else {
    for (const char* root : {"tools/", "bench/", "tests/"}) {
      const size_t t = p.rfind(root);
      if (t != std::string::npos && (t == 0 || p[t - 1] == '/')) {
        p = p.substr(t);
        break;
      }
    }
  }
  std::string guard = "ISUM_";
  for (char c : p) {
    guard += IsIdentChar(c) ? static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)))
                            : '_';
  }
  guard += '_';
  return guard;
}

/// Parses the rule list of one NOLINT directive out of comment text
/// starting right after the directive word, and merges it into `sup`.
/// No parentheses (or an unterminated list) means blanket suppression.
void MergeDirectiveRules(const std::string& text, size_t after,
                         Suppression* sup) {
  if (after >= text.size() || text[after] != '(') {
    sup->blanket = true;
    return;
  }
  const size_t close = text.find(')', after);
  if (close == std::string::npos) {
    sup->blanket = true;
    return;
  }
  const std::string inside = text.substr(after + 1, close - after - 1);
  std::string current;
  for (char c : inside + ",") {
    if (c == ',') {
      const std::string t(Trim(current));
      if (!t.empty()) sup->rules.push_back(t);
      current.clear();
    } else {
      current += c;
    }
  }
  if (sup->rules.empty()) sup->blanket = true;
}

/// Harvests NOLINT / NOLINTNEXTLINE directives from one physical line of
/// *comment* text (directives inside string literals are data, not
/// directives — the lexer never routes literal contents here).
void HarvestNolint(const std::string& text, int line, LexedSource* out) {
  static constexpr const char kNext[] = "NOLINTNEXTLINE";
  static constexpr const char kPlain[] = "NOLINT";
  size_t pos = 0;
  while ((pos = text.find(kPlain, pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(text[pos - 1])) {
      ++pos;
      continue;
    }
    const bool next_line =
        text.compare(pos, sizeof(kNext) - 1, kNext) == 0;
    const size_t word_len = next_line ? sizeof(kNext) - 1 : sizeof(kPlain) - 1;
    const size_t after = pos + word_len;
    if (after < text.size() && IsIdentChar(text[after])) {
      ++pos;  // e.g. "NOLINTBEGIN" — not ours
      continue;
    }
    Suppression& sup =
        next_line ? out->nolint_next[line] : out->nolint[line];
    MergeDirectiveRules(text, after, &sup);
    pos = after;
  }
}

bool Covers(const Suppression& sup, const char* rule) {
  if (sup.blanket) return true;
  return std::find(sup.rules.begin(), sup.rules.end(), rule) !=
         sup.rules.end();
}

}  // namespace

std::string Violation::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ":" << column << ": [" << rule << "] "
     << message;
  return os.str();
}

std::vector<std::string> KnownRules() {
  return {kNoAssert,   kNoStdio,          kNoNondeterminism, kIncludeGuard,
          kMissingOverride, kUncheckedStatus, kNoRawClock,   kNoPerPairAlloc,
          kBudgetPoll, kLockScope,        kGuardedBy,        kJournalSchema,
          kNoAllocInSignal};
}

LexedSource Lex(const std::string& content) {
  LexedSource out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  int col = 1;

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++col;
      ++i;
      continue;
    }

    // Line comment: runs to end of line; directives harvested from its text.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const size_t start = i;
      while (i < n && content[i] != '\n') {
        ++i;
        ++col;
      }
      HarvestNolint(content.substr(start, i - start), line, &out);
      continue;
    }

    // Block comment: may span lines; directives attach to the physical line
    // they appear on inside the comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      i += 2;
      col += 2;
      std::string text;
      while (i < n) {
        if (content[i] == '*' && i + 1 < n && content[i + 1] == '/') {
          i += 2;
          col += 2;
          break;
        }
        if (content[i] == '\n') {
          HarvestNolint(text, line, &out);
          text.clear();
          ++line;
          col = 1;
          ++i;
          continue;
        }
        text += content[i];
        ++i;
        ++col;
      }
      HarvestNolint(text, line, &out);
      continue;
    }

    // String literal (the contents become an opaque placeholder token; the
    // verbatim source text is kept in `raw` for content-inspecting rules).
    if (c == '"') {
      const size_t lit_start = i;
      out.tokens.push_back({Token::Kind::kString, "<string>", "", line, col});
      ++i;
      ++col;
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n) {
          if (content[i + 1] == '\n') {
            i += 2;
            ++line;
            col = 1;
          } else {
            i += 2;
            col += 2;
          }
          continue;
        }
        if (content[i] == '"') {
          ++i;
          ++col;
          break;
        }
        if (content[i] == '\n') {  // unterminated; tolerate
          ++line;
          col = 1;
          ++i;
          continue;
        }
        ++i;
        ++col;
      }
      out.tokens.back().raw = content.substr(lit_start, i - lit_start);
      continue;
    }

    // Character literal.
    if (c == '\'') {
      out.tokens.push_back({Token::Kind::kChar, "<char>", "", line, col});
      ++i;
      ++col;
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n) {
          i += 2;
          col += 2;
          continue;
        }
        if (content[i] == '\'' || content[i] == '\n') {
          if (content[i] == '\'') {
            ++i;
            ++col;
          }
          break;
        }
        ++i;
        ++col;
      }
      continue;
    }

    // Identifier / keyword — or the prefix of a raw string literal.
    if (IsIdentStart(c)) {
      const int tcol = col;
      const size_t start = i;
      while (i < n && IsIdentChar(content[i])) {
        ++i;
        ++col;
      }
      const std::string text = content.substr(start, i - start);
      const bool raw_prefix = text == "R" || text == "uR" || text == "UR" ||
                              text == "LR" || text == "u8R";
      if (raw_prefix && i < n && content[i] == '"') {
        // R"delim( ... )delim" — the body may span lines and contain
        // anything except the closer; only `raw` carries the contents.
        const size_t lit_start = start;
        out.tokens.push_back(
            {Token::Kind::kString, "<string>", "", line, tcol});
        ++i;
        ++col;
        std::string delim;
        while (i < n && content[i] != '(' && content[i] != '\n' &&
               delim.size() < 16) {
          delim += content[i];
          ++i;
          ++col;
        }
        if (i < n && content[i] == '(') {
          ++i;
          ++col;
        }
        const std::string closer = ")" + delim + "\"";
        const size_t end = content.find(closer, i);
        const size_t stop = end == std::string::npos ? n : end;
        while (i < stop) {
          if (content[i] == '\n') {
            ++line;
            col = 1;
          } else {
            ++col;
          }
          ++i;
        }
        if (end != std::string::npos) {
          i = end + closer.size();
          col += static_cast<int>(closer.size());
        }
        out.tokens.back().raw = content.substr(lit_start, i - lit_start);
        continue;
      }
      out.tokens.push_back({Token::Kind::kIdent, text, "", line, tcol});
      continue;
    }

    // Numeric literal (decimal/hex/float, digit separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])) != 0)) {
      const int tcol = col;
      const size_t start = i;
      while (i < n) {
        const char d = content[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
          ++col;
          continue;
        }
        if (d == '\'' && i + 1 < n &&
            std::isalnum(static_cast<unsigned char>(content[i + 1])) != 0) {
          i += 2;
          col += 2;
          continue;
        }
        if ((d == '+' || d == '-') && i > start &&
            (content[i - 1] == 'e' || content[i - 1] == 'E' ||
             content[i - 1] == 'p' || content[i - 1] == 'P')) {
          ++i;
          ++col;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          {Token::Kind::kNumber, content.substr(start, i - start), "", line,
           tcol});
      continue;
    }

    // Preprocessor directive head: '#' as the first token on its line.
    if (c == '#') {
      const int tcol = col;
      const bool line_start =
          out.tokens.empty() || out.tokens.back().line < line;
      ++i;
      ++col;
      if (line_start) {
        while (i < n && (content[i] == ' ' || content[i] == '\t')) {
          ++i;
          ++col;
        }
        const size_t dstart = i;
        while (i < n && IsIdentChar(content[i])) {
          ++i;
          ++col;
        }
        out.tokens.push_back({Token::Kind::kPreproc,
                              "#" + content.substr(dstart, i - dstart), "",
                              line, tcol});
      } else {
        out.tokens.push_back({Token::Kind::kPunct, "#", "", line, tcol});
      }
      continue;
    }

    // "::" is one token so scope qualification is trivially matchable.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      out.tokens.push_back({Token::Kind::kPunct, "::", "", line, col});
      i += 2;
      col += 2;
      continue;
    }

    out.tokens.push_back(
        {Token::Kind::kPunct, std::string(1, c), "", line, col});
    ++i;
    ++col;
  }
  return out;
}

void CollectStatusApi(const std::string& content, StatusApi* api) {
  const LexedSource src = Lex(content);
  const auto& toks = src.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const bool is_or = toks[i].text == "StatusOr";
    if (!is_or && toks[i].text != "Status") continue;
    size_t j = i + 1;
    if (is_or) {
      // Require template args and skip over them (they may span lines —
      // the token stream does not care).
      if (j >= toks.size() || toks[j].text != "<") continue;
      int angle = 0;
      bool closed = false;
      for (; j < toks.size() && j < i + 200; ++j) {
        if (toks[j].text == "<") ++angle;
        if (toks[j].text == ">" && --angle == 0) {
          ++j;
          closed = true;
          break;
        }
      }
      if (!closed) continue;
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != Token::Kind::kIdent) continue;
    if (j + 1 >= toks.size() || toks[j + 1].text != "(") continue;
    const std::string& name = toks[j].text;
    auto& names = api->function_names;
    if (std::find(names.begin(), names.end(), name) == names.end()) {
      names.push_back(name);
    }
  }
}

namespace {

struct ClassScope {
  bool has_base = false;
  int open_depth = 0;  ///< brace depth at which the class body was entered
};

struct LoopScope {
  int open_depth = 0;
  int line = 0;
  int col = 0;
  bool has_cost = false;
  bool has_poll = false;
  std::string cost_token;
};

bool ContainsBudget(const std::string& ident) {
  std::string lower = ident;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return lower.find("budget") != std::string::npos;
}

bool IsAny(const std::string& s, std::initializer_list<const char*> set) {
  for (const char* e : set) {
    if (s == e) return true;
  }
  return false;
}

}  // namespace

void LintFile(const std::string& path, const std::string& content,
              const StatusApi& api, std::vector<Violation>* out) {
  const bool is_header =
      path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
  const bool is_src = path.find("src/") != std::string::npos;
  const bool is_bench = path.find("bench/") != std::string::npos;
  const bool is_rng = path.find("common/rng.") != std::string::npos;
  const bool is_core = path.find("src/core/") != std::string::npos;
  // Raw clock reads are allowed only where the injectable clock itself lives
  // (src/common/deadline.cc) and in the tracer (its own test clock hook).
  const bool is_clock_home = path.find("src/common/") != std::string::npos ||
                             path.find("src/obs/") != std::string::npos;
  // The annotated lock shims themselves wrap std::mutex and take locks for
  // a living — both concurrency rules are off there.
  const bool is_mutex_home =
      path.find("common/mutex.h") != std::string::npos ||
      path.find("common/thread_annotations.h") != std::string::npos;
  bool is_hot_path = false;
  for (const char* hot : kHotPathFiles) {
    if (path.find(hot) != std::string::npos) is_hot_path = true;
  }

  // Per-directory rule activation (docs/ANALYSIS.md has the matrix):
  // tools, benches, and tests legitimately own stdio; randomness in tests
  // is test business; deadline polling is a library-hot-path contract.
  const bool rule_stdio = is_src;
  const bool rule_nondet = (is_src || is_bench) && !is_rng;
  const bool rule_rawclock = is_src && !is_clock_home;
  const bool rule_guardedby = is_src && !is_mutex_home;
  const bool rule_lockscope = !is_mutex_home;
  const bool rule_budget = (path.find("src/core/") != std::string::npos ||
                            path.find("src/advisor/") != std::string::npos);
  // JSON emission is the obs layer's monopoly: library code writing
  // hand-rolled JSON object literals bypasses the machine-checked schemas
  // (isum-events-v1, the trace/metrics exporters) that tracecat and CI
  // validate. src/obs/ is where the sanctioned emitters live.
  const bool rule_journal =
      is_src && path.find("src/obs/") == std::string::npos;

  const LexedSource src = Lex(content);
  const auto& toks = src.tokens;

  auto active = [&](const char* rule, int line) {
    const auto it = src.nolint.find(line);
    if (it != src.nolint.end() && Covers(it->second, rule)) return false;
    const auto prev = src.nolint_next.find(line - 1);
    if (prev != src.nolint_next.end() && Covers(prev->second, rule)) {
      return false;
    }
    return true;
  };
  auto add = [&](int line, int col, const char* rule, std::string msg,
                 std::vector<FixIt> fixes = {}) {
    if (!active(rule, line)) return;
    out->push_back(
        Violation{path, line, col, rule, std::move(msg), std::move(fixes)});
  };

  int brace_depth = 0;
  std::vector<ClassScope> class_stack;
  std::vector<LoopScope> loop_stack;
  std::vector<int> lock_stack;  // brace depth of each live lock declaration
  bool pending_class = false;
  bool pending_base = false;
  bool loop_header = false;
  int loop_paren = 0;
  bool loop_parens_closed = false;
  int loop_line = 0;
  int loop_col = 0;
  bool pending_do = false;
  int do_line = 0;
  int do_col = 0;
  // isum-no-alloc-in-signal: set when an ISUM_SIGNAL_SAFE annotation was
  // seen and the function body has not opened yet (a ';' first means it was
  // a declaration); signal_depth is the brace depth of the open body.
  bool signal_pending = false;
  int signal_depth = -1;
  std::string first_ifndef, first_define;
  int ifndef_line = 0;
  const Token* ifndef_tok = nullptr;
  const Token* define_tok = nullptr;

  auto pop_loop = [&](const LoopScope& loop) {
    if (rule_budget && loop.has_cost && !loop.has_poll) {
      add(loop.line, loop.col, kBudgetPoll,
          "loop performs what-if costing (" + loop.cost_token +
              ") without polling its TimeBudget; call "
              "budget.CheckCancelled() / Expired() in the loop or pass the "
              "budget into TryCost so the deadline holds "
              "(docs/ROBUSTNESS.md)");
    }
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    auto next_text = [&](const char* s) {
      return i + 1 < toks.size() && toks[i + 1].text == s;
    };
    auto next_is_ident = [&] {
      return i + 1 < toks.size() && toks[i + 1].kind == Token::Kind::kIdent;
    };
    auto prev_text = [&](const char* s) {
      return i > 0 && toks[i - 1].text == s;
    };

    // A `do` not immediately followed by '{' has an unbraced body; like the
    // for/while case below, it is deliberately not tracked.
    if (pending_do && !(t.kind == Token::Kind::kPunct && t.text == "{")) {
      pending_do = false;
    }

    if (t.kind == Token::Kind::kPreproc) {
      if (is_header && t.text == "#ifndef" && first_ifndef.empty() &&
          i + 1 < toks.size() &&
          toks[i + 1].kind == Token::Kind::kIdent) {
        first_ifndef = toks[i + 1].text;
        ifndef_line = t.line;
        ifndef_tok = &toks[i + 1];
      } else if (is_header && t.text == "#define" && !first_ifndef.empty() &&
                 first_define.empty() && i + 1 < toks.size() &&
                 toks[i + 1].kind == Token::Kind::kIdent) {
        first_define = toks[i + 1].text;
        define_tok = &toks[i + 1];
      }
      continue;
    }

    if (t.kind == Token::Kind::kIdent) {
      const std::string& s = t.text;

      // --- scope-opening keywords ---
      if (s == "for" || s == "while") {
        loop_header = true;
        loop_paren = 0;
        loop_parens_closed = false;
        loop_line = t.line;
        loop_col = t.col;
      } else if (s == "do") {
        pending_do = true;
        do_line = t.line;
        do_col = t.col;
      } else if (s == "class" || s == "struct") {
        // Look ahead: a '{' before any ';', '(' or '=' opens a class body.
        bool saw_base = false;
        for (size_t j = i + 1; j < toks.size() && j < i + 200; ++j) {
          const std::string& u = toks[j].text;
          if (u == "{") {
            pending_class = true;
            pending_base = saw_base;
            break;
          }
          if (u == ";" || u == "(" || u == "=") break;
          if (toks[j].kind == Token::Kind::kPunct && u == ":") {
            saw_base = true;
          }
        }
      }

      // --- isum-missing-override ---
      if (s == "virtual" && !class_stack.empty() &&
          class_stack.back().has_base &&
          brace_depth == class_stack.back().open_depth + 1) {
        bool has_paren = false;
        bool has_tilde = false;
        bool has_override = false;
        for (size_t j = i + 1; j < toks.size() && j < i + 400; ++j) {
          const Token& u = toks[j];
          if (u.kind == Token::Kind::kPunct) {
            if (u.text == ";" || u.text == "{") break;
            if (u.text == "(") has_paren = true;
            if (u.text == "~") has_tilde = true;
          } else if (u.kind == Token::Kind::kIdent &&
                     (u.text == "override" || u.text == "final")) {
            has_override = true;
          }
        }
        if (has_paren && !has_tilde && !has_override) {
          add(t.line, t.col, kMissingOverride,
              "virtual member of a derived class should be marked override");
        }
      }

      // --- isum-no-assert ---
      if (s == "assert" && next_text("(")) {
        add(t.line, t.col, kNoAssert,
            "assert() is compiled out under NDEBUG; use ISUM_CHECK / "
            "ISUM_DCHECK from common/check.h");
      } else if (s == "abort" && next_text("(")) {
        add(t.line, t.col, kNoAssert,
            "library code must not call abort() directly; use ISUM_CHECK "
            "or return a Status");
      }

      // --- isum-no-stdio ---
      if (rule_stdio) {
        if (IsAny(s, {"printf", "fprintf", "puts", "putchar"}) &&
            next_text("(")) {
          add(t.line, t.col, kNoStdio,
              s + "() writes to stdio from library code; use "
                  "LogWarning() (common/log.h) or return data");
        } else if (IsAny(s, {"cout", "cerr"})) {
          add(t.line, t.col, kNoStdio,
              "std::" + s +
                  " in library code; use LogWarning() (common/log.h) or "
                  "return data");
        }
      }

      // --- isum-no-nondeterminism ---
      if (rule_nondet) {
        if (IsAny(s, {"rand", "srand", "random_shuffle"}) && next_text("(")) {
          add(t.line, t.col, kNoNondeterminism,
              s + "() is nondeterministic; use isum::Rng (common/rng.h) "
                  "with an explicit seed");
        } else if (s == "random_device") {
          add(t.line, t.col, kNoNondeterminism,
              "std::random_device is nondeterministic; use isum::Rng with an "
              "explicit seed");
        }
        if (is_core && s == "now" && prev_text("::") && next_text("(")) {
          add(toks[i - 1].line, toks[i - 1].col, kNoNondeterminism,
              "clock reads are banned in core compression algorithms "
              "(results must not depend on wall time); thread timing "
              "through the caller");
        }
      }

      // --- isum-no-raw-clock ---
      if (rule_rawclock) {
        if (IsAny(s, {"steady_clock", "system_clock",
                      "high_resolution_clock"}) &&
            i + 3 < toks.size() && toks[i + 1].text == "::" &&
            toks[i + 2].text == "now" && toks[i + 3].text == "(") {
          add(t.line, t.col, kNoRawClock,
              s + "::now() bypasses the injectable clock; use "
                  "MonotonicNanos() (common/deadline.h)");
        } else if (IsAny(s, {"sleep_for", "sleep_until"}) && next_text("(")) {
          add(t.line, t.col, kNoRawClock,
              s + "() bypasses the injectable sleeper; use "
                  "SleepForNanos() (common/deadline.h)");
        }
      }

      // --- isum-no-perpair-alloc ---
      if (is_hot_path && !loop_stack.empty() && s == "vector" &&
          prev_text("::") && i >= 2 && toks[i - 2].text == "std" &&
          next_text("<")) {
        add(toks[i - 2].line, toks[i - 2].col, kNoPerPairAlloc,
            "std::vector constructed inside a hot-path loop body costs a "
            "malloc per iteration; hoist it out and reuse it (clear(), or "
            "the scratch overloads in core/features.h)");
      }

      // --- isum-unchecked-status: (void)-laundered Status calls ---
      if (s == "void" && prev_text("(") && next_text(")")) {
        for (size_t j = i + 2; j < toks.size() && j < i + 64; ++j) {
          const std::string& u = toks[j].text;
          if (u == ";" || u == "{" || u == "}") break;
          if (u == "(" && toks[j - 1].kind == Token::Kind::kIdent) {
            const std::string& callee = toks[j - 1].text;
            const auto& names = api.function_names;
            if (std::find(names.begin(), names.end(), callee) !=
                names.end()) {
              add(toks[i - 1].line, toks[i - 1].col, kUncheckedStatus,
                  "(void)-cast discards the Status returned by " + callee +
                      "(); handle it, ISUM_CHECK_OK it, or justify with "
                      "NOLINT");
            }
            break;
          }
        }
      }

      // --- isum-lock-scope ---
      if (rule_lockscope) {
        if (IsAny(s, {"lock_guard", "unique_lock", "scoped_lock",
                      "shared_lock", "MutexLock"}) &&
            (next_text("<") || next_is_ident())) {
          lock_stack.push_back(brace_depth);
        } else if (!lock_stack.empty() &&
                   IsAny(s, {"TryCost", "Cost", "Optimize", "ParallelFor",
                             "SleepForNanos", "printf", "fprintf", "fopen",
                             "getline"}) &&
                   next_text("(")) {
          add(t.line, t.col, kLockScope,
              s + "() called while a lock is held; what-if costing, "
                  "sleeps, I/O, and ParallelFor must not run inside a "
                  "lock_guard/MutexLock scope — narrow the critical "
                  "section (docs/ANALYSIS.md)");
        }
      }

      // --- isum-budget-poll bookkeeping ---
      if (rule_budget && !loop_stack.empty()) {
        if (IsAny(s, {"TryCost", "Cost", "ParallelFor"}) && next_text("(")) {
          for (LoopScope& loop : loop_stack) {
            if (!loop.has_cost) loop.cost_token = s;
            loop.has_cost = true;
          }
        } else if (IsAny(s, {"CheckCancelled", "Expired", "expired",
                             "ShouldStop", "cancelled"}) ||
                   ContainsBudget(s)) {
          for (LoopScope& loop : loop_stack) loop.has_poll = true;
        }
      }

      // --- isum-no-alloc-in-signal ---
      if (s == "ISUM_SIGNAL_SAFE") {
        signal_pending = true;
      } else if (signal_depth >= 0) {
        // Inside an annotated body: the async-signal-safety contract
        // (src/common/signal_safe.h) bans allocation, locking, and stdio.
        if (s == "new" || s == "delete") {
          add(t.line, t.col, kNoAllocInSignal,
              "operator " + s +
                  " inside an ISUM_SIGNAL_SAFE function; signal handlers "
                  "must not allocate (src/common/signal_safe.h) — "
                  "preallocate outside signal context");
        } else if (IsAny(s, {"malloc", "calloc", "realloc", "free",
                             "posix_memalign", "aligned_alloc", "strdup",
                             "backtrace_symbols"}) &&
                   next_text("(")) {
          add(t.line, t.col, kNoAllocInSignal,
              s + "() allocates or frees inside an ISUM_SIGNAL_SAFE "
                  "function (src/common/signal_safe.h); preallocate "
                  "outside signal context");
        } else if (IsAny(s, {"MutexLock", "lock_guard", "unique_lock",
                             "scoped_lock", "shared_lock"})) {
          add(t.line, t.col, kNoAllocInSignal,
              s + " inside an ISUM_SIGNAL_SAFE function; a handler "
                  "interrupting the lock holder self-deadlocks — use "
                  "lock-free atomics (src/common/signal_safe.h)");
        } else if (IsAny(s, {"printf", "fprintf", "snprintf", "sprintf",
                             "puts", "fputs", "fwrite", "fopen", "getline",
                             "cout", "cerr"}) &&
                   (next_text("(") || s == "cout" || s == "cerr")) {
          add(t.line, t.col, kNoAllocInSignal,
              s + " performs stdio inside an ISUM_SIGNAL_SAFE function; "
                  "stdio locks internally (src/common/signal_safe.h) — "
                  "record raw data and format after the handler returns");
        }
      }

      // --- isum-guarded-by ---
      if (rule_guardedby && prev_text("::") && i >= 2 &&
          toks[i - 2].text == "std" && next_is_ident()) {
        if (s == "mutex") {
          std::vector<FixIt> fixes;
          if (toks[i - 2].line == t.line) {
            fixes.push_back(FixIt{toks[i - 2].line, toks[i - 2].col,
                                  t.col + static_cast<int>(s.size()),
                                  "isum::Mutex"});
          }
          add(toks[i - 2].line, toks[i - 2].col, kGuardedBy,
              "std::mutex cannot carry clang thread-safety annotations; "
              "declare an isum::Mutex and ISUM_GUARDED_BY the state it "
              "protects (common/mutex.h)",
              std::move(fixes));
        } else if (s == "condition_variable" ||
                   s == "condition_variable_any") {
          std::vector<FixIt> fixes;
          if (toks[i - 2].line == t.line) {
            fixes.push_back(FixIt{toks[i - 2].line, toks[i - 2].col,
                                  t.col + static_cast<int>(s.size()),
                                  "isum::CondVar"});
          }
          add(toks[i - 2].line, toks[i - 2].col, kGuardedBy,
              "std::" + s +
                  " cannot wait on an annotated isum::Mutex; use "
                  "isum::CondVar (common/mutex.h)",
              std::move(fixes));
        }
      }
      continue;
    }

    // --- isum-journal-schema ---
    // A string literal spelling the start of a JSON object ( {" ) is an
    // ad-hoc JSON emitter. In an ordinary literal the key's quote is
    // escaped ({\"); in a raw literal (raw text starts with the R prefix,
    // not a quote) it appears verbatim ({").
    if (rule_journal && t.kind == Token::Kind::kString) {
      const bool ordinary = !t.raw.empty() && t.raw[0] == '"';
      const bool json_object = ordinary
                                   ? t.raw.find("{\\\"") != std::string::npos
                                   : t.raw.find("{\"") != std::string::npos;
      if (json_object) {
        add(t.line, t.col, kJournalSchema,
            "string literal emits ad-hoc JSON; library code must route "
            "structured output through the src/obs/ emitters (Journal "
            "events, MetricsJsonl, ChromeTraceJson) so every schema stays "
            "machine-checkable by tracecat and CI (docs/OBSERVABILITY.md)");
      }
    }

    if (t.kind != Token::Kind::kPunct) continue;
    const std::string& s = t.text;

    if (s == "{") {
      if (loop_header && loop_parens_closed) {
        LoopScope loop;
        loop.open_depth = brace_depth;
        loop.line = loop_line;
        loop.col = loop_col;
        loop_stack.push_back(std::move(loop));
        loop_header = false;
      } else if (pending_do) {
        LoopScope loop;
        loop.open_depth = brace_depth;
        loop.line = do_line;
        loop.col = do_col;
        loop_stack.push_back(std::move(loop));
        pending_do = false;
      }
      if (pending_class) {
        class_stack.push_back({pending_base, brace_depth});
        pending_class = false;
      }
      if (signal_pending) {
        signal_depth = brace_depth;
        signal_pending = false;
      }
      ++brace_depth;
    } else if (s == "}") {
      --brace_depth;
      while (!loop_stack.empty() &&
             loop_stack.back().open_depth == brace_depth) {
        pop_loop(loop_stack.back());
        loop_stack.pop_back();
      }
      while (!class_stack.empty() &&
             class_stack.back().open_depth == brace_depth) {
        class_stack.pop_back();
      }
      while (!lock_stack.empty() && lock_stack.back() > brace_depth) {
        lock_stack.pop_back();
      }
      if (signal_depth == brace_depth) signal_depth = -1;
    } else if (s == ";") {
      pending_class = false;
      signal_pending = false;  // annotated declaration, no body
      if (loop_header && loop_parens_closed) {
        loop_header = false;  // unbraced single-statement body
      }
    } else if (loop_header && !loop_parens_closed) {
      if (s == "(") {
        ++loop_paren;
      } else if (s == ")" && loop_paren > 0 && --loop_paren == 0) {
        loop_parens_closed = true;
      }
    }
  }

  // --- include guard verdict ---
  if (is_header) {
    const std::string expected = ExpectedGuard(path);
    auto rename_fix = [&](const Token* tok) {
      return FixIt{tok->line, tok->col,
                   tok->col + static_cast<int>(tok->text.size()), expected};
    };
    if (first_ifndef.empty()) {
      add(1, 1, kIncludeGuard, "missing include guard " + expected);
    } else if (first_ifndef != expected) {
      std::vector<FixIt> fixes = {rename_fix(ifndef_tok)};
      if (define_tok != nullptr && first_define != expected) {
        fixes.push_back(rename_fix(define_tok));
      }
      add(ifndef_line, 1, kIncludeGuard,
          "include guard is " + first_ifndef + ", expected " + expected,
          std::move(fixes));
    } else if (first_define != expected) {
      std::vector<FixIt> fixes;
      if (define_tok != nullptr) fixes.push_back(rename_fix(define_tok));
      add(ifndef_line, 1, kIncludeGuard,
          "#define after #ifndef " + expected + " is missing or mismatched",
          std::move(fixes));
    }
  }

  // --- isum-unchecked-status: status.h must keep its [[nodiscard]]s ---
  const std::string status_h = "src/common/status.h";
  if (path.size() >= status_h.size() &&
      path.compare(path.size() - status_h.size(), status_h.size(),
                   status_h) == 0) {
    for (size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent || toks[i].text != "class") {
        continue;
      }
      if (i > 0 && toks[i - 1].text == "enum") continue;
      bool nodiscard = false;
      std::string name;
      size_t j = i + 1;
      for (; j < toks.size() && j < i + 12; ++j) {
        if (toks[j].text == "[" || toks[j].text == "]") continue;
        if (toks[j].kind == Token::Kind::kIdent) {
          if (toks[j].text == "nodiscard") {
            nodiscard = true;
            continue;
          }
          name = toks[j].text;
        }
        break;
      }
      if (name != "Status" && name != "StatusOr") continue;
      if (j + 1 < toks.size() && toks[j + 1].text == ";") continue;
      if (!nodiscard) {
        add(toks[i].line, 1, kUncheckedStatus,
            "Status/StatusOr must be declared [[nodiscard]] so dropped "
            "errors fail the -Werror build");
      }
    }
  }
}

std::string ApplyFixes(const std::string& content,
                       const std::vector<Violation>& violations) {
  std::vector<FixIt> fixes;
  for (const Violation& v : violations) {
    for (const FixIt& f : v.fixes) fixes.push_back(f);
  }
  if (fixes.empty()) return content;

  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const bool trailing_newline = content.empty() || content.back() == '\n';
  if (!trailing_newline) lines.push_back(std::move(current));

  // Bottom-up so earlier replacements never shift later offsets; on ties,
  // rightmost first. Overlapping fixes keep the first applied.
  std::sort(fixes.begin(), fixes.end(), [](const FixIt& a, const FixIt& b) {
    if (a.line != b.line) return a.line > b.line;
    return a.col_begin > b.col_begin;
  });
  int last_line = -1;
  int last_begin = 0;
  for (const FixIt& f : fixes) {
    if (f.line < 1 || f.line > static_cast<int>(lines.size())) continue;
    std::string& ln = lines[f.line - 1];
    const int begin = f.col_begin - 1;
    const int end = f.col_end - 1;
    if (begin < 0 || end < begin || end > static_cast<int>(ln.size())) {
      continue;
    }
    if (f.line == last_line && end > last_begin) continue;  // overlap
    ln.replace(static_cast<size_t>(begin), static_cast<size_t>(end - begin),
               f.replacement);
    last_line = f.line;
    last_begin = begin;
  }

  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size() || trailing_newline) out += '\n';
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToJson(const std::vector<Violation>& violations) {
  std::ostringstream os;
  os << "{\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) os << ",";
    os << "{\"file\":\"" << JsonEscape(v.file) << "\",\"line\":" << v.line
       << ",\"column\":" << v.column << ",\"rule\":\"" << JsonEscape(v.rule)
       << "\",\"message\":\"" << JsonEscape(v.message) << "\",\"fixable\":"
       << (v.fixes.empty() ? "false" : "true") << "}";
  }
  os << "]}";
  return os.str();
}

std::string ToSarif(const std::vector<Violation>& violations) {
  std::ostringstream os;
  os << "{\"$schema\":"
        "\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
        "\"name\":\"isum_lint\",\"rules\":[";
  const std::vector<std::string> rules = KnownRules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"id\":\"" << JsonEscape(rules[i]) << "\"}";
  }
  os << "]}},\"results\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) os << ",";
    os << "{\"ruleId\":\"" << JsonEscape(v.rule)
       << "\",\"level\":\"error\",\"message\":{\"text\":\""
       << JsonEscape(v.message)
       << "\"},\"locations\":[{\"physicalLocation\":{"
          "\"artifactLocation\":{\"uri\":\""
       << JsonEscape(v.file) << "\"},\"region\":{\"startLine\":" << v.line
       << ",\"startColumn\":" << v.column << "}}}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace isum::lint
